"""End-to-end CI gate for the HTTP front end.

Exercises the full deployment workflow exactly as an operator would:

1. build a catalog snapshot with ``fairank catalog --save``;
2. boot ``fairank serve --catalog <snapshot> --port 0`` as a real
   subprocess and parse the bound port from its stdout;
3. fire one request per protocol-v2 kind (all seven) plus a mixed batch
   through :class:`~repro.server.client.HTTPFairnessClient`;
4. assert every HTTP response is byte-identical (``ServiceResult.canonical``)
   to the in-process :class:`~repro.service.client.FairnessClient` answer
   over a service booted from the *same* snapshot;
5. terminate the server (SIGTERM) and fail unless it drains and exits 0.

With ``--workers N`` (N > 1) the same gate runs against the *sharded*
deployment: ``fairank serve --workers N`` boots a fingerprint-routing
``ShardRouter`` over N snapshot-booted worker processes, and every response
must still be byte-identical to in-process serving.

Exit code 0 only when every step passed.  The CI job wraps this script in
``timeout``, so a server that never binds (hung port) or never answers also
fails the gate.  Run locally with::

    PYTHONPATH=src python scripts/ci_serve_e2e.py [--workers 3]
"""

from __future__ import annotations

import argparse
import os
import queue
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Environment for the fairank subprocesses (they need src importable too).
SUBPROCESS_ENV = dict(
    os.environ,
    PYTHONPATH=os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
    ),
)

from repro.catalog import Catalog  # noqa: E402
from repro.server import HTTPFairnessClient  # noqa: E402
from repro.service import (  # noqa: E402
    AuditRequest,
    FairnessClient,
    FairnessService,
    QuantifyRequest,
    SweepRequest,
)

MARKET_SIZE = "60"
BOOT_TIMEOUT_S = 60.0


def build_snapshot(path: Path) -> None:
    subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "catalog",
            "--save", str(path), "--market-size", MARKET_SIZE,
        ],
        check=True,
        timeout=120,
        env=SUBPROCESS_ENV,
    )
    print(f"[e2e] snapshot built: {path} ({path.stat().st_size} bytes)")


def boot_server(snapshot: Path, workers: int) -> "tuple[subprocess.Popen, int]":
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--catalog", str(snapshot), "--port", "0",
            "--workers", str(workers),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=SUBPROCESS_ENV,
    )
    assert process.stdout is not None
    # Read stdout on a thread: a server that binds but never prints would
    # otherwise block readline forever and the deadline would never fire.
    lines: "queue.Queue[str | None]" = queue.Queue()

    def pump() -> None:
        for line in process.stdout:  # type: ignore[union-attr]
            lines.put(line)
        lines.put(None)

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while True:
        try:
            line = lines.get(timeout=max(0.1, deadline - time.monotonic()))
        except queue.Empty:
            break
        if line is None:  # stdout closed: the server exited before binding
            break
        print(f"[serve] {line.rstrip()}")
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return process, int(match.group(1))
        if time.monotonic() > deadline:
            break
    process.kill()
    raise SystemExit(
        f"[e2e] FAIL: server never announced a bound port within {BOOT_TIMEOUT_S:.0f}s"
    )


def scenario_calls(client):
    """One call per protocol-v2 request kind, against either client."""
    return [
        ("quantify", lambda: client.quantify("table1", "table1-f")),
        ("audit", lambda: client.audit("crowdsourcing-sim", min_partition_size=5)),
        ("compare", lambda: client.compare("table1", ["table1-f", "balanced"])),
        ("breakdown", lambda: client.breakdown("table1", "table1-f")),
        ("sweep", lambda: client.sweep("table1", "table1-f", steps=3)),
        (
            "end_user",
            lambda: client.end_user(
                {"Gender": "Female"}, ["crowdsourcing-sim"], "Content writing"
            ),
        ),
        (
            "job_owner",
            lambda: client.job_owner(
                "crowdsourcing-sim", "Content writing", sweep_steps=3
            ),
        ),
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes behind the shard router (1 = single-process)",
    )
    arguments = parser.parse_args()

    with tempfile.TemporaryDirectory() as workdir:
        snapshot = Path(workdir) / "deployment.json"
        build_snapshot(snapshot)

        # The in-process reference boots from the *same* snapshot, so any
        # divergence is the HTTP layer's fault, not the registry's.
        reference = FairnessClient(FairnessService(catalog=Catalog.load(snapshot)))

        process, port = boot_server(snapshot, arguments.workers)
        failures = 0
        try:
            remote = HTTPFairnessClient(f"http://127.0.0.1:{port}", timeout=60.0)
            health = remote.health()
            assert health["status"] == "ok", health
            if arguments.workers > 1:
                fleet = health["workers"]
                assert fleet["alive"] == arguments.workers, fleet
                print(f"[e2e] router health ok, {fleet['alive']} worker(s) alive, "
                      f"catalog: {health['catalog']}")
            else:
                print(f"[e2e] health ok, catalog: {health['catalog']}")

            for (kind, via_http), (_, in_process) in zip(
                scenario_calls(remote), scenario_calls(reference)
            ):
                http_result = via_http()
                local_result = in_process()
                if http_result.canonical() == local_result.canonical():
                    print(f"[e2e] {kind}: byte-identical "
                          f"({http_result.elapsed_s * 1000:.1f} ms)")
                else:
                    failures += 1
                    print(f"[e2e] FAIL: {kind} diverged between HTTP and in-process")

            batch_requests = [
                QuantifyRequest(dataset="table1", function="table1-f"),
                SweepRequest(dataset="table1", function="table1-f", steps=3),
                AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=5),
            ]
            via_batch = remote.batch(batch_requests)
            serial = [reference.service.execute(request) for request in batch_requests]
            for request, http_result, local_result in zip(
                batch_requests, via_batch, serial
            ):
                if http_result.canonical() != local_result.canonical():
                    failures += 1
                    print(f"[e2e] FAIL: batched {request.kind} diverged")
            print(f"[e2e] batch of {len(batch_requests)}: "
                  f"{len(via_batch)} envelopes, order preserved")
        finally:
            process.terminate()
            try:
                exit_code = process.wait(timeout=30)
                if exit_code != 0:
                    failures += 1
                    print(f"[e2e] FAIL: server exited {exit_code} after SIGTERM "
                          "(graceful shutdown should exit 0)")
            except subprocess.TimeoutExpired:
                process.kill()
                failures += 1
                print("[e2e] FAIL: server did not exit after SIGTERM")

        if failures:
            print(f"[e2e] FAILED with {failures} mismatch(es)")
            return 1
        surface = (
            f"shard router over {arguments.workers} workers"
            if arguments.workers > 1
            else "HTTP front end"
        )
        print(f"[e2e] PASS: {surface} is byte-identical to in-process serving")
        return 0


if __name__ == "__main__":
    sys.exit(main())
