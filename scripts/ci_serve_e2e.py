"""End-to-end CI gate for the HTTP front end.

Exercises the full deployment workflow exactly as an operator would:

1. build a catalog snapshot with ``fairank catalog --save``;
2. boot ``fairank serve --catalog <snapshot> --port 0`` as a real
   subprocess and parse the bound port from its stdout;
3. fire one request per protocol-v2 kind (all seven) plus a mixed batch
   through :class:`~repro.server.client.HTTPFairnessClient`;
4. assert every HTTP response is byte-identical (``ServiceResult.canonical``)
   to the in-process :class:`~repro.service.client.FairnessClient` answer
   over a service booted from the *same* snapshot;
5. terminate the server (SIGTERM) and fail unless it drains and exits 0.

With ``--workers N`` (N > 1) the same gate runs against the *sharded*
deployment: ``fairank serve --workers N`` boots a fingerprint-routing
``ShardRouter`` over N snapshot-booted worker processes, and every response
must still be byte-identical to in-process serving.

Exit code 0 only when every step passed.  The CI job wraps this script in
``timeout``, so a server that never binds (hung port) or never answers also
fails the gate.  Run locally with::

    PYTHONPATH=src python scripts/ci_serve_e2e.py [--workers 3]
"""

from __future__ import annotations

import argparse
import os
import queue
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Environment for the fairank subprocesses (they need src importable too).
SUBPROCESS_ENV = dict(
    os.environ,
    PYTHONPATH=os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
    ),
)

from repro.catalog import Catalog  # noqa: E402
from repro.obs.metrics import parse_prometheus  # noqa: E402
from repro.obs.trace import Trace, activate  # noqa: E402
from repro.server import HTTPFairnessClient  # noqa: E402
from repro.service import (  # noqa: E402
    AuditRequest,
    FairnessClient,
    FairnessService,
    QuantifyRequest,
    SweepRequest,
)

MARKET_SIZE = "60"
BOOT_TIMEOUT_S = 60.0

#: Requests executed per kind by the gate before the metrics scrape: one
#: single call each, plus the quantify/sweep/audit entries of the batch leg
#: (the counter increments per execute, cache hit or not).
EXPECTED_REQUESTS = {
    "quantify": 2,
    "audit": 2,
    "sweep": 2,
    "compare": 1,
    "breakdown": 1,
    "end_user": 1,
    "job_owner": 1,
}


def check_metrics(port: int, workers: int) -> int:
    """Scrape ``/v2/metrics`` and audit the request counters. Returns failures."""
    import urllib.request

    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/v2/metrics", timeout=60
    ) as response:
        content_type = response.headers.get("Content-Type", "")
        body = response.read().decode("utf-8")
    failures = 0
    if "text/plain" not in content_type:
        failures += 1
        print(f"[e2e] FAIL: /v2/metrics content type {content_type!r}")
    page = parse_prometheus(body)  # raises SystemExit-worthy ValueError if malformed
    executed = page.sum_by_label("fairank_requests_total", "kind")
    observed_latency = page.sum_by_label("fairank_request_seconds_count", "kind")
    for kind, expected in EXPECTED_REQUESTS.items():
        observed = executed.get(kind, 0.0)
        if observed != expected:
            failures += 1
            print(f"[e2e] FAIL: fairank_requests_total kind={kind} is "
                  f"{observed:g}, expected {expected}")
        if observed_latency.get(kind, 0.0) != expected:
            failures += 1
            print(f"[e2e] FAIL: fairank_request_seconds has no full latency "
                  f"record for kind={kind}")
    if workers > 1:
        ingress = page.sum_by_label("fairank_router_requests_total", "endpoint")
        if not ingress:
            failures += 1
            print("[e2e] FAIL: router metrics page carries no "
                  "fairank_router_requests_total samples")
    if not failures:
        surface = "aggregated fleet" if workers > 1 else "server"
        print(f"[e2e] metrics: {surface} page parses, per-kind counters match "
              f"({sum(EXPECTED_REQUESTS.values())} requests accounted for)")
    return failures


def check_trace(remote: HTTPFairnessClient, workers: int) -> int:
    """Pin a trace id through one request and audit the envelope timings."""
    pinned = Trace("e2e-pinned-trace")
    with activate(pinned):
        traced = remote.quantify("table1", "table1-f")
    timings = traced.timings or {}
    failures = 0
    if timings.get("trace_id") != pinned.trace_id:
        failures += 1
        print(f"[e2e] FAIL: envelope trace id {timings.get('trace_id')!r} is not "
              f"the pinned ingress id {pinned.trace_id!r}")
    if "total_ms" not in timings:
        failures += 1
        print(f"[e2e] FAIL: envelope timings carry no total_ms: {timings}")
    if workers > 1 and "route_ms" not in timings:
        failures += 1
        print(f"[e2e] FAIL: router did not stamp route_ms: {timings}")
    if not failures:
        hops = "client -> router -> worker" if workers > 1 else "client -> server"
        print(f"[e2e] trace: one id spans {hops} "
              f"(total {timings.get('total_ms')} ms)")
    return failures


def build_snapshot(path: Path) -> None:
    subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "catalog",
            "--save", str(path), "--market-size", MARKET_SIZE,
        ],
        check=True,
        timeout=120,
        env=SUBPROCESS_ENV,
    )
    print(f"[e2e] snapshot built: {path} ({path.stat().st_size} bytes)")


def boot_server(
    snapshot: Path, workers: int, warm_dir: "Path | None" = None
) -> "tuple[subprocess.Popen, int]":
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--catalog", str(snapshot), "--port", "0",
            "--workers", str(workers),
        ]
        + (["--warm-dir", str(warm_dir)] if warm_dir is not None else []),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=SUBPROCESS_ENV,
    )
    assert process.stdout is not None
    # Read stdout on a thread: a server that binds but never prints would
    # otherwise block readline forever and the deadline would never fire.
    lines: "queue.Queue[str | None]" = queue.Queue()

    def pump() -> None:
        for line in process.stdout:  # type: ignore[union-attr]
            lines.put(line)
        lines.put(None)

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while True:
        try:
            line = lines.get(timeout=max(0.1, deadline - time.monotonic()))
        except queue.Empty:
            break
        if line is None:  # stdout closed: the server exited before binding
            break
        print(f"[serve] {line.rstrip()}")
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return process, int(match.group(1))
        if time.monotonic() > deadline:
            break
    process.kill()
    raise SystemExit(
        f"[e2e] FAIL: server never announced a bound port within {BOOT_TIMEOUT_S:.0f}s"
    )


def scenario_calls(client):
    """One call per protocol-v2 request kind, against either client."""
    return [
        ("quantify", lambda: client.quantify("table1", "table1-f")),
        ("audit", lambda: client.audit("crowdsourcing-sim", min_partition_size=5)),
        ("compare", lambda: client.compare("table1", ["table1-f", "balanced"])),
        ("breakdown", lambda: client.breakdown("table1", "table1-f")),
        ("sweep", lambda: client.sweep("table1", "table1-f", steps=3)),
        (
            "end_user",
            lambda: client.end_user(
                {"Gender": "Female"}, ["crowdsourcing-sim"], "Content writing"
            ),
        ),
        (
            "job_owner",
            lambda: client.job_owner(
                "crowdsourcing-sim", "Content writing", sweep_steps=3
            ),
        ),
    ]


def shutdown_server(process: subprocess.Popen, context: str) -> int:
    """SIGTERM the server and fail unless it drains and exits 0."""
    process.terminate()
    try:
        exit_code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        print(f"[e2e] FAIL: {context} did not exit after SIGTERM")
        return 1
    if exit_code != 0:
        print(f"[e2e] FAIL: {context} exited {exit_code} after SIGTERM "
              "(graceful shutdown should exit 0)")
        return 1
    return 0


def check_warm_restart(
    snapshot: Path, workers: int, reference: FairnessClient, workdir: str
) -> int:
    """Restart leg: a SIGTERM'd --warm-dir fleet must reboot hot.

    Life 1 boots cold with ``--warm-dir`` and warms one (dataset, function)
    pair; the graceful shutdown saves warm bundles.  Life 2 reboots from
    those bundles and must serve the same request byte-identically *from the
    reloaded cache*, with the store pool populated and zero scoring passes.
    """
    warm_dir = Path(workdir) / f"warm-{workers}"
    expected = reference.quantify("table1", "table1-f").canonical()
    failures = 0

    process, port = boot_server(snapshot, workers, warm_dir=warm_dir)
    try:
        remote = HTTPFairnessClient(f"http://127.0.0.1:{port}", timeout=60.0)
        if remote.quantify("table1", "table1-f").canonical() != expected:
            failures += 1
            print("[e2e] FAIL: warm leg life 1 diverged from in-process")
    finally:
        failures += shutdown_server(process, "warm leg life 1")
    bundles = list(warm_dir.glob("**/manifest.json"))
    if not bundles:
        failures += 1
        print(f"[e2e] FAIL: graceful shutdown saved no warm bundle in {warm_dir}")
        return failures

    process, port = boot_server(snapshot, workers, warm_dir=warm_dir)
    try:
        remote = HTTPFairnessClient(f"http://127.0.0.1:{port}", timeout=60.0)
        result = remote.quantify("table1", "table1-f")
        if result.canonical() != expected:
            failures += 1
            print("[e2e] FAIL: restarted fleet diverged from in-process")
        if not result.cached:
            failures += 1
            print("[e2e] FAIL: restarted fleet did not serve from the "
                  "reloaded result cache")
        health = remote.health()
        if workers > 1:
            pools = [
                entry["store_pool"] for entry in health["workers"]["health"]
            ]
        else:
            pools = [health["store_pool"]]
        stores = sum(stats["stores"] for stats in pools)
        passes = sum(stats["scoring_passes"] for stats in pools)
        if stores < 1:
            failures += 1
            print("[e2e] FAIL: restarted fleet's store pool is empty")
        if passes != 0:
            failures += 1
            print(f"[e2e] FAIL: restarted fleet re-scored ({passes} pass(es)) "
                  "instead of loading the warm vectors")
        if not failures:
            print(f"[e2e] warm restart: {len(bundles)} bundle(s) reloaded, "
                  f"first request cached + byte-identical, {stores} store(s) "
                  "warm with 0 scoring passes")
    finally:
        failures += shutdown_server(process, "warm leg life 2")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes behind the shard router (1 = single-process)",
    )
    arguments = parser.parse_args()

    with tempfile.TemporaryDirectory() as workdir:
        snapshot = Path(workdir) / "deployment.json"
        build_snapshot(snapshot)

        # The in-process reference boots from the *same* snapshot, so any
        # divergence is the HTTP layer's fault, not the registry's.
        reference = FairnessClient(FairnessService(catalog=Catalog.load(snapshot)))

        process, port = boot_server(snapshot, arguments.workers)
        failures = 0
        try:
            remote = HTTPFairnessClient(f"http://127.0.0.1:{port}", timeout=60.0)
            health = remote.health()
            assert health["status"] == "ok", health
            if arguments.workers > 1:
                fleet = health["workers"]
                assert fleet["alive"] == arguments.workers, fleet
                print(f"[e2e] router health ok, {fleet['alive']} worker(s) alive, "
                      f"catalog: {health['catalog']}")
            else:
                print(f"[e2e] health ok, catalog: {health['catalog']}")

            for (kind, via_http), (_, in_process) in zip(
                scenario_calls(remote), scenario_calls(reference)
            ):
                http_result = via_http()
                local_result = in_process()
                if http_result.canonical() == local_result.canonical():
                    print(f"[e2e] {kind}: byte-identical "
                          f"({http_result.elapsed_s * 1000:.1f} ms)")
                else:
                    failures += 1
                    print(f"[e2e] FAIL: {kind} diverged between HTTP and in-process")

            batch_requests = [
                QuantifyRequest(dataset="table1", function="table1-f"),
                SweepRequest(dataset="table1", function="table1-f", steps=3),
                AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=5),
            ]
            via_batch = remote.batch(batch_requests)
            serial = [reference.service.execute(request) for request in batch_requests]
            for request, http_result, local_result in zip(
                batch_requests, via_batch, serial
            ):
                if http_result.canonical() != local_result.canonical():
                    failures += 1
                    print(f"[e2e] FAIL: batched {request.kind} diverged")
            print(f"[e2e] batch of {len(batch_requests)}: "
                  f"{len(via_batch)} envelopes, order preserved")

            # Scrape before the trace leg so the per-kind expectations above
            # stay exact; the extra traced quantify lands after the audit.
            failures += check_metrics(port, arguments.workers)
            failures += check_trace(remote, arguments.workers)
        finally:
            failures += shutdown_server(process, "server")

        failures += check_warm_restart(
            snapshot, arguments.workers, reference, workdir
        )

        if failures:
            print(f"[e2e] FAILED with {failures} mismatch(es)")
            return 1
        surface = (
            f"shard router over {arguments.workers} workers"
            if arguments.workers > 1
            else "HTTP front end"
        )
        print(f"[e2e] PASS: {surface} is byte-identical to in-process serving")
        return 0


if __name__ == "__main__":
    sys.exit(main())
