#!/usr/bin/env python
"""CI gate for the static analysis plane (``repro.analysis``).

Runs the full rule pack (see ``docs/ANALYSIS.md``) over the repository's
source roots against the committed baseline and **fails** on:

* any new finding (a violation not masked by ``.fairlint-baseline.json``),
* any unused or malformed ``# fairlint:`` suppression (FL000),
* any stale baseline entry (a tolerated legacy finding that no longer
  occurs — regenerate with ``fairank lint --update-baseline`` so the
  ratchet shrinks).

``--self-test`` additionally proves every registered rule still detects
its own seeded violation (:mod:`repro.analysis.selftest`), so the
analysis plane cannot rot silently.  ``--output`` always writes the JSON
report — CI uploads it as an artifact even on failure.

Exit status 0 when clean, 1 otherwise.  Stdlib only; run from the
repository root (CI does), or pass ``--root``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List


def main(argv: List[str]) -> int:
    arguments = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    arguments.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    arguments.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: <root>/.fairlint-baseline.json)",
    )
    arguments.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON report here (CI artifact)",
    )
    arguments.add_argument(
        "--self-test", action="store_true",
        help="also require every rule to detect its seeded violation",
    )
    options = arguments.parse_args(argv)
    root = Path(options.root).resolve()
    # The analysis plane itself always comes from this script's repository
    # (--root may point at a tree that has no src/repro of its own).
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

    from repro.analysis import (
        DEFAULT_BASELINE_NAME,
        DEFAULT_TARGETS,
        Baseline,
        run_analysis,
    )

    baseline_path = (
        Path(options.baseline) if options.baseline else root / DEFAULT_BASELINE_NAME
    )
    baseline = Baseline.load(baseline_path) if baseline_path.is_file() else None
    targets = [root / target for target in DEFAULT_TARGETS if (root / target).exists()]
    report = run_analysis(targets, root=root, baseline=baseline)

    if options.output:
        Path(options.output).write_text(
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    problems = 0
    if report.failed:
        print(report.render_text(), file=sys.stderr)
        problems += len(report.diff.new) + len(report.diff.stale)

    if options.self_test:
        from repro.analysis.selftest import run_selftest

        results = run_selftest()
        for rule_id, count in sorted(results.items()):
            if count == 0:
                print(
                    f"self-test: rule {rule_id} no longer detects its "
                    "seeded violation",
                    file=sys.stderr,
                )
                problems += 1

    if problems:
        print(f"analysis check: {problems} problem(s)", file=sys.stderr)
        return 1
    masked = len(report.diff.masked)
    print(
        f"analysis check OK: {report.files_analyzed} file(s) clean "
        f"({masked} baseline-masked finding(s))"
        + (", every rule detects its seeded violation" if options.self_test else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
