#!/usr/bin/env python
"""CI gate for the docs tree: links, anchors, flags and rule ids must exist.

Four checks over ``docs/*.md`` (plus ``README.md`` for links/anchors):

* **links** — every internal markdown link ``[text](target)`` must point
  at a file that exists, resolved relative to the file containing the
  link (external ``http(s)://`` / ``mailto:`` targets are skipped);
* **anchors** — a link with a ``#fragment`` (same-file ``(#section)`` or
  cross-file ``(FILE.md#section)``) must name a real heading: the
  fragment has to match the GitHub-style slug of some heading in the
  target markdown file, so section references can never go dead;
* **flags** — every ``--flag`` token named in ``docs/*.md`` must exist in
  the ``fairank`` CLI parser (:func:`repro.cli.build_parser`, walked
  recursively through its subcommands), so documentation can never name
  an option the binary does not accept;
* **rule ids** — every ``FLnnn`` analysis rule id mentioned in
  ``docs/*.md`` must exist in the :mod:`repro.analysis` registry, so the
  rule catalogue in ``docs/ANALYSIS.md`` (and FL005's cross-reference in
  ``docs/OPERATIONS.md``) cannot drift from the shipped rule pack.

Exit status 0 when clean, 1 with one line per problem otherwise.  Run it
from the repository root (CI does), or pass ``--root``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Set

#: ``[text](target)`` — target captured with any ``#fragment`` suffix.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: A long-option token: ``--workers``, ``--slow-ms``, ... (word-bounded so
#: YAML comments or ``a--b`` text cannot produce false positives).
_FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")

#: A static-analysis rule id (see repro.analysis.registry).
_RULE_ID = re.compile(r"\bFL\d{3}\b")

#: A markdown ATX heading (used to build anchor slugs).
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _parser_flags() -> Set[str]:
    """Every long option the ``fairank`` parser (or a subcommand) accepts."""
    from repro.cli import build_parser

    flags: Set[str] = set()
    pending = [build_parser()]
    while pending:
        parser = pending.pop()
        for action in parser._actions:  # noqa: SLF001 - argparse has no public walk
            flags.update(s for s in action.option_strings if s.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):  # noqa: SLF001
                pending.extend(action.choices.values())
    return flags


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for one heading line."""
    text = heading.strip().lower()
    text = re.sub(r"`([^`]*)`", r"\1", text)            # drop code ticks
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # keep link text
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> Set[str]:
    """Every heading slug in a markdown file (with -1/-2 duplicate suffixes)."""
    slugs: Set[str] = set()
    counts: Dict[str, int] = {}
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slugify(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def check_links(markdown_files: List[Path]) -> List[str]:
    """Broken file targets *and* dead section anchors."""
    problems = []
    anchor_cache: Dict[Path, Set[str]] = {}
    for path in markdown_files:
        for raw_target in _LINK.findall(path.read_text(encoding="utf-8")):
            if raw_target.startswith(_EXTERNAL_PREFIXES):
                continue
            target, _, fragment = raw_target.partition("#")
            resolved = (path.parent / target).resolve() if target else path
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {raw_target}")
                continue
            if not fragment or resolved.suffix.lower() != ".md":
                continue
            if resolved not in anchor_cache:
                anchor_cache[resolved] = _anchors(resolved)
            if fragment.lower() not in anchor_cache[resolved]:
                problems.append(
                    f"{path}: dead anchor -> {raw_target} "
                    f"(no heading slug '{fragment}' in {resolved.name})"
                )
    return problems


def check_flags(doc_files: List[Path]) -> List[str]:
    known = _parser_flags()
    problems = []
    for path in doc_files:
        for flag in sorted(set(_FLAG.findall(path.read_text(encoding="utf-8")))):
            if flag not in known:
                problems.append(
                    f"{path}: documents flag {flag} which no fairank "
                    "subcommand accepts"
                )
    return problems


def check_rule_ids(doc_files: List[Path]) -> List[str]:
    """Every FLnnn mentioned in docs must be a registered analysis rule."""
    from repro.analysis import rule_ids

    known = set(rule_ids())
    problems = []
    for path in doc_files:
        for rule_id in sorted(set(_RULE_ID.findall(path.read_text(encoding="utf-8")))):
            if rule_id not in known:
                problems.append(
                    f"{path}: mentions analysis rule {rule_id} which is not "
                    "in the repro.analysis registry"
                )
    return problems


def main(argv: List[str]) -> int:
    arguments = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    arguments.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    options = arguments.parse_args(argv)
    root = Path(options.root).resolve()

    doc_files = sorted((root / "docs").glob("*.md"))
    if not doc_files:
        print(f"no docs/*.md files under {root}", file=sys.stderr)
        return 1
    link_files = list(doc_files)
    readme = root / "README.md"
    if readme.exists():
        link_files.append(readme)

    problems = (
        check_links(link_files)
        + check_flags(doc_files)
        + check_rule_ids(doc_files)
    )
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"docs check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    flag_count = sum(
        len(set(_FLAG.findall(path.read_text(encoding="utf-8"))))
        for path in doc_files
    )
    rule_count = sum(
        len(set(_RULE_ID.findall(path.read_text(encoding="utf-8"))))
        for path in doc_files
    )
    print(
        f"docs check OK: {len(link_files)} file(s); links and anchors "
        f"resolve, {flag_count} documented flag reference(s) and "
        f"{rule_count} rule id reference(s) exist"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
