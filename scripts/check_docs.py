#!/usr/bin/env python
"""CI gate for the docs tree: links must resolve, flags must exist.

Two checks over ``docs/*.md`` (plus ``README.md`` for links):

* **links** — every internal markdown link ``[text](target)`` must point
  at a file that exists, resolved relative to the file containing the
  link (external ``http(s)://`` / ``mailto:`` targets are skipped, and a
  ``#fragment`` suffix is ignored);
* **flags** — every ``--flag`` token named in ``docs/*.md`` must exist in
  the ``fairank`` CLI parser (:func:`repro.cli.build_parser`, walked
  recursively through its subcommands), so documentation can never name
  an option the binary does not accept.

Exit status 0 when clean, 1 with one line per problem otherwise.  Run it
from the repository root (CI does), or pass ``--root``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Set

#: ``[text](target)`` — target captured without any ``#fragment`` suffix.
_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")

#: A long-option token: ``--workers``, ``--slow-ms``, ... (word-bounded so
#: YAML comments or ``a--b`` text cannot produce false positives).
_FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _parser_flags() -> Set[str]:
    """Every long option the ``fairank`` parser (or a subcommand) accepts."""
    from repro.cli import build_parser

    flags: Set[str] = set()
    pending = [build_parser()]
    while pending:
        parser = pending.pop()
        for action in parser._actions:  # noqa: SLF001 - argparse has no public walk
            flags.update(s for s in action.option_strings if s.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):  # noqa: SLF001
                pending.extend(action.choices.values())
    return flags


def check_links(markdown_files: List[Path]) -> List[str]:
    problems = []
    for path in markdown_files:
        for target in _LINK.findall(path.read_text(encoding="utf-8")):
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target}")
    return problems


def check_flags(doc_files: List[Path]) -> List[str]:
    known = _parser_flags()
    problems = []
    for path in doc_files:
        for flag in sorted(set(_FLAG.findall(path.read_text(encoding="utf-8")))):
            if flag not in known:
                problems.append(
                    f"{path}: documents flag {flag} which no fairank "
                    "subcommand accepts"
                )
    return problems


def main(argv: List[str]) -> int:
    arguments = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    arguments.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    options = arguments.parse_args(argv)
    root = Path(options.root).resolve()

    doc_files = sorted((root / "docs").glob("*.md"))
    if not doc_files:
        print(f"no docs/*.md files under {root}", file=sys.stderr)
        return 1
    link_files = list(doc_files)
    readme = root / "README.md"
    if readme.exists():
        link_files.append(readme)

    problems = check_links(link_files) + check_flags(doc_files)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"docs check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    flag_count = sum(
        len(set(_FLAG.findall(path.read_text(encoding="utf-8"))))
        for path in doc_files
    )
    print(
        f"docs check OK: {len(link_files)} file(s), links resolve, "
        f"{flag_count} documented flag reference(s) exist in the CLI"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
