"""Streaming/columnar data-plane tests (repro.data.columns + loaders).

Three invariants the columnar rebuild promises:

* **chunk invariance** — ``load_csv`` produces a byte-identical dataset
  (same values, same content fingerprint, same scores) for every
  ``chunk_rows``, including one row per chunk and a single chunk covering
  the whole file;
* **restart durability** — a :class:`ColumnStore` saved to disk and
  memory-mapped back by a fresh process state yields the same values and
  the same content fingerprint, with the arrays still disk-backed;
* **snapshot round trip** — integer-coded protected columns (ints, bools,
  strings mixed in one column) survive a columnar catalog snapshot
  save/load exactly, types included (hypothesis property test).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, ResourceKind
from repro.data.columns import ColumnStore, ColumnStoreBuilder
from repro.data.dataset import Dataset
from repro.data.loaders import load_csv
from repro.data.schema import Schema, observed, protected
from repro.scoring.linear import LinearScoringFunction
from repro.service import FairnessService
from repro.service.fingerprint import fingerprint_dataset

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _write_csv(path: Path, rows: int = 23) -> Path:
    lines = ["Gender,City,Rating"]
    genders = ("F", "M")
    cities = ("NY", "SF", "LA")
    for i in range(rows):
        lines.append(
            f"{genders[i % 2]},{cities[i % 3]},{round(0.05 + (i % 19) / 20, 2)}"
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestChunkedStreamingEquivalence:
    @pytest.mark.parametrize("chunk_rows", [1, 2, 7, 23, 1_000_000])
    def test_every_chunk_size_is_byte_identical(self, tmp_path, chunk_rows):
        """Chunked ingestion matches the one-shot load exactly: values,
        content fingerprint, and downstream scores."""
        path = _write_csv(tmp_path / "workers.csv")
        kwargs = dict(protected_names=["Gender", "City"], observed_names=["Rating"])
        one_shot = load_csv(path, chunk_rows=1_000_000, **kwargs)
        chunked = load_csv(path, chunk_rows=chunk_rows, **kwargs)

        assert len(chunked) == len(one_shot) == 23
        assert chunked.uids == one_shot.uids
        for name in ("Gender", "City", "Rating"):
            assert chunked.column(name) == one_shot.column(name)
        assert fingerprint_dataset(chunked) == fingerprint_dataset(one_shot)

        function = LinearScoringFunction({"Rating": 1.0}, name="rating")
        assert function.score_map(chunked) == function.score_map(one_shot)

    def test_chunked_matches_row_primary_dataset(self, tmp_path):
        """The streamed store-backed dataset fingerprints identically to a
        row-primary dataset built from the same records."""
        path = _write_csv(tmp_path / "workers.csv", rows=11)
        streamed = load_csv(
            path, protected_names=["Gender", "City"], observed_names=["Rating"]
        )
        records = [dict(ind.values) for ind in streamed]
        rows = Dataset.from_records(streamed.schema, records, name=streamed.name)
        assert fingerprint_dataset(rows) == fingerprint_dataset(streamed)


class TestMemmapReloadAfterRestart:
    def _dataset(self) -> Dataset:
        schema = Schema((
            protected("Gender", domain=("F", "M")),
            protected("City", domain=("NY", "SF", "LA")),
            observed("Rating", domain=(0.0, 1.0)),
        ))
        records = [
            {"Gender": "F", "City": "NY", "Rating": 0.9},
            {"Gender": "M", "City": "SF", "Rating": 0.4},
            {"Gender": "F", "City": "LA", "Rating": 0.7},
            {"Gender": "M", "City": "NY", "Rating": 0.2},
        ]
        return Dataset.from_records(schema, records, name="toy")

    def test_memmap_reload_preserves_values_and_fingerprint(self, tmp_path):
        original = self._dataset()
        directory = tmp_path / "columns"
        original.to_store().save(directory)

        # A fresh load from disk is exactly what a restarted server does.
        reloaded = Dataset.from_store(
            original.schema, ColumnStore.load(directory, mmap=True), name="toy"
        )
        assert len(reloaded) == len(original)
        assert reloaded.uids == original.uids
        for name in ("Gender", "City", "Rating"):
            assert reloaded.column(name) == original.column(name)
        assert fingerprint_dataset(reloaded) == fingerprint_dataset(original)

    def test_memmap_arrays_stay_disk_backed(self, tmp_path):
        directory = tmp_path / "columns"
        self._dataset().to_store().save(directory)
        store = ColumnStore.load(directory, mmap=True)
        backed = 0
        for name in store.names:
            column = store.column(name)
            array = column.codes if hasattr(column, "codes") else column.values
            base = array
            while isinstance(base, np.ndarray) and not isinstance(base, np.memmap):
                base = base.base
            if isinstance(base, np.memmap):
                backed += 1
        assert backed == len(store.names)

    def test_eager_load_matches_memmap_load(self, tmp_path):
        directory = tmp_path / "columns"
        original = self._dataset()
        original.to_store().save(directory)
        eager = Dataset.from_store(
            original.schema, ColumnStore.load(directory, mmap=False), name="toy"
        )
        mapped = Dataset.from_store(
            original.schema, ColumnStore.load(directory, mmap=True), name="toy"
        )
        assert fingerprint_dataset(eager) == fingerprint_dataset(mapped)

    def test_builder_chunks_match_single_append(self):
        columns = {
            "Gender": ["F", "M", "F", "M", "F"],
            "Rating": [0.9, 0.4, 0.7, 0.2, 0.6],
        }
        whole = ColumnStoreBuilder(["Gender"], ["Rating"])
        whole.append_chunk(columns)
        split = ColumnStoreBuilder(["Gender"], ["Rating"])
        for start in range(0, 5, 2):
            split.append_chunk(
                {name: values[start:start + 2] for name, values in columns.items()}
            )
        one, two = whole.finish(), split.finish()
        for name in ("Gender", "Rating"):
            assert one.column(name).decode_range(0, 5) == (
                two.column(name).decode_range(0, 5)
            )


#: Values an integer-coded protected column may hold: the encode table must
#: keep 1, 1.0, True and "1" distinct and return each with its exact type.
coded_values = st.one_of(
    st.integers(min_value=-1_000, max_value=1_000),
    st.booleans(),
    st.sampled_from(["alpha", "beta", "gamma", "1", ""]),
)


class TestSnapshotRoundTripProperty:
    @SETTINGS
    @given(
        st.lists(coded_values, min_size=1, max_size=30),
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
            min_size=1,
            max_size=30,
        ),
    )
    def test_integer_coded_columns_round_trip_snapshot(self, codes, ratings):
        """Protected columns of mixed ints/bools/strings survive a columnar
        catalog snapshot save/load with exact values and exact types."""
        size = min(len(codes), len(ratings))
        codes, ratings = codes[:size], ratings[:size]
        schema = Schema((
            protected("Code"),
            observed("Rating", domain=(0.0, 1.0)),
        ))
        records = [
            {"Code": code, "Rating": float(rating)}
            for code, rating in zip(codes, ratings)
        ]
        original = Dataset.from_records(schema, records, name="prop")

        service = FairnessService()
        service.register_dataset(original, name="prop")
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "catalog.json"
            service.catalog.save(path, columnar_datasets=True)
            reloaded = Catalog.load(path).resolve(ResourceKind.DATASET, "prop")

        assert len(reloaded) == size
        round_tripped = reloaded.column("Code")
        assert round_tripped == tuple(codes)
        # Tuple equality treats True == 1 == 1.0; pin the exact types too.
        assert [type(v) for v in round_tripped] == [type(v) for v in codes]
        assert reloaded.numeric_column("Rating").tolist() == [
            float(r) for r in ratings
        ]
        assert fingerprint_dataset(reloaded) == fingerprint_dataset(original)
