"""Tests for repro.core.tree."""

import pytest

from repro.core.partition import Partitioning, root_partition, split_partition
from repro.core.tree import PartitionNode, PartitionTree
from repro.errors import PartitioningError


@pytest.fixture
def manual_tree(table1_dataset):
    """The Figure 2 tree: split on Gender, then split Male on Language."""
    root = PartitionNode(partition=root_partition(table1_dataset))
    root.split_attribute = "Gender"
    children = {
        child.constraint_value("Gender"): root.add_child(PartitionNode(partition=child))
        for child in split_partition(root.partition, "Gender")
    }
    male_node = children["Male"]
    male_node.split_attribute = "Language"
    for child in split_partition(male_node.partition, "Language"):
        male_node.add_child(PartitionNode(partition=child))
    return PartitionTree(root)


class TestPartitionNode:
    def test_leaf_and_label(self, table1_dataset):
        node = PartitionNode(partition=root_partition(table1_dataset))
        assert node.is_leaf
        assert node.label == "ALL"
        assert node.size == 10
        assert node.depth() == 0

    def test_add_child_and_traversal(self, manual_tree):
        root = manual_tree.root
        assert not root.is_leaf
        labels = [node.label for node in root.iter_nodes()]
        assert labels[0] == "ALL"
        assert "Gender=Male" in labels
        assert any("Language=English" in label for label in labels)

    def test_find(self, manual_tree):
        assert manual_tree.root.find("Gender=Female") is not None
        assert manual_tree.root.find("Gender=Unknown") is None


class TestPartitionTree:
    def test_requires_root(self):
        with pytest.raises(PartitioningError):
            PartitionTree(None)

    def test_leaves_form_figure2_partitioning(self, manual_tree):
        leaves = manual_tree.leaves()
        labels = {leaf.label for leaf in leaves}
        assert labels == {
            "Gender=Female",
            "Gender=Male, Language=English",
            "Gender=Male, Language=Indian",
            "Gender=Male, Language=Other",
        }
        assert sum(leaf.size for leaf in leaves) == 10

    def test_to_partitioning_is_valid(self, manual_tree):
        partitioning = manual_tree.to_partitioning()
        assert isinstance(partitioning, Partitioning)
        assert len(partitioning) == 4

    def test_depth_and_counts(self, manual_tree):
        assert manual_tree.depth() == 2
        assert manual_tree.node_count() == 1 + 2 + 3
        assert len(manual_tree.nodes()) == manual_tree.node_count()

    def test_find_raises_for_unknown_label(self, manual_tree):
        assert manual_tree.find("Gender=Male").size == 6
        with pytest.raises(PartitioningError):
            manual_tree.find("nonexistent")

    def test_split_attributes_used(self, manual_tree):
        assert manual_tree.split_attributes_used() == ("Gender", "Language")

    def test_summary(self, manual_tree):
        summary = manual_tree.summary()
        assert summary["partitions"] == 4
        assert summary["depth"] == 2
        assert summary["split_attributes"] == ["Gender", "Language"]
        assert summary["partition_sizes"]["Gender=Female"] == 4

    def test_from_partitioning_flat_tree(self, table1_dataset):
        partitioning = Partitioning.by_attributes(table1_dataset, ["Country"])
        tree = PartitionTree.from_partitioning(partitioning)
        assert tree.depth() == 1
        assert {leaf.label for leaf in tree.leaves()} == set(partitioning.labels)
        assert tree.root.split_attribute == "Country"

    def test_from_partitioning_single(self, table1_dataset):
        tree = PartitionTree.from_partitioning(Partitioning.single(table1_dataset))
        assert tree.depth() == 0
        assert tree.leaves()[0].label == "ALL"
