"""Tests for repro.metrics.histogram."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormulationError
from repro.metrics.histogram import DEFAULT_BINS, Binning, Histogram, build_histogram


class TestBinning:
    def test_unit_binning_edges(self):
        binning = Binning.unit(5)
        assert binning.bins == 5
        assert binning.edges.tolist() == pytest.approx([0.0, 0.2, 0.4, 0.6, 0.8, 1.0])
        assert binning.width == pytest.approx(0.2)

    def test_centers(self):
        binning = Binning.unit(4)
        assert binning.centers.tolist() == pytest.approx([0.125, 0.375, 0.625, 0.875])

    def test_invalid_bins(self):
        with pytest.raises(FormulationError):
            Binning(0.0, 1.0, bins=0)

    def test_invalid_bounds(self):
        with pytest.raises(FormulationError):
            Binning(1.0, 0.0)
        with pytest.raises(FormulationError):
            Binning(float("nan"), 1.0)

    def test_degenerate_range_still_produces_edges(self):
        binning = Binning(0.5, 0.5, bins=3)
        edges = binning.edges
        assert len(edges) == 4
        assert edges[0] < 0.5 < edges[-1]

    def test_bin_index_clamps(self):
        binning = Binning.unit(5)
        assert binning.bin_index(-1.0) == 0
        assert binning.bin_index(0.0) == 0
        assert binning.bin_index(0.5) == 2
        assert binning.bin_index(1.0) == 4
        assert binning.bin_index(2.0) == 4

    def test_for_scores(self):
        binning = Binning.for_scores([0.2, 0.8, 0.5])
        assert binning.low == pytest.approx(0.2)
        assert binning.high == pytest.approx(0.8)

    def test_for_scores_empty_falls_back_to_unit(self):
        binning = Binning.for_scores([])
        assert binning.low == 0.0 and binning.high == 1.0


class TestHistogram:
    def test_counts_validation(self):
        binning = Binning.unit(3)
        with pytest.raises(FormulationError):
            Histogram(binning, (1, 2))  # wrong length
        with pytest.raises(FormulationError):
            Histogram(binning, (1, -1, 0))  # negative

    def test_total_and_empty(self):
        binning = Binning.unit(3)
        assert Histogram(binning, (0, 0, 0)).is_empty
        assert Histogram(binning, (1, 2, 3)).total == 6

    def test_normalized_sums_to_one(self):
        histogram = Histogram(Binning.unit(4), (1, 1, 2, 0))
        assert histogram.normalized().sum() == pytest.approx(1.0)

    def test_normalized_empty_is_uniform(self):
        histogram = Histogram(Binning.unit(4), (0, 0, 0, 0))
        assert histogram.normalized().tolist() == pytest.approx([0.25] * 4)

    def test_normalized_is_cached_and_readonly(self):
        histogram = Histogram(Binning.unit(4), (1, 2, 3, 4))
        first = histogram.normalized()
        second = histogram.normalized()
        assert first is second
        with pytest.raises(ValueError):
            first[0] = 0.5

    def test_mean_score_uses_bin_centers(self):
        histogram = Histogram(Binning.unit(2), (1, 1))
        assert histogram.mean_score() == pytest.approx(0.5)

    def test_merge(self):
        binning = Binning.unit(3)
        merged = Histogram(binning, (1, 0, 2)).merge(Histogram(binning, (0, 1, 1)))
        assert merged.counts == (1, 1, 3)

    def test_merge_rejects_different_binning(self):
        with pytest.raises(FormulationError):
            Histogram(Binning.unit(3), (1, 0, 0)).merge(Histogram(Binning.unit(4), (1, 0, 0, 0)))

    def test_describe(self):
        assert Histogram(Binning.unit(3), (1, 2, 3)).describe() == "[1|2|3]"


class TestBuildHistogram:
    def test_default_unit_binning(self):
        histogram = build_histogram([0.1, 0.1, 0.5, 0.95])
        assert histogram.binning.bins == DEFAULT_BINS
        assert histogram.total == 4
        assert histogram.counts == (2, 0, 1, 0, 1)

    def test_boundary_values_fall_in_last_bin(self):
        histogram = build_histogram([1.0, 1.0], bins=5)
        assert histogram.counts == (0, 0, 0, 0, 2)

    def test_out_of_range_scores_are_clamped(self):
        histogram = build_histogram([-0.5, 1.5], bins=4)
        assert histogram.counts[0] == 1
        assert histogram.counts[-1] == 1

    def test_empty_scores(self):
        histogram = build_histogram([])
        assert histogram.is_empty

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=200),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_total_always_matches_input_size(self, scores, bins):
        histogram = build_histogram(scores, bins=bins)
        assert histogram.total == len(scores)
        assert len(histogram.counts) == bins

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_normalized_is_distribution(self, scores):
        histogram = build_histogram(scores)
        weights = histogram.normalized()
        assert weights.sum() == pytest.approx(1.0)
        assert (weights >= 0).all()
