"""Tests for the AUDITOR role workflow."""

import pytest

from repro.core.formulations import Formulation, Objective
from repro.errors import MarketplaceError
from repro.marketplace.entities import Marketplace
from repro.roles.auditor import Auditor


@pytest.fixture(scope="module")
def audit_report(request):
    marketplace = request.getfixturevalue("crowdsourcing_marketplace_fixture")
    return Auditor(min_partition_size=2).audit_marketplace(marketplace)


class TestAuditJob:
    def test_audit_covers_every_job(self, audit_report, crowdsourcing_marketplace_fixture):
        assert len(audit_report.audits) == len(crowdsourcing_marketplace_fixture)
        assert {a.job_title for a in audit_report.audits} == set(
            crowdsourcing_marketplace_fixture.job_titles
        )

    def test_each_audit_has_favoured_groups(self, audit_report):
        for audit in audit_report.audits:
            assert audit.unfairness >= 0.0
            if len(audit.partitions) > 1:
                assert audit.most_favored is not None
                assert audit.least_favored is not None
                assert audit.most_favored != audit.least_favored

    def test_most_and_least_unfair_job(self, audit_report):
        most = audit_report.most_unfair_job
        least = audit_report.least_unfair_job
        assert most.unfairness >= least.unfairness
        values = [a.unfairness for a in audit_report.audits]
        assert most.unfairness == max(values)
        assert least.unfairness == min(values)

    def test_audit_for_lookup(self, audit_report):
        title = audit_report.audits[0].job_title
        assert audit_report.audit_for(title).job_title == title
        with pytest.raises(MarketplaceError):
            audit_report.audit_for("ghost job")

    def test_report_table_rendering(self, audit_report):
        table = audit_report.to_table()
        assert len(table) == len(audit_report.audits)
        text = audit_report.render()
        assert "most unfair job" in text
        assert audit_report.most_unfair_job.job_title in text

    def test_opaque_jobs_audited_via_ranks(self, crawled_marketplace):
        report = Auditor(min_partition_size=3).audit_marketplace(crawled_marketplace)
        opaque_titles = [job.title for job in crawled_marketplace if not job.is_transparent]
        assert opaque_titles
        for title in opaque_titles:
            audit = report.audit_for(title)
            assert audit.transparent_function is False
            assert audit.unfairness >= 0.0


class TestAuditorConfiguration:
    def test_empty_marketplace_rejected(self, small_population):
        empty = Marketplace(name="empty", workers=small_population)
        with pytest.raises(MarketplaceError):
            Auditor().audit_marketplace(empty)

    def test_least_unfair_formulation(self, crowdsourcing_marketplace_fixture):
        least_auditor = Auditor(
            formulation=Formulation(objective=Objective.LEAST_UNFAIR), min_partition_size=2
        )
        most_auditor = Auditor(min_partition_size=2)
        job = crowdsourcing_marketplace_fixture.jobs[0]
        least = least_auditor.audit_job(crowdsourcing_marketplace_fixture, job)
        most = most_auditor.audit_job(crowdsourcing_marketplace_fixture, job)
        assert least.unfairness <= most.unfairness + 1e-9

    def test_attribute_restriction(self, crowdsourcing_marketplace_fixture):
        auditor = Auditor(attributes=["Gender"], min_partition_size=2)
        job = crowdsourcing_marketplace_fixture.jobs[0]
        audit = auditor.audit_job(crowdsourcing_marketplace_fixture, job)
        for label in audit.partitions:
            assert label == "ALL" or label.startswith("Gender=")

    def test_audit_with_anonymization_table(self, crowdsourcing_marketplace_fixture):
        auditor = Auditor(min_partition_size=2)
        table = auditor.audit_with_anonymization(
            crowdsourcing_marketplace_fixture,
            crowdsourcing_marketplace_fixture.job_titles[0],
            k_values=(1, 5),
        )
        assert len(table) == 2
        records = table.to_records()
        assert records[0]["k"] == 1
        assert records[1]["k"] == 5
        # Anonymisation should not increase measured unfairness.
        assert records[1]["unfairness"] <= records[0]["unfairness"] + 1e-9
