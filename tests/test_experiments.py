"""Tests for the experiment harness and (small instances of) the suite."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentRegistry, registry, run_experiment
from repro.experiments.workloads import (
    biased_population,
    crowdsourcing_marketplace,
    scaling_populations,
    synthetic_population,
    table1_workload,
)
from repro.roles.report import ReportTable


class TestWorkloads:
    def test_table1_workload(self):
        dataset, function = table1_workload()
        assert len(dataset) == 10
        assert function.name == "table1-f"

    def test_synthetic_population_deterministic(self):
        assert synthetic_population(50, seed=3).to_records() == \
            synthetic_population(50, seed=3).to_records()

    def test_biased_population_returns_spec(self):
        dataset, spec = biased_population(size=100, seed=3)
        assert len(dataset) == 100
        assert spec.condition_attributes
        penalised = dataset.filter(spec.matches)
        assert len(penalised) > 0

    def test_crowdsourcing_marketplace_has_jobs(self):
        marketplace = crowdsourcing_marketplace(size=60, seed=3)
        assert len(marketplace) >= 3
        assert "English transcription" in marketplace

    def test_scaling_populations(self):
        populations = scaling_populations(sizes=(10, 20), seed=3)
        assert set(populations) == {10, 20}
        assert len(populations[20]) == 20
        with pytest.raises(ExperimentError):
            scaling_populations(sizes=())


class TestRegistry:
    def test_all_twelve_experiments_registered(self):
        import repro.experiments.suite  # noqa: F401

        assert registry.experiment_ids == [f"E{i}" for i in range(1, 13)]
        for experiment_id in registry.experiment_ids:
            assert registry.description(experiment_id)

    def test_duplicate_registration_rejected(self):
        local = ExperimentRegistry()

        @local.register("X1", "first")
        def _first():
            return []

        with pytest.raises(ExperimentError):
            @local.register("X1", "again")
            def _second():
                return []

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            registry.run("E999")

    def test_run_wraps_single_table(self):
        local = ExperimentRegistry()

        @local.register("X1", "single table")
        def _runner():
            return ReportTable(title="t", headers=["a"])

        outcome = local.run("X1")
        assert len(outcome.tables) == 1
        assert outcome.elapsed_seconds >= 0.0
        assert "X1" in outcome.render()


class TestSuiteSmallRuns:
    """Run each experiment on a reduced workload to keep tests fast."""

    def test_e1_reproduces_all_published_scores(self):
        outcome = run_experiment("E1")
        table = outcome.tables[0]
        assert len(table) == 10
        assert all(row[-1] == "yes" for row in table.rows)

    def test_e2_figure2_partitioning(self):
        outcome = run_experiment("E2")
        figure2 = outcome.tables[0]
        labels = figure2.column("partition")
        assert "Gender=Female" in labels
        assert "Gender=Male, Language=English" in labels
        assert len(labels) == 4
        sizes = figure2.column("size")
        assert sum(sizes) == 10
        comparison = outcome.tables[1]
        values = dict(zip(comparison.column("partitioning"), comparison.column("unfairness")))
        greedy = values["QUANTIFY (greedy search)"]
        assert greedy >= values["Figure 2 (paper's illustration)"] - 1e-9

    def test_e4_greedy_vs_exhaustive_small(self):
        outcome = run_experiment("E4", sizes=(40,), attribute_counts=(2,))
        table = outcome.tables[0]
        assert len(table) == 1
        record = table.to_records()[0]
        assert record["ratio"] <= 1.0 + 1e-9
        assert record["greedy unfairness"] <= record["exact unfairness"] + 1e-9

    def test_e5_formulations_small(self):
        outcome = run_experiment("E5", size=80)
        table = outcome.tables[0]
        objectives = set(table.column("objective"))
        assert objectives == {"most_unfair", "least_unfair"}

    def test_e6_anonymization_small(self):
        outcome = run_experiment("E6", size=80, k_values=(1, 5))
        table = outcome.tables[0]
        records = {r["k"]: r for r in table.to_records()}
        assert records[5]["unfairness"] <= records[1]["unfairness"] + 1e-9

    def test_e7_transparency_small(self):
        outcome = run_experiment("E7", size=80)
        for record in outcome.tables[0].to_records():
            assert record["true-score unfairness"] >= 0.0
            assert record["rank-linear unfairness"] >= 0.0

    def test_e11_scalability_small(self):
        outcome = run_experiment("E11", sizes=(50, 100))
        table = outcome.tables[0]
        assert len(table) == 6  # 2 sizes x 3 attribute counts
        assert all(r["runtime (s)"] < 30 for r in table.to_records())

    def test_e12_subgroup_vs_predefined_small(self):
        outcome = run_experiment("E12", size=150, penalties=(-0.3,))
        record = outcome.tables[0].to_records()[0]
        assert record["QUANTIFY unfairness"] >= record["single-attr unfairness"] - 1e-9
