"""Tests for repro.core.unfairness (Definition 2 of the paper)."""

import numpy as np
import pytest

from repro.core.formulations import Aggregation, Formulation
from repro.core.partition import Partitioning, root_partition
from repro.core.unfairness import (
    cross_distances,
    pairwise_distances,
    partition_vs_siblings,
    unfairness,
    unfairness_breakdown,
)
from repro.metrics.distances import get_distance
from repro.metrics.histogram import Binning, build_histogram
from repro.scoring.linear import LinearScoringFunction


@pytest.fixture
def gender_partitioning(table1_dataset):
    return Partitioning.by_attributes(table1_dataset, ["Gender"])


class TestPairwiseDistances:
    def test_number_of_pairs(self, table1_dataset, table1_function):
        partitioning = Partitioning.by_attributes(table1_dataset, ["Country"])
        histograms = partitioning.histograms(table1_function, binning=Binning.unit(5))
        values = pairwise_distances(histograms, Formulation())
        count = len(histograms)
        assert len(values) == count * (count - 1) // 2

    def test_single_histogram_has_no_pairs(self, table1_dataset, table1_function):
        histograms = Partitioning.single(table1_dataset).histograms(table1_function)
        assert pairwise_distances(histograms, Formulation()) == []

    def test_vectorised_fast_path_matches_scalar_path(self):
        binning = Binning.unit(5)
        rng = np.random.default_rng(3)
        histograms = [
            build_histogram(rng.random(20), binning=binning) for _ in range(6)
        ]
        formulation = Formulation()
        fast = pairwise_distances(histograms, formulation)
        slow = [
            formulation.distance(histograms[i], histograms[j])
            for i in range(6)
            for j in range(i + 1, 6)
        ]
        assert fast == pytest.approx(slow)

    def test_fast_path_normalized_emd(self):
        binning = Binning.unit(5)
        histograms = [
            build_histogram([0.0, 0.1], binning=binning),
            build_histogram([0.5, 0.55], binning=binning),
            build_histogram([0.9, 1.0], binning=binning),
        ]
        formulation = Formulation(distance=get_distance("normalized_emd"))
        values = pairwise_distances(histograms, formulation)
        assert all(0.0 <= v <= 1.0 for v in values)
        assert max(values) == pytest.approx(
            formulation.distance(histograms[0], histograms[2])
        )

    def test_non_emd_distance_uses_fallback(self):
        binning = Binning.unit(5)
        histograms = [build_histogram([0.1 * i], binning=binning) for i in range(4)]
        formulation = Formulation(distance=get_distance("total_variation"))
        values = pairwise_distances(histograms, formulation)
        assert len(values) == 6


class TestCrossDistances:
    def test_cross_matches_individual_calls(self):
        binning = Binning.unit(5)
        rng = np.random.default_rng(5)
        first = [build_histogram(rng.random(15), binning=binning) for _ in range(3)]
        second = [build_histogram(rng.random(15), binning=binning) for _ in range(4)]
        formulation = Formulation()
        fast = cross_distances(first, second, formulation)
        slow = [formulation.distance(a, b) for a in first for b in second]
        assert fast == pytest.approx(slow)

    def test_empty_inputs(self):
        assert cross_distances([], [], Formulation()) == []

    def test_partition_vs_siblings_no_siblings_is_zero(self, table1_dataset, table1_function):
        histogram = root_partition(table1_dataset).histogram(table1_function)
        assert partition_vs_siblings(histogram, [], Formulation()) == 0.0

    def test_partition_vs_siblings_average(self):
        binning = Binning.unit(5)
        current = build_histogram([0.0], binning=binning)
        siblings = [
            build_histogram([1.0], binning=binning),
            build_histogram([0.0], binning=binning),
        ]
        value = partition_vs_siblings(current, siblings, Formulation())
        assert value == pytest.approx(2.0)  # (4 + 0) / 2


class TestUnfairness:
    def test_single_partition_has_zero_unfairness(self, table1_dataset, table1_function):
        assert unfairness(Partitioning.single(table1_dataset), table1_function) == 0.0

    def test_gender_partitioning_value(self, gender_partitioning, table1_function):
        value = unfairness(gender_partitioning, table1_function)
        assert value > 0.0
        # Two partitions, so average == max == the single pairwise EMD.
        assert value == pytest.approx(
            unfairness(gender_partitioning, table1_function,
                       Formulation(aggregation=Aggregation.MAXIMUM))
        )

    def test_unfairness_is_nonnegative(self, table1_dataset, table1_function):
        for attributes in (["Gender"], ["Country"], ["Gender", "Language"]):
            partitioning = Partitioning.by_attributes(table1_dataset, attributes)
            assert unfairness(partitioning, table1_function) >= 0.0

    def test_identical_groups_have_zero_unfairness(self):
        from repro.data.dataset import Dataset
        from repro.data.schema import Schema, observed, protected

        schema = Schema((protected("G", domain=("a", "b")), observed("S")))
        rows = [
            {"G": "a", "S": 0.5}, {"G": "a", "S": 0.9},
            {"G": "b", "S": 0.5}, {"G": "b", "S": 0.9},
        ]
        dataset = Dataset.from_records(schema, rows)
        partitioning = Partitioning.by_attributes(dataset, ["G"])
        function = LinearScoringFunction({"S": 1.0})
        assert unfairness(partitioning, function) == pytest.approx(0.0)

    def test_separated_groups_have_high_unfairness(self):
        from repro.data.dataset import Dataset
        from repro.data.schema import Schema, observed, protected

        schema = Schema((protected("G", domain=("low", "high")), observed("S")))
        rows = [{"G": "low", "S": 0.02}] * 3 + [{"G": "high", "S": 0.98}] * 3
        dataset = Dataset.from_records(schema, rows)
        partitioning = Partitioning.by_attributes(dataset, ["G"])
        function = LinearScoringFunction({"S": 1.0})
        # All mass moves across 4 bins.
        assert unfairness(partitioning, function) == pytest.approx(4.0)


class TestBreakdown:
    def test_breakdown_fields(self, gender_partitioning, table1_function):
        breakdown = unfairness_breakdown(gender_partitioning, table1_function)
        assert breakdown.value == pytest.approx(unfairness(gender_partitioning, table1_function))
        assert set(breakdown.partition_labels) == {"Gender=Female", "Gender=Male"}
        assert breakdown.most_separated_pair is not None
        assert breakdown.most_favored in breakdown.partition_labels
        assert breakdown.least_favored in breakdown.partition_labels
        assert breakdown.most_favored != breakdown.least_favored

    def test_breakdown_mean_scores_match_partitions(self, gender_partitioning, table1_function):
        breakdown = unfairness_breakdown(gender_partitioning, table1_function)
        for partition in gender_partitioning:
            assert breakdown.mean_scores[partition.label] == pytest.approx(
                float(partition.scores(table1_function).mean())
            )

    def test_breakdown_single_partition(self, table1_dataset, table1_function):
        breakdown = unfairness_breakdown(Partitioning.single(table1_dataset), table1_function)
        assert breakdown.value == 0.0
        assert breakdown.most_separated_pair is None
        assert breakdown.most_favored == "ALL"

    def test_as_dict_round_trip(self, gender_partitioning, table1_function):
        breakdown = unfairness_breakdown(gender_partitioning, table1_function)
        data = breakdown.as_dict()
        assert data["unfairness"] == breakdown.value
        assert data["most_favored"] == breakdown.most_favored
        assert len(data["partitions"]) == 2
