"""Tests for repro.session.config."""

import pytest

from repro.core.formulations import Formulation, Objective
from repro.data.filters import Equals, TrueFilter
from repro.errors import SessionError
from repro.session.config import SessionConfig


class TestValidation:
    def test_minimal_config(self):
        config = SessionConfig("data", "func")
        assert config.anonymity_k == 1
        assert not config.use_ranks_only
        assert isinstance(config.row_filter, TrueFilter)

    def test_requires_dataset_and_function_names(self):
        with pytest.raises(SessionError):
            SessionConfig("", "func")
        with pytest.raises(SessionError):
            SessionConfig("data", "")

    def test_invalid_k_and_min_size(self):
        with pytest.raises(SessionError):
            SessionConfig("data", "func", anonymity_k=0)
        with pytest.raises(SessionError):
            SessionConfig("data", "func", min_partition_size=0)

    def test_attributes_normalised_to_tuple(self):
        config = SessionConfig("data", "func", attributes=["Gender", "City"])
        assert config.attributes == ("Gender", "City")


class TestVariants:
    def test_with_methods_return_new_instances(self):
        base = SessionConfig("data", "func")
        assert base.with_function("other").function_name == "other"
        assert base.with_anonymity(5).anonymity_k == 5
        assert base.with_ranks_only().use_ranks_only
        assert base.with_attributes(("Gender",)).attributes == ("Gender",)
        least = base.with_formulation(Formulation(objective=Objective.LEAST_UNFAIR))
        assert least.formulation.objective is Objective.LEAST_UNFAIR
        filtered = base.with_filter(Equals("Gender", "F"))
        assert not isinstance(filtered.row_filter, TrueFilter)
        # Base is untouched throughout.
        assert base.function_name == "func"
        assert base.anonymity_k == 1
        assert not base.use_ranks_only

    def test_describe_reflects_transparency_settings(self):
        raw = SessionConfig("data", "func").describe()
        assert "raw attributes" in raw
        assert "scores visible" in raw
        anonymised = SessionConfig("data", "func", anonymity_k=5, use_ranks_only=True).describe()
        assert "5-anonymised" in anonymised
        assert "ranks only" in anonymised

    def test_describe_mentions_filter_and_attributes(self):
        config = SessionConfig(
            "data", "func", attributes=("Gender",), row_filter=Equals("City", "NY")
        )
        text = config.describe()
        assert "Gender" in text
        assert "City" in text
