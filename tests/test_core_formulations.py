"""Tests for repro.core.formulations."""

import pytest

from repro.core.formulations import (
    LEAST_UNFAIR_AVG_EMD,
    MOST_UNFAIR_AVG_EMD,
    Aggregation,
    Formulation,
    Objective,
)
from repro.errors import FormulationError
from repro.metrics.distances import MeanGapDistance
from repro.metrics.histogram import Binning


class TestAggregation:
    def test_average(self):
        assert Aggregation.AVERAGE.apply([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_maximum_minimum(self):
        assert Aggregation.MAXIMUM.apply([1.0, 5.0, 3.0]) == pytest.approx(5.0)
        assert Aggregation.MINIMUM.apply([1.0, 5.0, 3.0]) == pytest.approx(1.0)

    def test_variance(self):
        assert Aggregation.VARIANCE.apply([2.0, 2.0, 2.0]) == pytest.approx(0.0)
        assert Aggregation.VARIANCE.apply([0.0, 2.0]) == pytest.approx(1.0)

    def test_empty_sequence_is_zero(self):
        for aggregation in Aggregation:
            assert aggregation.apply([]) == 0.0


class TestObjective:
    def test_is_maximizing(self):
        assert Objective.MOST_UNFAIR.is_maximizing
        assert not Objective.LEAST_UNFAIR.is_maximizing


class TestFormulation:
    def test_defaults_match_paper(self):
        assert MOST_UNFAIR_AVG_EMD.objective is Objective.MOST_UNFAIR
        assert MOST_UNFAIR_AVG_EMD.aggregation is Aggregation.AVERAGE
        assert MOST_UNFAIR_AVG_EMD.distance.name == "emd"
        assert MOST_UNFAIR_AVG_EMD.bins == 5

    def test_least_unfair_variant(self):
        assert LEAST_UNFAIR_AVG_EMD.objective is Objective.LEAST_UNFAIR

    def test_name_and_describe(self):
        formulation = Formulation()
        assert formulation.name == "most_unfair/average/emd"
        assert "maximise" in formulation.describe()
        assert "minimise" in LEAST_UNFAIR_AVG_EMD.describe()

    def test_effective_binning_default_and_custom(self):
        assert Formulation(bins=7).effective_binning == Binning.unit(7)
        custom = Binning(low=0.0, high=10.0, bins=4)
        assert Formulation(binning=custom).effective_binning == custom

    def test_invalid_bins(self):
        with pytest.raises(FormulationError):
            Formulation(bins=0)

    def test_is_better_for_maximizing(self):
        formulation = Formulation(objective=Objective.MOST_UNFAIR)
        assert formulation.is_better(2.0, 1.0)
        assert not formulation.is_better(1.0, 2.0)
        assert not formulation.is_better(1.0, 1.0)  # strict

    def test_is_better_for_minimizing(self):
        formulation = Formulation(objective=Objective.LEAST_UNFAIR)
        assert formulation.is_better(1.0, 2.0)
        assert not formulation.is_better(2.0, 1.0)

    def test_is_at_least_as_good_allows_ties(self):
        formulation = Formulation()
        assert formulation.is_at_least_as_good(1.0, 1.0)
        assert formulation.is_at_least_as_good(1.0 + 1e-15, 1.0)

    def test_best_and_argbest(self):
        maximizing = Formulation(objective=Objective.MOST_UNFAIR)
        minimizing = Formulation(objective=Objective.LEAST_UNFAIR)
        values = [0.5, 2.0, 1.0]
        assert maximizing.best(values) == 2.0
        assert maximizing.argbest(values) == 1
        assert minimizing.best(values) == 0.5
        assert minimizing.argbest(values) == 0
        with pytest.raises(FormulationError):
            maximizing.best([])
        with pytest.raises(FormulationError):
            maximizing.argbest([])

    def test_aggregate_delegates_to_aggregation(self):
        formulation = Formulation(aggregation=Aggregation.MAXIMUM)
        assert formulation.aggregate([1.0, 3.0]) == 3.0

    def test_with_methods_return_new_instances(self):
        base = Formulation()
        flipped = base.with_objective(Objective.LEAST_UNFAIR)
        assert flipped.objective is Objective.LEAST_UNFAIR
        assert base.objective is Objective.MOST_UNFAIR
        assert base.with_aggregation(Aggregation.VARIANCE).aggregation is Aggregation.VARIANCE
        assert base.with_distance(MeanGapDistance).distance.name == "mean_gap"

    def test_from_names(self):
        formulation = Formulation.from_names(
            objective="least_unfair", aggregation="maximum", distance="total_variation", bins=8
        )
        assert formulation.objective is Objective.LEAST_UNFAIR
        assert formulation.aggregation is Aggregation.MAXIMUM
        assert formulation.distance.name == "total_variation"
        assert formulation.bins == 8

    def test_from_names_rejects_unknown_values(self):
        with pytest.raises(FormulationError):
            Formulation.from_names(objective="sideways")
        with pytest.raises(FormulationError):
            Formulation.from_names(aggregation="median")
        with pytest.raises(FormulationError):
            Formulation.from_names(distance="no-such")
