"""Tests for repro.data.schema."""

import pytest

from repro.data.schema import (
    Attribute,
    AttributeKind,
    AttributeType,
    Schema,
    observed,
    protected,
)
from repro.errors import SchemaError, UnknownAttributeError


class TestAttribute:
    def test_protected_constructor_sets_kind(self):
        attr = protected("Gender", domain=("Female", "Male"))
        assert attr.kind is AttributeKind.PROTECTED
        assert attr.is_protected
        assert not attr.is_observed

    def test_observed_constructor_is_numeric_by_default(self):
        attr = observed("Rating")
        assert attr.kind is AttributeKind.OBSERVED
        assert attr.atype is AttributeType.NUMERIC
        assert attr.is_numeric

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute(name="", kind=AttributeKind.PROTECTED)

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(SchemaError):
            protected("Gender", domain=("Male", "Male"))

    def test_numeric_domain_must_be_low_high(self):
        with pytest.raises(SchemaError):
            observed("Rating", domain=(0.0, 0.5, 1.0))

    def test_numeric_domain_must_be_ordered(self):
        with pytest.raises(SchemaError):
            observed("Rating", domain=(1.0, 0.0))

    def test_validate_value_categorical_domain(self):
        attr = protected("Gender", domain=("Female", "Male"))
        assert attr.validate_value("Female")
        assert not attr.validate_value("Unknown")
        assert not attr.validate_value(None)

    def test_validate_value_numeric_range(self):
        attr = observed("Rating", domain=(0.0, 1.0))
        assert attr.validate_value(0.5)
        assert attr.validate_value(0)
        assert not attr.validate_value(1.5)
        assert not attr.validate_value("not-a-number")

    def test_validate_value_without_domain_accepts_anything_sensible(self):
        attr = protected("City")
        assert attr.validate_value("Grenoble")
        assert not attr.validate_value(None)

    def test_with_domain_returns_new_attribute(self):
        attr = protected("Country")
        updated = attr.with_domain(("France", "USA"))
        assert updated.domain == ("France", "USA")
        assert attr.domain is None
        assert updated.name == attr.name


class TestSchema:
    def _schema(self):
        return Schema((
            protected("Gender", domain=("Female", "Male")),
            protected("Country", domain=("America", "India")),
            observed("Rating", domain=(0.0, 1.0)),
            observed("Skill"),
        ))

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema((protected("Gender"), observed("Gender")))

    def test_names_and_partitions_of_kinds(self):
        schema = self._schema()
        assert schema.names == ("Gender", "Country", "Rating", "Skill")
        assert schema.protected_names == ("Gender", "Country")
        assert schema.observed_names == ("Rating", "Skill")
        assert len(schema.protected_attributes) == 2
        assert len(schema.observed_attributes) == 2

    def test_contains_and_len_and_iter(self):
        schema = self._schema()
        assert "Gender" in schema
        assert "Unknown" not in schema
        assert len(schema) == 4
        assert [a.name for a in schema] == list(schema.names)

    def test_attribute_lookup_and_error(self):
        schema = self._schema()
        assert schema.attribute("Rating").is_observed
        with pytest.raises(UnknownAttributeError) as excinfo:
            schema.attribute("Missing")
        assert "Missing" in str(excinfo.value)

    def test_require_protected_and_observed(self):
        schema = self._schema()
        assert schema.require_protected("Gender").name == "Gender"
        assert schema.require_observed("Rating").name == "Rating"
        with pytest.raises(SchemaError):
            schema.require_protected("Rating")
        with pytest.raises(SchemaError):
            schema.require_observed("Gender")

    def test_from_spec(self):
        schema = Schema.from_spec(
            {"Gender": ("F", "M"), "City": None}, ["Rating", "Skill"]
        )
        assert schema.protected_names == ("Gender", "City")
        assert schema.observed_names == ("Rating", "Skill")
        assert schema.attribute("Gender").domain == ("F", "M")
        assert schema.attribute("City").domain is None

    def test_with_and_without_attribute(self):
        schema = self._schema()
        extended = schema.with_attribute(protected("Language"))
        assert "Language" in extended
        assert "Language" not in schema
        reduced = extended.without_attribute("Language")
        assert reduced.names == schema.names
        with pytest.raises(UnknownAttributeError):
            schema.without_attribute("Nope")

    def test_replace_attribute(self):
        schema = self._schema()
        replaced = schema.replace_attribute(protected("Gender", domain=("X", "Y")))
        assert replaced.attribute("Gender").domain == ("X", "Y")
        with pytest.raises(UnknownAttributeError):
            schema.replace_attribute(protected("Nope"))

    def test_project(self):
        schema = self._schema()
        projected = schema.project(["Gender", "Rating"])
        assert projected.names == ("Gender", "Rating")
        with pytest.raises(UnknownAttributeError):
            schema.project(["Gender", "Nope"])
