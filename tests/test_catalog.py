"""The unified resource registry: typed entries, replace/freeze, addressing."""

from __future__ import annotations

import json

import pytest

from repro.catalog import Catalog, ResourceKind
from repro.core.formulations import LEAST_UNFAIR_AVG_EMD, MOST_UNFAIR_AVG_EMD
from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.errors import CatalogError
from repro.scoring.linear import LinearScoringFunction
from repro.service.fingerprint import fingerprint_dataset, fingerprint_function


@pytest.fixture()
def catalog(table1_dataset, table1_function, crowdsourcing_marketplace_fixture):
    catalog = Catalog()
    catalog.register(table1_dataset, name="table1")
    catalog.register(table1_function)
    catalog.register(crowdsourcing_marketplace_fixture)
    catalog.register(MOST_UNFAIR_AVG_EMD)
    return catalog


class TestRegistration:
    def test_kind_is_inferred_from_the_object(self, catalog):
        assert catalog.get(ResourceKind.DATASET, "table1").kind is ResourceKind.DATASET
        assert catalog.get(ResourceKind.FUNCTION, "table1-f").kind is ResourceKind.FUNCTION
        assert (
            catalog.get(ResourceKind.MARKETPLACE, "crowdsourcing-sim").kind
            is ResourceKind.MARKETPLACE
        )
        assert (
            catalog.get(ResourceKind.FORMULATION, MOST_UNFAIR_AVG_EMD.name).kind
            is ResourceKind.FORMULATION
        )

    def test_unknown_type_needs_explicit_kind(self):
        with pytest.raises(CatalogError, match="cannot infer"):
            Catalog().register(object(), name="thing")

    def test_name_defaults_to_the_objects_name(self, table1_function):
        resource = Catalog().register(table1_function)
        assert resource.name == "table1-f"

    def test_empty_name_falls_back_to_the_objects_name(self, table1_dataset):
        resource = Catalog().register(table1_dataset, name="")
        assert resource.name == table1_dataset.name

    def test_nameless_resource_rejected(self):
        from repro.data.dataset import Dataset

        source = load_example_table1()
        nameless = Dataset(source.schema, list(source), name="", validate=False)
        with pytest.raises(CatalogError, match="non-empty name"):
            Catalog().register(nameless, name=None)

    def test_fingerprints_match_the_service_cache_keys(self, catalog, table1_dataset,
                                                       table1_function):
        assert (
            catalog.get(ResourceKind.DATASET, "table1").fingerprint
            == fingerprint_dataset(table1_dataset)
        )
        assert (
            catalog.get(ResourceKind.FUNCTION, "table1-f").fingerprint
            == fingerprint_function(table1_function)
        )

    def test_metadata_carries_rows_and_arity(self, catalog):
        dataset = catalog.get(ResourceKind.DATASET, "table1")
        assert dataset.metadata["rows"] == 10
        function = catalog.get(ResourceKind.FUNCTION, "table1-f")
        assert function.metadata["arity"] == 2
        market = catalog.get(ResourceKind.MARKETPLACE, "crowdsourcing-sim")
        assert market.metadata["jobs"] >= 1 and market.metadata["workers"] == 150


class TestReplaceSemantics:
    def test_identical_content_is_idempotent(self, catalog, table1_dataset):
        # A rebuilt but content-identical object under the same name: no-op.
        again = catalog.register(load_example_table1(), name="table1")
        assert again.value is table1_dataset

    def test_different_content_requires_replace(self, catalog):
        other = LinearScoringFunction({"Rating": 1.0}, name="table1-f")
        with pytest.raises(CatalogError, match="replace=True"):
            catalog.register(other)
        resource = catalog.register(other, replace=True)
        assert resource.value is other

    def test_frozen_entries_cannot_be_replaced(self, catalog):
        catalog.freeze(ResourceKind.FUNCTION, "table1-f")
        other = LinearScoringFunction({"Rating": 1.0}, name="table1-f")
        with pytest.raises(CatalogError, match="frozen"):
            catalog.register(other, replace=True)

    def test_frozen_plus_identical_content_is_still_idempotent(self, catalog):
        catalog.freeze(ResourceKind.FUNCTION, "table1-f")
        again = catalog.register(
            LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f")
        )
        assert again.frozen is True

    def test_register_can_freeze_directly(self):
        catalog = Catalog()
        resource = catalog.register(
            LinearScoringFunction({"Rating": 1.0}, name="pinned"), freeze=True
        )
        assert resource.frozen is True
        with pytest.raises(CatalogError, match="frozen"):
            catalog.register(
                LinearScoringFunction({"Language Test": 1.0}, name="pinned"),
                replace=True,
            )

    def test_frozen_entries_cannot_be_removed(self, catalog):
        catalog.freeze(ResourceKind.DATASET, "table1")
        with pytest.raises(CatalogError, match="frozen"):
            catalog.remove(ResourceKind.DATASET, "table1")

    def test_remove_drops_the_entry(self, catalog):
        catalog.remove(ResourceKind.DATASET, "table1")
        with pytest.raises(CatalogError, match="unknown dataset"):
            catalog.get(ResourceKind.DATASET, "table1")


class TestAddressing:
    def test_lookup_by_name(self, catalog, table1_dataset):
        assert catalog.resolve(ResourceKind.DATASET, "table1") is table1_dataset

    def test_lookup_by_full_fingerprint(self, catalog, table1_dataset):
        fingerprint = fingerprint_dataset(table1_dataset)
        assert catalog.resolve(ResourceKind.DATASET, fingerprint) is table1_dataset

    def test_lookup_by_fingerprint_prefix(self, catalog, table1_dataset):
        prefix = fingerprint_dataset(table1_dataset)[:12]
        assert catalog.resolve(ResourceKind.DATASET, prefix) is table1_dataset

    def test_short_prefixes_do_not_resolve(self, catalog, table1_dataset):
        # Fewer than 8 hex chars could shadow names; treated as an unknown name.
        with pytest.raises(CatalogError, match="unknown dataset"):
            catalog.get(ResourceKind.DATASET, fingerprint_dataset(table1_dataset)[:6])

    def test_ambiguous_prefix_raises(self):
        catalog = Catalog()
        function = LinearScoringFunction({"Rating": 1.0}, name="a")
        catalog.register(function)
        # Same content under a second name: the shared prefix is ambiguous.
        catalog.register(LinearScoringFunction({"Rating": 1.0}, name="b"))
        with pytest.raises(CatalogError, match="ambiguous"):
            catalog.get(ResourceKind.FUNCTION, fingerprint_function(function)[:12])

    def test_unknown_reference_lists_registered_names(self, catalog):
        with pytest.raises(CatalogError, match="registered: table1"):
            catalog.get(ResourceKind.DATASET, "nope")

    def test_contains_protocol(self, catalog):
        assert (ResourceKind.DATASET, "table1") in catalog
        assert (ResourceKind.DATASET, "nope") not in catalog
        assert "table1" not in catalog  # malformed keys are just absent


class TestListings:
    def test_names_and_len(self, catalog):
        # Registering a marketplace through the bare Catalog does not cascade
        # into workers/functions — that composition lives in the service layer.
        assert catalog.names(ResourceKind.DATASET) == ("table1",)
        assert catalog.names(ResourceKind.MARKETPLACE) == ("crowdsourcing-sim",)
        assert len(catalog) == len(catalog.resources()) == 4

    def test_describe_is_json_able(self, catalog):
        listing = catalog.describe()
        assert json.loads(json.dumps(listing)) == listing
        kinds = {entry["kind"] for entry in listing["resources"]}
        assert kinds == {"dataset", "function", "marketplace", "formulation"}
        assert listing["counts"]["dataset"] == 1

    def test_describe_entries_carry_fingerprints(self, catalog, table1_dataset):
        listing = catalog.describe()
        by_name = {
            (entry["kind"], entry["name"]): entry for entry in listing["resources"]
        }
        assert (
            by_name[("dataset", "table1")]["fingerprint"]
            == fingerprint_dataset(table1_dataset)
        )

    def test_iteration_yields_resources(self, catalog):
        names = {resource.name for resource in catalog}
        assert {"table1", "table1-f", "crowdsourcing-sim"} <= names

    def test_formulations_are_first_class(self, catalog):
        catalog.register(LEAST_UNFAIR_AVG_EMD)
        assert catalog.names(ResourceKind.FORMULATION) == (
            MOST_UNFAIR_AVG_EMD.name,
            LEAST_UNFAIR_AVG_EMD.name,
        )
        assert (
            catalog.resolve(ResourceKind.FORMULATION, LEAST_UNFAIR_AVG_EMD.name)
            is LEAST_UNFAIR_AVG_EMD
        )
