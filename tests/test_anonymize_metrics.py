"""Tests for repro.anonymize.metrics (information loss)."""

import pytest

from repro.anonymize.kanonymity import (
    GlobalRecodingAnonymizer,
    MondrianAnonymizer,
    default_hierarchies,
)
from repro.anonymize.metrics import (
    average_class_size_ratio,
    discernibility,
    information_loss,
)
from repro.errors import AnonymizationError
from repro.marketplace.generator import CrowdsourcingGenerator

QI = ["Gender", "Country", "Language", "Ethnicity"]


@pytest.fixture(scope="module")
def population():
    return CrowdsourcingGenerator(seed=31).generate(150, name="loss-pop")


class TestDiscernibility:
    def test_fully_distinct_records_have_minimal_discernibility(self, population):
        # Treat the uid-like combination of all QIs: discernibility >= n always.
        value = discernibility(population, QI)
        assert value >= len(population)

    def test_single_class_has_quadratic_discernibility(self, population):
        suppressed = population
        for attribute in QI:
            suppressed = suppressed.map_column(attribute, lambda _: "*")
        assert discernibility(suppressed, QI) == len(population) ** 2

    def test_generalisation_increases_discernibility(self, population):
        raw = discernibility(population, QI)
        result = GlobalRecodingAnonymizer().anonymize(population, k=10, quasi_identifiers=QI)
        assert discernibility(result.dataset, QI) >= raw


class TestAverageClassSizeRatio:
    def test_value_at_least_one_when_k_anonymous(self, population):
        result = GlobalRecodingAnonymizer().anonymize(population, k=5, quasi_identifiers=QI)
        assert average_class_size_ratio(result.dataset, QI, 5) >= 1.0

    def test_empty_dataset(self, population):
        empty = population.filter(lambda i: False)
        assert average_class_size_ratio(empty, QI, 5) == 0.0

    def test_invalid_k(self, population):
        with pytest.raises(AnonymizationError):
            average_class_size_ratio(population, QI, 0)


class TestInformationLoss:
    def test_raw_data_has_zero_intensity(self, population):
        result = GlobalRecodingAnonymizer().anonymize(population, k=1, quasi_identifiers=QI)
        loss = information_loss(result)
        assert loss.generalization_intensity == 0.0
        assert loss.suppression_rate == 0.0

    def test_intensity_grows_with_k(self, population):
        anonymizer = GlobalRecodingAnonymizer()
        hierarchies = default_hierarchies(population, QI)
        low = information_loss(
            anonymizer.anonymize(population, k=2, quasi_identifiers=QI), hierarchies
        )
        high = information_loss(
            anonymizer.anonymize(population, k=25, quasi_identifiers=QI), hierarchies
        )
        assert high.generalization_intensity >= low.generalization_intensity

    def test_intensity_bounded_by_one(self, population):
        hierarchies = default_hierarchies(population, QI)
        result = GlobalRecodingAnonymizer().anonymize(population, k=30, quasi_identifiers=QI)
        loss = information_loss(result, hierarchies)
        assert 0.0 <= loss.generalization_intensity <= 1.0

    def test_mondrian_loss_uses_cell_counting(self, population):
        result = MondrianAnonymizer().anonymize(population, k=5, quasi_identifiers=QI)
        loss = information_loss(result)
        assert 0.0 <= loss.generalization_intensity <= 1.0
        assert loss.suppression_rate == 0.0

    def test_as_dict(self, population):
        result = GlobalRecodingAnonymizer().anonymize(population, k=5, quasi_identifiers=QI)
        data = information_loss(result).as_dict()
        assert set(data) == {
            "generalization_intensity",
            "discernibility",
            "average_class_size_ratio",
            "suppression_rate",
        }
