"""Tests for repro.session.render and repro.session.stats."""

import pytest

from repro.core.partition import Partitioning, root_partition, split_partition
from repro.core.quantify import quantify
from repro.core.tree import PartitionNode, PartitionTree
from repro.metrics.histogram import Binning, build_histogram
from repro.session.render import render_histogram, render_partitioning, render_tree
from repro.session.stats import node_stats, tree_stats


@pytest.fixture
def quantify_result(table1_dataset, table1_function):
    return quantify(
        table1_dataset, table1_function,
        attributes=["Gender", "Language", "Country", "Ethnicity"],
    )


class TestRenderHistogram:
    def test_one_line_per_bin_with_counts(self):
        histogram = build_histogram([0.1, 0.1, 0.9], binning=Binning.unit(5))
        text = render_histogram(histogram)
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines[0].endswith("2")
        assert lines[-1].endswith("1")
        assert "#" in lines[0]

    def test_empty_histogram_has_no_bars(self):
        histogram = build_histogram([], binning=Binning.unit(3))
        text = render_histogram(histogram)
        assert "#" not in text


class TestRenderTree:
    def test_contains_every_node_label(self, quantify_result, table1_function):
        text = render_tree(quantify_result.tree, table1_function)
        for node in quantify_result.tree.nodes():
            # The label's last constraint must appear somewhere in the output.
            assert node.label.split(", ")[-1] in text

    def test_shows_split_attribute_and_histograms(self, quantify_result, table1_function):
        text = render_tree(quantify_result.tree, table1_function)
        assert "split on" in text
        assert "[" in text and "|" in text  # histogram rendering

    def test_without_function_omits_scores(self, quantify_result):
        text = render_tree(quantify_result.tree, function=None)
        assert "mean=" not in text

    def test_figure2_tree_rendering(self, table1_dataset, table1_function):
        root = PartitionNode(partition=root_partition(table1_dataset))
        root.split_attribute = "Gender"
        for child in split_partition(root.partition, "Gender"):
            root.add_child(PartitionNode(partition=child))
        tree = PartitionTree(root)
        text = render_tree(tree, table1_function)
        assert "Gender=Female" in text
        assert "Gender=Male" in text
        assert "`--" in text or "|--" in text


class TestRenderPartitioning:
    def test_one_line_per_partition(self, table1_dataset, table1_function):
        partitioning = Partitioning.by_attributes(table1_dataset, ["Country"])
        text = render_partitioning(partitioning, table1_function)
        assert len(text.splitlines()) == len(partitioning)
        assert "Country=India" in text


class TestStats:
    def test_node_stats(self, table1_dataset, table1_function):
        partition = split_partition(root_partition(table1_dataset), "Gender")[0]
        stats = node_stats(partition, table1_function)
        assert stats["size"] == partition.size
        assert stats["constraints"] == {"Gender": "Female"}
        assert sum(stats["histogram_counts"]) == partition.size
        assert len(stats["histogram_edges"]) == len(stats["histogram_counts"]) + 1
        assert stats["score_min"] <= stats["score_mean"] <= stats["score_max"]

    def test_tree_stats(self, quantify_result, table1_function):
        stats = tree_stats(quantify_result.tree, table1_function)
        assert stats["unfairness"] == pytest.approx(quantify_result.unfairness)
        assert stats["partitions"] == len(quantify_result.partitioning)
        assert stats["most_favored"] in quantify_result.partition_labels
        assert stats["least_favored"] in quantify_result.partition_labels
