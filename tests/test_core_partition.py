"""Tests for repro.core.partition."""

import pytest

from repro.core.partition import Partition, Partitioning, root_partition, split_partition
from repro.errors import PartitioningError
from repro.metrics.histogram import Binning


class TestPartition:
    def test_root_partition_covers_everyone(self, table1_dataset):
        root = root_partition(table1_dataset)
        assert root.size == 10
        assert root.label == "ALL"
        assert root.constraints == ()

    def test_label_and_key(self, table1_dataset):
        partition = Partition(
            constraints=(("Gender", "Male"), ("Language", "English")),
            members=table1_dataset.filter(
                lambda i: i["Gender"] == "Male" and i["Language"] == "English"
            ),
        )
        assert partition.label == "Gender=Male, Language=English"
        # Key is sorted by attribute name, independent of constraint order.
        flipped = Partition(
            constraints=(("Language", "English"), ("Gender", "Male")),
            members=partition.members,
        )
        assert partition.key == flipped.key

    def test_duplicate_constraint_attribute_rejected(self, table1_dataset):
        with pytest.raises(PartitioningError):
            Partition(
                constraints=(("Gender", "Male"), ("Gender", "Female")),
                members=table1_dataset,
            )

    def test_constraint_value(self, table1_dataset):
        root = root_partition(table1_dataset)
        child = split_partition(root, "Gender")[0]
        assert child.constraint_value("Gender") in ("Female", "Male")
        with pytest.raises(PartitioningError):
            child.constraint_value("Language")

    def test_scores_histogram_and_statistics(self, table1_dataset, table1_function):
        root = root_partition(table1_dataset)
        scores = root.scores(table1_function)
        assert scores.shape == (10,)
        histogram = root.histogram(table1_function, binning=Binning.unit(5))
        assert histogram.total == 10
        stats = root.statistics(table1_function)
        assert stats["size"] == 10
        assert stats["min"] <= stats["mean"] <= stats["max"]


class TestSplitPartition:
    def test_split_by_gender(self, table1_dataset):
        children = split_partition(root_partition(table1_dataset), "Gender")
        assert [child.constraint_value("Gender") for child in children] == ["Female", "Male"]
        assert sum(child.size for child in children) == 10
        assert children[0].size == 4 and children[1].size == 6

    def test_split_preserves_parent_constraints(self, table1_dataset):
        root = root_partition(table1_dataset)
        children = split_partition(root, "Gender")
        male = [c for c in children if c.constraint_value("Gender") == "Male"][0]
        by_language = split_partition(male, "Language")
        for child in by_language:
            assert child.constraint_value("Gender") == "Male"
        labels = {child.label for child in by_language}
        assert "Gender=Male, Language=English" in labels

    def test_split_never_produces_empty_children(self, table1_dataset):
        children = split_partition(root_partition(table1_dataset), "Ethnicity")
        assert all(child.size > 0 for child in children)

    def test_split_on_observed_attribute_rejected(self, table1_dataset):
        with pytest.raises(Exception):
            split_partition(root_partition(table1_dataset), "Rating")

    def test_split_on_already_constrained_attribute_rejected(self, table1_dataset):
        child = split_partition(root_partition(table1_dataset), "Gender")[0]
        with pytest.raises(PartitioningError):
            split_partition(child, "Gender")


class TestPartitioning:
    def test_by_attributes_cross_product(self, table1_dataset):
        partitioning = Partitioning.by_attributes(table1_dataset, ["Gender", "Country"])
        assert sum(partitioning.sizes) == 10
        # Only observed combinations become partitions (no empty ones).
        assert all(size > 0 for size in partitioning.sizes)
        assert len(partitioning) <= 2 * 3

    def test_single_partitioning(self, table1_dataset):
        single = Partitioning.single(table1_dataset)
        assert len(single) == 1
        assert single[0].label == "ALL"

    def test_validation_rejects_overlap(self, table1_dataset):
        everyone = root_partition(table1_dataset)
        with pytest.raises(PartitioningError):
            Partitioning(table1_dataset, (everyone, everyone))

    def test_validation_rejects_missing_individuals(self, table1_dataset):
        females = Partition(
            constraints=(("Gender", "Female"),),
            members=table1_dataset.filter(lambda i: i["Gender"] == "Female"),
        )
        with pytest.raises(PartitioningError):
            Partitioning(table1_dataset, (females,))

    def test_validation_rejects_empty_partition(self, table1_dataset):
        empty = Partition(
            constraints=(("Gender", "X"),), members=table1_dataset.filter(lambda i: False)
        )
        with pytest.raises(PartitioningError):
            Partitioning(table1_dataset, (empty, root_partition(table1_dataset)))

    def test_find_and_partition_of(self, table1_dataset):
        partitioning = Partitioning.by_attributes(table1_dataset, ["Gender"])
        female = partitioning.find("Gender=Female")
        assert female.size == 4
        assert partitioning.partition_of("w1").label == "Gender=Female"
        with pytest.raises(PartitioningError):
            partitioning.find("Gender=Other")
        with pytest.raises(PartitioningError):
            partitioning.partition_of("ghost")

    def test_histograms_share_binning(self, table1_dataset, table1_function):
        partitioning = Partitioning.by_attributes(table1_dataset, ["Gender"])
        histograms = partitioning.histograms(table1_function, binning=Binning.unit(5))
        assert len(histograms) == 2
        assert histograms[0].binning == histograms[1].binning
        assert sum(h.total for h in histograms) == 10

    def test_group_sizes_and_labels(self, table1_dataset):
        partitioning = Partitioning.by_attributes(table1_dataset, ["Gender"])
        assert partitioning.group_sizes() == {"Gender=Female": 4, "Gender=Male": 6}
        assert set(partitioning.labels) == {"Gender=Female", "Gender=Male"}

    def test_key_is_order_independent(self, table1_dataset):
        partitioning = Partitioning.by_attributes(table1_dataset, ["Gender"])
        reversed_partitioning = Partitioning(
            table1_dataset, tuple(reversed(partitioning.partitions))
        )
        assert partitioning.key() == reversed_partitioning.key()

    def test_by_attributes_requires_protected(self, table1_dataset):
        with pytest.raises(Exception):
            Partitioning.by_attributes(table1_dataset, ["Rating"])

    def test_by_attributes_empty_list_gives_single(self, table1_dataset):
        assert len(Partitioning.by_attributes(table1_dataset, [])) == 1
