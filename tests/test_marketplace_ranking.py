"""Tests for repro.marketplace.ranking."""

import pytest

from repro.errors import MarketplaceError
from repro.marketplace.ranking import (
    exposure_by_group,
    group_ranking_stats,
    ranking_report,
    top_k_share,
)


@pytest.fixture
def ranking_and_dataset(table1_dataset, table1_function):
    return table1_function.rank(table1_dataset), table1_dataset


class TestExposure:
    def test_exposure_shares_sum_to_one(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        exposure = exposure_by_group(ranking, dataset, "Gender")
        assert sum(exposure.values()) == pytest.approx(1.0)
        assert set(exposure) == {"Female", "Male"}

    def test_better_ranked_group_gets_more_exposure_per_member(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        exposure = exposure_by_group(ranking, dataset, "Gender")
        counts = dataset.value_counts("Gender")
        per_member = {group: exposure[group] / counts[group] for group in exposure}
        stats = group_ranking_stats(ranking, dataset, "Gender")
        best_group = stats[0].group
        worst_group = stats[-1].group
        assert per_member[best_group] >= per_member[worst_group]


class TestTopKShare:
    def test_shares_sum_to_one(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        shares = top_k_share(ranking, dataset, "Country", k=5)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_all_groups_listed_even_if_absent_from_top(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        shares = top_k_share(ranking, dataset, "Ethnicity", k=2)
        assert set(shares) == {str(v) for v in dataset.distinct_values("Ethnicity")}

    def test_k_larger_than_ranking_is_clamped(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        shares = top_k_share(ranking, dataset, "Gender", k=100)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_invalid_k(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        with pytest.raises(MarketplaceError):
            top_k_share(ranking, dataset, "Gender", k=0)


class TestGroupStats:
    def test_stats_cover_all_groups(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        stats = group_ranking_stats(ranking, dataset, "Country")
        assert {s.group for s in stats} == {"America", "India", "Other"}
        assert sum(s.size for s in stats) == len(dataset)

    def test_sorted_by_mean_position(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        stats = group_ranking_stats(ranking, dataset, "Gender")
        positions = [s.mean_position for s in stats]
        assert positions == sorted(positions)

    def test_best_position_is_at_least_one(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        for stat in group_ranking_stats(ranking, dataset, "Ethnicity"):
            assert stat.best_position >= 1
            assert stat.mean_position >= stat.best_position

    def test_mismatched_ranking_raises(self, table1_dataset, table1_function, crawled_marketplace):
        # The crawled marketplace uses platform-prefixed ids, so a Table 1
        # ranking cannot be joined with its worker population.
        ranking = table1_function.rank(table1_dataset)
        with pytest.raises(MarketplaceError):
            group_ranking_stats(ranking, crawled_marketplace.workers, "Gender")

    def test_as_dict(self, ranking_and_dataset):
        ranking, dataset = ranking_and_dataset
        entry = group_ranking_stats(ranking, dataset, "Gender")[0].as_dict()
        assert {"group", "size", "mean_position", "exposure_share"} <= set(entry)


class TestRankingReport:
    def test_report_structure(self, crowdsourcing_marketplace_fixture):
        report = ranking_report(
            crowdsourcing_marketplace_fixture, "Content writing", "Gender"
        )
        assert report["job"] == "Content writing"
        assert report["attribute"] == "Gender"
        assert report["candidates"] > 0
        assert report["groups"]
        assert all("mean_position" in group for group in report["groups"])

    def test_report_respects_candidate_filter(self, crowdsourcing_marketplace_fixture):
        report = ranking_report(
            crowdsourcing_marketplace_fixture, "English transcription", "Gender"
        )
        assert report["candidates"] < len(crowdsourcing_marketplace_fixture.workers)
