"""Tests for catalog snapshot persistence (Catalog.save / Catalog.load)."""

import json

import pytest

from repro.catalog import Catalog, ResourceKind
from repro.core.formulations import (
    LEAST_UNFAIR_AVG_EMD,
    MOST_UNFAIR_AVG_EMD,
    Formulation,
)
from repro.data.filters import Equals, Not, OneOf
from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.errors import CatalogError, SessionError
from repro.experiments.workloads import crowdsourcing_marketplace
from repro.marketplace.entities import Job, Marketplace
from repro.metrics.histogram import Binning
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import RankDerivedScorer
from repro.service import FairnessService, QuantifyRequest
from repro.session.engine import FaiRankEngine
from repro.snapshot import SNAPSHOT_FORMAT, SNAPSHOT_VERSION


def populated_service() -> FairnessService:
    """A registry covering all four resource kinds (incl. a filtered job)."""
    service = FairnessService()
    service.register_dataset(load_example_table1(), name="table1")
    service.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
    service.register_marketplace(crowdsourcing_marketplace(size=40, seed=7))
    service.register_formulation(MOST_UNFAIR_AVG_EMD)
    service.register_formulation(LEAST_UNFAIR_AVG_EMD)
    return service


class TestRoundTrip:
    def test_every_resource_kind_round_trips(self, tmp_path):
        catalog = populated_service().catalog
        path = tmp_path / "snap.json"
        catalog.save(path)
        loaded = Catalog.load(path)
        assert len(loaded) == len(catalog)
        for kind in ResourceKind:
            assert loaded.names(kind) == catalog.names(kind)

    def test_fingerprints_are_stable_after_reload(self, tmp_path):
        catalog = populated_service().catalog
        path = tmp_path / "snap.json"
        catalog.save(path)
        loaded = Catalog.load(path)
        for resource in catalog.resources():
            assert (
                loaded.get(resource.kind, resource.name).fingerprint
                == resource.fingerprint
            ), (resource.kind, resource.name)

    def test_snapshot_document_shape(self, tmp_path):
        path = tmp_path / "snap.json"
        document = populated_service().catalog.save(path)
        on_disk = json.loads(path.read_text())
        assert on_disk == document
        assert on_disk["format"] == SNAPSHOT_FORMAT
        assert on_disk["version"] == SNAPSHOT_VERSION
        kinds = {entry["kind"] for entry in on_disk["resources"]}
        assert kinds == {"dataset", "function", "marketplace", "formulation"}

    def test_marketplace_round_trips_jobs_and_filters(self, tmp_path):
        catalog = populated_service().catalog
        path = tmp_path / "snap.json"
        catalog.save(path)
        original = catalog.resolve(ResourceKind.MARKETPLACE, "crowdsourcing-sim")
        reloaded = Catalog.load(path).resolve(ResourceKind.MARKETPLACE, "crowdsourcing-sim")
        assert reloaded.job_titles == original.job_titles
        filtered = reloaded.job("English transcription")
        assert filtered.candidate_filter == Equals("Language", "English")
        assert (
            reloaded.ranking_for("Content writing").entries
            == original.ranking_for("Content writing").entries
        )

    def test_composed_filters_round_trip(self, tmp_path):
        workers = load_example_table1()
        candidate_filter = Not(Equals("Gender", "Male")) | OneOf(
            "Country", ("India", "Other")
        )
        market = Marketplace(
            name="composed",
            workers=workers,
            jobs=[
                Job(
                    title="picky",
                    function=LinearScoringFunction({"Rating": 1.0}, name="picky"),
                    candidate_filter=candidate_filter,
                )
            ],
        )
        catalog = Catalog()
        catalog.register(market)
        path = tmp_path / "snap.json"
        catalog.save(path)
        reloaded = Catalog.load(path).resolve(ResourceKind.MARKETPLACE, "composed")
        assert reloaded.job("picky").candidate_filter == candidate_filter

    def test_formulation_with_explicit_binning_round_trips(self, tmp_path):
        catalog = Catalog()
        catalog.register(
            Formulation(bins=4, binning=Binning(low=0.0, high=2.0, bins=4)),
            name="wide",
        )
        path = tmp_path / "snap.json"
        catalog.save(path)
        reloaded = Catalog.load(path).resolve(ResourceKind.FORMULATION, "wide")
        assert reloaded.binning == Binning(low=0.0, high=2.0, bins=4)

    def test_frozen_entries_stay_frozen(self, tmp_path):
        catalog = Catalog()
        catalog.register(load_example_table1(), name="pinned", freeze=True)
        path = tmp_path / "snap.json"
        catalog.save(path)
        loaded = Catalog.load(path)
        assert loaded.get(ResourceKind.DATASET, "pinned").frozen is True
        with pytest.raises(CatalogError, match="frozen"):
            loaded.remove(ResourceKind.DATASET, "pinned")

    def test_served_results_are_identical_across_reboot(self, tmp_path):
        service = populated_service()
        path = tmp_path / "snap.json"
        service.catalog.save(path)
        rebooted = FairnessService(catalog=Catalog.load(path))
        request = QuantifyRequest(dataset="table1", function="table1-f")
        assert (
            rebooted.execute(request).canonical()
            == service.execute(request).canonical()
        )


class TestDatasetSources:
    def test_dataset_saved_by_loader_reference(self, tmp_path):
        catalog = Catalog()
        catalog.register(load_example_table1(), name="table1")
        path = tmp_path / "snap.json"
        document = catalog.save(
            path, dataset_sources={"table1": {"loader": "example_table1"}}
        )
        (entry,) = document["resources"]
        assert entry["source"] == {"loader": "example_table1"}
        assert "dataset" not in entry
        loaded = Catalog.load(path)
        assert (
            loaded.get(ResourceKind.DATASET, "table1").fingerprint
            == catalog.get(ResourceKind.DATASET, "table1").fingerprint
        )

    def test_csv_loader_reference(self, tmp_path):
        csv_path = tmp_path / "workers.csv"
        rows = ["Gender,Skill"] + [f"F,{0.2 + 0.05 * i}" for i in range(6)]
        rows += [f"M,{0.6 + 0.05 * i}" for i in range(6)]
        csv_path.write_text("\n".join(rows) + "\n", encoding="utf-8")
        from repro.data.loaders import load_csv

        dataset = load_csv(csv_path, protected_names=["Gender"], observed_names=["Skill"])
        catalog = Catalog()
        catalog.register(dataset, name="crawl")
        path = tmp_path / "snap.json"
        catalog.save(
            path,
            dataset_sources={
                "crawl": {
                    "loader": "csv",
                    "path": str(csv_path),
                    "protected": ["Gender"],
                    "observed": ["Skill"],
                }
            },
        )
        loaded = Catalog.load(path)
        assert (
            loaded.get(ResourceKind.DATASET, "crawl").fingerprint
            == catalog.get(ResourceKind.DATASET, "crawl").fingerprint
        )

    def test_drifted_source_content_is_rejected(self, tmp_path):
        csv_path = tmp_path / "workers.csv"
        csv_path.write_text("Gender,Skill\nF,0.4\nM,0.9\n", encoding="utf-8")
        from repro.data.loaders import load_csv

        catalog = Catalog()
        catalog.register(
            load_csv(csv_path, protected_names=["Gender"], observed_names=["Skill"]),
            name="crawl",
        )
        path = tmp_path / "snap.json"
        catalog.save(
            path,
            dataset_sources={
                "crawl": {
                    "loader": "csv",
                    "path": str(csv_path),
                    "protected": ["Gender"],
                    "observed": ["Skill"],
                }
            },
        )
        csv_path.write_text("Gender,Skill\nF,0.4\nM,0.1\n", encoding="utf-8")
        with pytest.raises(CatalogError, match="drifted"):
            Catalog.load(path)

    def test_unknown_loader_is_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(
            json.dumps(
                {
                    "format": SNAPSHOT_FORMAT,
                    "version": SNAPSHOT_VERSION,
                    "resources": [
                        {
                            "kind": "dataset",
                            "name": "x",
                            "source": {"loader": "teleport"},
                        }
                    ],
                }
            )
        )
        with pytest.raises(CatalogError, match="unknown dataset loader 'teleport'"):
            Catalog.load(path)

    def test_sources_for_unregistered_datasets_are_rejected(self, tmp_path):
        catalog = Catalog()
        catalog.register(load_example_table1(), name="table1")
        with pytest.raises(CatalogError, match="unregistered"):
            catalog.save(
                tmp_path / "snap.json",
                dataset_sources={"nope": {"loader": "example_table1"}},
            )


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CatalogError, match="cannot read catalog snapshot"):
            Catalog.load(tmp_path / "absent.json")

    def test_truncated_snapshot(self, tmp_path):
        path = tmp_path / "snap.json"
        populated_service().catalog.save(path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CatalogError, match="truncated"):
            Catalog.load(path)

    def test_arbitrary_json_is_not_a_snapshot(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"requests": []}))
        with pytest.raises(CatalogError, match="not a catalog snapshot"):
            Catalog.load(path)

    def test_unknown_version_is_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(
            json.dumps({"format": SNAPSHOT_FORMAT, "version": 99, "resources": []})
        )
        with pytest.raises(CatalogError, match="unsupported catalog snapshot version 99"):
            Catalog.load(path)

    def test_malformed_entry_is_named(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(
            json.dumps(
                {
                    "format": SNAPSHOT_FORMAT,
                    "version": SNAPSHOT_VERSION,
                    "resources": [{"kind": "function"}],
                }
            )
        )
        with pytest.raises(CatalogError, match="entry #1"):
            Catalog.load(path)

    def test_non_linear_functions_cannot_be_saved(self, tmp_path):
        dataset = load_example_table1()
        ranking = LinearScoringFunction(TABLE1_WEIGHTS, name="hidden").rank(dataset)
        catalog = Catalog()
        catalog.register(RankDerivedScorer(ranking, name="from-ranks"))
        with pytest.raises(CatalogError, match="no portable content representation"):
            catalog.save(tmp_path / "snap.json")

    def test_tampered_fingerprint_is_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        populated_service().catalog.save(path)
        document = json.loads(path.read_text())
        document["resources"][0]["fingerprint"] = "0" * 64
        path.write_text(json.dumps(document))
        with pytest.raises(CatalogError, match="drifted"):
            Catalog.load(path)


class TestEngineExport:
    def test_engine_exports_its_registry(self, tmp_path):
        engine = FaiRankEngine()
        engine.register_dataset(load_example_table1(), name="table1")
        engine.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
        path = tmp_path / "session.json"
        engine.save_catalog(path)
        loaded = Catalog.load(path)
        assert loaded.names(ResourceKind.DATASET) == ("table1",)
        assert loaded.names(ResourceKind.FUNCTION) == ("table1-f",)

    def test_engine_export_failure_is_a_session_error(self, tmp_path):
        engine = FaiRankEngine()
        dataset = load_example_table1()
        engine.register_dataset(dataset, name="table1")
        ranking = LinearScoringFunction(TABLE1_WEIGHTS, name="f").rank(dataset)
        engine.register_function(RankDerivedScorer(ranking, name="opaque-ish"))
        with pytest.raises(SessionError, match="no portable content representation"):
            engine.save_catalog(tmp_path / "session.json")

    def test_cli_catalog_save_writes_a_bootable_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "snap.json"
        assert main(["catalog", "--market-size", "40", "--save", str(path)]) == 0
        assert "snapshot written" in capsys.readouterr().out
        loaded = Catalog.load(path)
        assert "table1" in loaded.names(ResourceKind.DATASET)
        assert "crowdsourcing-sim" in loaded.names(ResourceKind.MARKETPLACE)
