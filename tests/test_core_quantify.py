"""Tests for the greedy QUANTIFY algorithm (Algorithm 1)."""

import pytest

from repro.core.exhaustive import exhaustive_search
from repro.core.formulations import Aggregation, Formulation, Objective
from repro.core.partition import root_partition
from repro.core.quantify import most_unfair_attribute, quantify
from repro.core.unfairness import unfairness
from repro.data.dataset import Dataset
from repro.data.schema import Schema, observed, protected
from repro.errors import PartitioningError
from repro.scoring.linear import LinearScoringFunction

CATEGORICAL_ATTRS = ["Gender", "Country", "Language", "Ethnicity"]


def _planted_dataset():
    """A dataset where Gender=F & City=A is clearly disadvantaged."""
    schema = Schema((
        protected("Gender", domain=("F", "M")),
        protected("City", domain=("A", "B")),
        observed("Skill"),
    ))
    rows = []
    # Disadvantaged intersection: F in city A score ~0.1; everyone else ~0.9.
    for _ in range(10):
        rows.append({"Gender": "F", "City": "A", "Skill": 0.1})
    for _ in range(10):
        rows.append({"Gender": "F", "City": "B", "Skill": 0.9})
    for _ in range(10):
        rows.append({"Gender": "M", "City": "A", "Skill": 0.9})
    for _ in range(10):
        rows.append({"Gender": "M", "City": "B", "Skill": 0.9})
    return Dataset.from_records(schema, rows, name="planted")


class TestQuantifyBasics:
    def test_result_is_valid_partitioning(self, table1_dataset, table1_function):
        result = quantify(table1_dataset, table1_function, attributes=CATEGORICAL_ATTRS)
        assert sum(result.partitioning.sizes) == len(table1_dataset)
        assert result.unfairness >= 0.0
        assert result.splits_evaluated > 0

    def test_unfairness_matches_recomputation(self, table1_dataset, table1_function):
        result = quantify(table1_dataset, table1_function, attributes=CATEGORICAL_ATTRS)
        assert result.unfairness == pytest.approx(
            unfairness(result.partitioning, table1_function, result.formulation)
        )

    def test_tree_leaves_match_partitioning(self, table1_dataset, table1_function):
        result = quantify(table1_dataset, table1_function, attributes=CATEGORICAL_ATTRS)
        assert {leaf.label for leaf in result.tree.leaves()} == set(result.partition_labels)

    def test_deterministic(self, small_population, balanced_function):
        first = quantify(small_population, balanced_function, attributes=CATEGORICAL_ATTRS)
        second = quantify(small_population, balanced_function, attributes=CATEGORICAL_ATTRS)
        assert first.partition_labels == second.partition_labels
        assert first.unfairness == pytest.approx(second.unfairness)

    def test_summary(self, table1_dataset, table1_function):
        result = quantify(table1_dataset, table1_function, attributes=["Gender", "Language"])
        summary = result.summary()
        assert summary["unfairness"] == pytest.approx(result.unfairness)
        assert summary["partitions"] == len(result.partitioning)
        assert summary["formulation"] == result.formulation.name


class TestQuantifyParameters:
    def test_empty_dataset_rejected(self, table1_dataset, table1_function):
        empty = table1_dataset.filter(lambda i: False)
        with pytest.raises(Exception):
            quantify(empty, table1_function, attributes=["Gender"])

    def test_unknown_attribute_rejected(self, table1_dataset, table1_function):
        with pytest.raises(Exception):
            quantify(table1_dataset, table1_function, attributes=["NotAnAttribute"])

    def test_observed_attribute_rejected(self, table1_dataset, table1_function):
        with pytest.raises(Exception):
            quantify(table1_dataset, table1_function, attributes=["Rating"])

    def test_min_partition_size_enforced(self, small_population, balanced_function):
        result = quantify(small_population, balanced_function,
                          attributes=CATEGORICAL_ATTRS, min_partition_size=5)
        assert all(size >= 5 for size in result.partitioning.sizes)

    def test_invalid_min_partition_size(self, table1_dataset, table1_function):
        with pytest.raises(PartitioningError):
            quantify(table1_dataset, table1_function, min_partition_size=0)

    def test_max_depth_limits_tree(self, small_population, balanced_function):
        shallow = quantify(small_population, balanced_function,
                           attributes=CATEGORICAL_ATTRS, max_depth=1)
        assert shallow.tree.depth() <= 1
        deep = quantify(small_population, balanced_function, attributes=CATEGORICAL_ATTRS)
        assert deep.tree.depth() >= shallow.tree.depth()

    def test_default_attributes_are_all_protected(self, table1_dataset, table1_function):
        result = quantify(table1_dataset, table1_function)
        used = set(result.tree.split_attributes_used())
        assert used <= set(table1_dataset.schema.protected_names)


class TestQuantifyQuality:
    def test_recovers_planted_intersectional_bias(self):
        dataset = _planted_dataset()
        function = LinearScoringFunction({"Skill": 1.0})
        result = quantify(dataset, function)
        # The disadvantaged F/A subgroup must be isolated in its own partition.
        labels = set(result.partition_labels)
        assert any("Gender=F" in label and "City=A" in label for label in labels), labels
        # And the unfairness must be substantial (mass separated by 4 bins).
        assert result.unfairness > 1.0

    def test_splitting_uninformative_attribute_is_avoided(self):
        schema = Schema((
            protected("Noise", domain=("x", "y")),
            protected("Signal", domain=("lo", "hi")),
            observed("Skill"),
        ))
        rows = []
        for i in range(20):
            noise = "x" if i % 2 else "y"
            rows.append({"Noise": noise, "Signal": "lo", "Skill": 0.1})
            rows.append({"Noise": noise, "Signal": "hi", "Skill": 0.9})
        dataset = Dataset.from_records(schema, rows)
        function = LinearScoringFunction({"Skill": 1.0})
        result = quantify(dataset, function)
        assert result.tree.root.split_attribute == "Signal"

    def test_greedy_close_to_exhaustive_on_table1(self, table1_dataset, table1_function):
        attributes = ["Gender", "Language"]
        greedy = quantify(table1_dataset, table1_function, attributes=attributes)
        exact = exhaustive_search(table1_dataset, table1_function, attributes=attributes)
        assert greedy.unfairness <= exact.unfairness + 1e-9
        assert greedy.unfairness >= 0.5 * exact.unfairness

    def test_least_unfair_objective_yields_lower_value(self, small_population, balanced_function):
        most = quantify(small_population, balanced_function, attributes=CATEGORICAL_ATTRS)
        least = quantify(
            small_population,
            balanced_function,
            formulation=Formulation(objective=Objective.LEAST_UNFAIR),
            attributes=CATEGORICAL_ATTRS,
        )
        assert least.unfairness <= most.unfairness + 1e-9

    def test_uniform_scores_give_zero_unfairness(self):
        schema = Schema((protected("G", domain=("a", "b")), observed("S")))
        rows = [{"G": "a", "S": 0.5}] * 5 + [{"G": "b", "S": 0.5}] * 5
        dataset = Dataset.from_records(schema, rows)
        result = quantify(dataset, LinearScoringFunction({"S": 1.0}))
        assert result.unfairness == pytest.approx(0.0)

    def test_max_aggregation_unfairness_at_least_average(self, small_population, balanced_function):
        average = quantify(small_population, balanced_function, attributes=CATEGORICAL_ATTRS)
        maximum = quantify(
            small_population,
            balanced_function,
            formulation=Formulation(aggregation=Aggregation.MAXIMUM),
            attributes=CATEGORICAL_ATTRS,
        )
        assert maximum.unfairness >= average.unfairness - 1e-9


class TestMostUnfairAttribute:
    def test_returns_none_when_nothing_splits(self):
        schema = Schema((protected("G", domain=("a",)), observed("S")))
        rows = [{"G": "a", "S": 0.2}, {"G": "a", "S": 0.8}]
        dataset = Dataset.from_records(schema, rows)
        choice = most_unfair_attribute(
            root_partition(dataset), LinearScoringFunction({"S": 1.0}), ["G"]
        )
        assert choice is None

    def test_prefers_the_separating_attribute(self, table1_dataset, table1_function):
        choice = most_unfair_attribute(
            root_partition(table1_dataset), table1_function, CATEGORICAL_ATTRS
        )
        assert choice is not None
        attribute, children, score = choice
        assert attribute in CATEGORICAL_ATTRS
        assert len(children) >= 2
        assert score >= 0.0
