"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, Individual
from repro.data.schema import Schema, observed, protected
from repro.errors import DataError, EmptyDatasetError, UnknownAttributeError


@pytest.fixture
def schema():
    return Schema((
        protected("Gender", domain=("F", "M")),
        protected("City", domain=("NY", "SF", "LA")),
        observed("Rating", domain=(0.0, 1.0)),
    ))


@pytest.fixture
def records():
    return [
        {"Gender": "F", "City": "NY", "Rating": 0.9},
        {"Gender": "M", "City": "NY", "Rating": 0.4},
        {"Gender": "F", "City": "SF", "Rating": 0.7},
        {"Gender": "M", "City": "LA", "Rating": 0.2},
        {"Gender": "F", "City": "LA", "Rating": 0.6},
    ]


@pytest.fixture
def dataset(schema, records):
    return Dataset.from_records(schema, records, name="toy")


class TestIndividual:
    def test_getitem_and_get(self):
        ind = Individual(uid="w1", values={"Gender": "F"})
        assert ind["Gender"] == "F"
        assert ind.get("Missing", "default") == "default"
        with pytest.raises(UnknownAttributeError):
            ind["Missing"]

    def test_with_values_does_not_mutate_original(self):
        ind = Individual(uid="w1", values={"Gender": "F", "Rating": 0.5})
        updated = ind.with_values(Rating=0.9)
        assert updated["Rating"] == 0.9
        assert ind["Rating"] == 0.5
        assert updated.uid == ind.uid


class TestConstruction:
    def test_from_records_assigns_sequential_uids(self, dataset):
        assert dataset.uids == ("w1", "w2", "w3", "w4", "w5")

    def test_from_records_with_uid_field(self, schema):
        records = [{"id": "alice", "Gender": "F", "City": "NY", "Rating": 0.9}]
        ds = Dataset.from_records(schema, records, uid_field="id")
        assert ds.uids == ("alice",)
        assert "id" not in ds[0].values

    def test_from_records_missing_uid_field(self, schema):
        with pytest.raises(DataError):
            Dataset.from_records(schema, [{"Gender": "F", "City": "NY", "Rating": 0.9}],
                                 uid_field="id")

    def test_from_columns(self, schema):
        ds = Dataset.from_columns(
            schema,
            {"Gender": ["F", "M"], "City": ["NY", "SF"], "Rating": [0.1, 0.2]},
        )
        assert len(ds) == 2
        assert ds.column("City") == ("NY", "SF")

    def test_from_columns_inconsistent_lengths(self, schema):
        with pytest.raises(DataError):
            Dataset.from_columns(
                schema, {"Gender": ["F"], "City": ["NY", "SF"], "Rating": [0.1, 0.2]}
            )

    def test_from_columns_wrong_uid_count(self, schema):
        with pytest.raises(DataError):
            Dataset.from_columns(
                schema,
                {"Gender": ["F"], "City": ["NY"], "Rating": [0.1]},
                uids=["a", "b"],
            )

    def test_validation_missing_attribute(self, schema):
        with pytest.raises(DataError):
            Dataset(schema, [Individual("w1", {"Gender": "F", "City": "NY"})])

    def test_validation_invalid_value(self, schema):
        with pytest.raises(DataError):
            Dataset(schema, [Individual("w1", {"Gender": "X", "City": "NY", "Rating": 0.5})])

    def test_validation_duplicate_uid(self, schema):
        rows = [
            Individual("w1", {"Gender": "F", "City": "NY", "Rating": 0.5}),
            Individual("w1", {"Gender": "M", "City": "SF", "Rating": 0.6}),
        ]
        with pytest.raises(DataError):
            Dataset(schema, rows)


class TestAccess:
    def test_len_iter_getitem_bool(self, dataset):
        assert len(dataset) == 5
        assert bool(dataset)
        assert dataset[0].uid == "w1"
        assert sum(1 for _ in dataset) == 5

    def test_by_uid(self, dataset):
        assert dataset.by_uid("w3")["City"] == "SF"
        with pytest.raises(DataError):
            dataset.by_uid("nope")

    def test_column_and_numeric_column(self, dataset):
        assert dataset.column("Gender") == ("F", "M", "F", "M", "F")
        ratings = dataset.numeric_column("Rating")
        assert isinstance(ratings, np.ndarray)
        assert ratings.tolist() == [0.9, 0.4, 0.7, 0.2, 0.6]

    def test_numeric_column_rejects_categorical(self, dataset):
        with pytest.raises(DataError):
            dataset.numeric_column("Gender")

    def test_value_counts_and_distinct_values(self, dataset):
        assert dataset.value_counts("Gender") == {"F": 3, "M": 2}
        # Domain order is preserved for categorical attributes.
        assert dataset.distinct_values("City") == ("NY", "SF", "LA")

    def test_unknown_column(self, dataset):
        with pytest.raises(UnknownAttributeError):
            dataset.column("Nope")


class TestOperations:
    def test_filter(self, dataset):
        females = dataset.filter(lambda ind: ind["Gender"] == "F")
        assert len(females) == 3
        assert all(ind["Gender"] == "F" for ind in females)
        # Original unchanged.
        assert len(dataset) == 5

    def test_select_uids(self, dataset):
        subset = dataset.select_uids(["w1", "w4"])
        assert subset.uids == ("w1", "w4")
        with pytest.raises(DataError):
            dataset.select_uids(["w1", "ghost"])

    def test_project(self, dataset):
        projected = dataset.project(["Gender", "Rating"])
        assert projected.schema.names == ("Gender", "Rating")
        assert "City" not in projected[0].values

    def test_map_column(self, dataset):
        mapped = dataset.map_column("City", lambda c: "COAST" if c in ("SF", "LA") else c)
        assert set(mapped.column("City")) == {"NY", "COAST"}
        # Domain is dropped so new values are allowed.
        assert mapped.schema.attribute("City").domain is None

    def test_group_by_single_attribute(self, dataset):
        groups = dataset.group_by(["Gender"])
        assert set(groups) == {("F",), ("M",)}
        assert len(groups[("F",)]) == 3

    def test_group_by_multiple_attributes(self, dataset):
        groups = dataset.group_by(["Gender", "City"])
        assert ("F", "NY") in groups
        assert len(groups[("F", "NY")]) == 1
        total = sum(len(g) for g in groups.values())
        assert total == len(dataset)

    def test_concat(self, schema, dataset):
        other = Dataset.from_records(
            schema, [{"Gender": "M", "City": "SF", "Rating": 0.3}], name="extra",
        )
        # Rename uid to avoid collision.
        renamed = Dataset(schema, [Individual("x1", other[0].values)], name="extra")
        combined = dataset.concat(renamed)
        assert len(combined) == 6

    def test_concat_schema_mismatch(self, dataset):
        other_schema = Schema((protected("Other"), observed("Rating")))
        other = Dataset.from_records(other_schema, [{"Other": "a", "Rating": 0.5}])
        with pytest.raises(DataError):
            dataset.concat(other)

    def test_require_non_empty(self, schema, dataset):
        assert dataset.require_non_empty() is dataset
        empty = Dataset(schema, [])
        with pytest.raises(EmptyDatasetError):
            empty.require_non_empty()

    def test_observed_matrix(self, dataset):
        matrix = dataset.observed_matrix()
        assert matrix.shape == (5, 1)
        assert matrix[:, 0].tolist() == [0.9, 0.4, 0.7, 0.2, 0.6]

    def test_observed_matrix_empty_names(self, dataset):
        matrix = dataset.observed_matrix([])
        assert matrix.shape == (5, 0)

    def test_to_records_roundtrip(self, schema, dataset):
        records = dataset.to_records(include_uid=False)
        rebuilt = Dataset.from_records(schema, records)
        assert rebuilt.column("Rating") == dataset.column("Rating")

    def test_summary(self, dataset):
        summary = dataset.summary()
        assert summary["size"] == 5
        assert summary["protected_attributes"] == ["Gender", "City"]
        assert summary["protected_cardinalities"]["City"] == 3
