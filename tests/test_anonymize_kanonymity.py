"""Tests for repro.anonymize.kanonymity (the ARX substitute)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymize.hierarchy import SUPPRESSED, CategoricalHierarchy
from repro.anonymize.kanonymity import (
    GlobalRecodingAnonymizer,
    MondrianAnonymizer,
    default_hierarchies,
    equivalence_classes,
    is_k_anonymous,
)
from repro.data.dataset import Dataset
from repro.data.schema import Schema, observed, protected
from repro.errors import AnonymizationError
from repro.marketplace.generator import CrowdsourcingGenerator

QI = ["Gender", "Country", "Language", "Ethnicity"]


@pytest.fixture(scope="module")
def population():
    return CrowdsourcingGenerator(seed=17).generate(120, name="anon-pop")


class TestEquivalenceClasses:
    def test_class_sizes_sum_to_population(self, population):
        classes = equivalence_classes(population, QI)
        assert sum(classes.values()) == len(population)

    def test_is_k_anonymous_trivial_cases(self, population):
        assert is_k_anonymous(population, QI, 1)
        empty = population.filter(lambda i: False)
        assert is_k_anonymous(empty, QI, 10)

    def test_raw_population_is_not_strongly_anonymous(self, population):
        # With four quasi-identifiers, some combination is almost surely rare.
        assert not is_k_anonymous(population, QI, 20)


class TestGlobalRecoding:
    def test_k1_returns_data_unchanged(self, population):
        result = GlobalRecodingAnonymizer().anonymize(population, k=1, quasi_identifiers=QI)
        assert result.dataset is population
        assert all(level == 0 for level in result.levels.values())

    @pytest.mark.parametrize("k", [2, 5, 10])
    def test_result_is_k_anonymous(self, population, k):
        result = GlobalRecodingAnonymizer().anonymize(population, k=k, quasi_identifiers=QI)
        assert is_k_anonymous(result.dataset, QI, k)
        assert result.k == k

    def test_observed_attributes_untouched(self, population):
        result = GlobalRecodingAnonymizer().anonymize(population, k=5, quasi_identifiers=QI)
        kept = {ind.uid: ind for ind in result.dataset}
        for individual in population:
            if individual.uid in kept:
                assert kept[individual.uid]["Rating"] == individual["Rating"]
                assert kept[individual.uid]["Language Test"] == individual["Language Test"]

    def test_suppression_bounded(self, population):
        anonymizer = GlobalRecodingAnonymizer(max_suppression_rate=0.05)
        result = anonymizer.anonymize(population, k=5, quasi_identifiers=QI)
        assert result.suppression_rate <= 0.05 + 1e-9

    def test_levels_increase_with_k(self, population):
        anonymizer = GlobalRecodingAnonymizer()
        low = anonymizer.anonymize(population, k=2, quasi_identifiers=QI)
        high = anonymizer.anonymize(population, k=20, quasi_identifiers=QI)
        assert sum(high.levels.values()) >= sum(low.levels.values())

    def test_custom_hierarchy_is_used(self, population):
        hierarchy = CategoricalHierarchy.two_level(
            "Country", {"Western": ["America", "Other"], "Asian": ["India"]}
        )
        anonymizer = GlobalRecodingAnonymizer(hierarchies={"Country": hierarchy})
        result = anonymizer.anonymize(population, k=30, quasi_identifiers=["Country", "Gender"])
        values = set(result.dataset.column("Country"))
        assert values <= {"America", "India", "Other", "Western", "Asian", SUPPRESSED}

    def test_invalid_parameters(self, population):
        with pytest.raises(AnonymizationError):
            GlobalRecodingAnonymizer(max_suppression_rate=2.0)
        with pytest.raises(AnonymizationError):
            GlobalRecodingAnonymizer().anonymize(population, k=0)

    def test_impossible_k_raises(self):
        schema = Schema((protected("G", domain=("a", "b")), observed("S")))
        rows = [{"G": "a", "S": 0.5}, {"G": "b", "S": 0.6}, {"G": "a", "S": 0.7}]
        tiny = Dataset.from_records(schema, rows)
        with pytest.raises(AnonymizationError):
            GlobalRecodingAnonymizer(max_suppression_rate=0.0).anonymize(tiny, k=5)

    def test_summary(self, population):
        result = GlobalRecodingAnonymizer().anonymize(population, k=5, quasi_identifiers=QI)
        summary = result.summary()
        assert summary["k"] == 5
        assert summary["method"] == "global-recoding"
        assert summary["size"] == len(result.dataset)


class TestMondrian:
    @pytest.mark.parametrize("k", [2, 5, 10])
    def test_result_is_k_anonymous(self, population, k):
        result = MondrianAnonymizer().anonymize(population, k=k, quasi_identifiers=QI)
        assert is_k_anonymous(result.dataset, QI, k)

    def test_no_records_dropped(self, population):
        result = MondrianAnonymizer().anonymize(population, k=5, quasi_identifiers=QI)
        assert len(result.dataset) == len(population)
        assert result.suppressed_uids == ()

    def test_row_order_preserved(self, population):
        result = MondrianAnonymizer().anonymize(population, k=5, quasi_identifiers=QI)
        assert result.dataset.uids == population.uids

    def test_numeric_quasi_identifier_becomes_interval(self, population):
        result = MondrianAnonymizer().anonymize(
            population, k=10, quasi_identifiers=["Year of Birth", "Gender"]
        )
        values = set(result.dataset.column("Year of Birth"))
        assert any(isinstance(v, str) and v.startswith("[") for v in values)

    def test_dataset_smaller_than_k_rejected(self):
        schema = Schema((protected("G", domain=("a", "b")), observed("S")))
        rows = [{"G": "a", "S": 0.5}, {"G": "b", "S": 0.6}]
        tiny = Dataset.from_records(schema, rows)
        with pytest.raises(AnonymizationError):
            MondrianAnonymizer().anonymize(tiny, k=5)

    def test_mondrian_preserves_more_classes_than_global(self, population):
        k = 5
        global_result = GlobalRecodingAnonymizer().anonymize(population, k=k, quasi_identifiers=QI)
        mondrian_result = MondrianAnonymizer().anonymize(population, k=k, quasi_identifiers=QI)
        global_classes = len(equivalence_classes(global_result.dataset, QI))
        mondrian_classes = len(equivalence_classes(mondrian_result.dataset, QI))
        assert mondrian_classes >= global_classes


class TestDefaultHierarchies:
    def test_numeric_attributes_get_interval_hierarchies(self, population):
        hierarchies = default_hierarchies(population, ["Year of Birth", "Gender"])
        assert hierarchies["Year of Birth"].height > 1
        assert hierarchies["Gender"].height == 1

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_global_recoding_always_k_anonymous(self, k):
        population = CrowdsourcingGenerator(seed=23).generate(60, name="hyp-pop")
        result = GlobalRecodingAnonymizer().anonymize(
            population, k=k, quasi_identifiers=["Gender", "Country", "Language"]
        )
        assert is_k_anonymous(result.dataset, ["Gender", "Country", "Language"], k)
