"""Tests for repro.data.validation."""

import pytest

from repro.data.dataset import Dataset
from repro.data.schema import Schema, observed, protected
from repro.data.validation import profile_dataset, validate_dataset
from repro.errors import DataError


def _make(rows, schema=None):
    schema = schema or Schema((
        protected("Gender", domain=("F", "M")),
        observed("Rating"),
    ))
    return Dataset.from_records(schema, rows, name="val-test")


class TestValidateDataset:
    def test_valid_dataset_passes(self):
        ds = _make([
            {"Gender": "F", "Rating": 0.5},
            {"Gender": "M", "Rating": 0.7},
        ])
        report = validate_dataset(ds)
        assert report.ok
        assert not report.errors
        report.raise_if_invalid()  # should not raise

    def test_too_few_individuals(self):
        ds = _make([{"Gender": "F", "Rating": 0.5}])
        report = validate_dataset(ds, min_individuals=2)
        assert not report.ok
        assert any(issue.code == "too-few-individuals" for issue in report.errors)
        with pytest.raises(DataError):
            report.raise_if_invalid()

    def test_no_protected_attributes(self):
        schema = Schema((observed("Rating"),))
        ds = Dataset.from_records(schema, [{"Rating": 0.5}, {"Rating": 0.6}])
        report = validate_dataset(ds)
        assert any(issue.code == "no-protected-attributes" for issue in report.errors)

    def test_no_observed_attributes(self):
        schema = Schema((protected("Gender", domain=("F", "M")),))
        ds = Dataset.from_records(schema, [{"Gender": "F"}, {"Gender": "M"}])
        report = validate_dataset(ds)
        assert any(issue.code == "no-observed-attributes" for issue in report.errors)

    def test_constant_protected_attribute_warns(self):
        ds = _make([
            {"Gender": "F", "Rating": 0.5},
            {"Gender": "F", "Rating": 0.7},
        ])
        report = validate_dataset(ds)
        assert report.ok  # warning, not error
        assert any(issue.code == "constant-protected-attribute" for issue in report.warnings)

    def test_small_groups_warn(self):
        ds = _make([
            {"Gender": "F", "Rating": 0.5},
            {"Gender": "M", "Rating": 0.7},
            {"Gender": "M", "Rating": 0.6},
        ])
        report = validate_dataset(ds, min_group_size=2)
        assert any(issue.code == "small-protected-groups" for issue in report.warnings)

    def test_scores_outside_unit_interval_warning_and_error(self):
        ds = _make([
            {"Gender": "F", "Rating": 1.5},
            {"Gender": "M", "Rating": 0.7},
        ])
        relaxed = validate_dataset(ds)
        assert relaxed.ok
        assert any(i.code == "scores-outside-unit-interval" for i in relaxed.warnings)
        strict = validate_dataset(ds, require_unit_interval_scores=True)
        assert not strict.ok

    def test_nan_scores_are_errors(self):
        ds = _make([
            {"Gender": "F", "Rating": float("nan")},
            {"Gender": "M", "Rating": 0.7},
        ])
        report = validate_dataset(ds)
        assert any(issue.code == "nan-scores" for issue in report.errors)

    def test_constant_observed_attribute_warns(self):
        ds = _make([
            {"Gender": "F", "Rating": 0.5},
            {"Gender": "M", "Rating": 0.5},
        ])
        report = validate_dataset(ds)
        assert any(issue.code == "constant-observed-attribute" for issue in report.warnings)

    def test_issue_str_mentions_code(self):
        ds = _make([{"Gender": "F", "Rating": 0.5}])
        report = validate_dataset(ds)
        assert any("too-few-individuals" in str(issue) for issue in report.issues)


class TestProfileDataset:
    def test_profile_contents(self, table1_dataset):
        profile = profile_dataset(table1_dataset)
        assert profile["size"] == 10
        assert profile["protected"]["Gender"] == {"Female": 4, "Male": 6}
        rating_stats = profile["observed"]["Rating"]
        assert 0.0 <= rating_stats["min"] <= rating_stats["mean"] <= rating_stats["max"] <= 1.0

    def test_profile_empty_dataset(self):
        schema = Schema((protected("Gender", domain=("F",)), observed("Rating")))
        ds = Dataset(schema, [])
        profile = profile_dataset(ds)
        assert profile["size"] == 0
        assert profile["observed"]["Rating"]["mean"] == 0.0

    def test_synthetic_population_is_valid(self, small_population):
        report = validate_dataset(small_population, min_group_size=2)
        assert report.ok
