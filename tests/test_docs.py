"""The docs tree and its CI gate (``scripts/check_docs.py``).

The gate promises four invariants: every internal link in ``docs/*.md``
and ``README.md`` resolves to a real file, every ``#fragment`` in those
links names a real heading in its target, every ``--flag`` the docs name
exists in the ``fairank`` CLI parser, and every ``FLnnn`` rule id the
docs mention exists in the ``repro.analysis`` registry.  These tests run
the gate exactly as CI does (a subprocess from the repository root),
check the negative paths on synthetic broken docs, and pin the docs
tree's required files.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"


def _run_gate(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_docs.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_docs_tree_exists():
    """The documented docs tree ships its four core files."""
    for name in ("ARCHITECTURE.md", "PROTOCOL.md", "OPERATIONS.md", "ANALYSIS.md"):
        assert (DOCS / name).is_file(), f"docs/{name} is missing"


def test_docs_gate_passes_on_repo():
    """The CI gate passes on the committed docs tree."""
    completed = _run_gate()
    assert completed.returncode == 0, completed.stderr
    assert "docs check OK" in completed.stdout


def test_docs_gate_rejects_broken_link(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "BAD.md").write_text(
        "see [the missing page](NOPE.md)\n", encoding="utf-8"
    )
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 1
    assert "broken link -> NOPE.md" in completed.stderr


def test_docs_gate_rejects_unknown_flag(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "BAD.md").write_text(
        "run `fairank serve --does-not-exist`\n", encoding="utf-8"
    )
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 1
    assert "--does-not-exist" in completed.stderr


def test_docs_gate_rejects_dead_anchor(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "PAGE.md").write_text(
        "# Real heading\n\nsee [elsewhere](#no-such-section)\n",
        encoding="utf-8",
    )
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 1
    assert "dead anchor -> #no-such-section" in completed.stderr


def test_docs_gate_resolves_cross_file_anchor(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "A.md").write_text(
        "see [the B section](B.md#the-target-section)\n", encoding="utf-8"
    )
    (tmp_path / "docs" / "B.md").write_text(
        "# Intro\n\n## The `target` section\n", encoding="utf-8"
    )
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 0, completed.stderr


def test_docs_gate_ignores_headings_inside_code_fences(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "A.md").write_text(
        "see [fake](#not-a-heading)\n\n```text\n# not a heading\n```\n",
        encoding="utf-8",
    )
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 1
    assert "dead anchor" in completed.stderr


def test_docs_gate_rejects_unknown_rule_id(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "BAD.md").write_text(
        "rule FL666 does not exist\n", encoding="utf-8"
    )
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 1
    assert "FL666" in completed.stderr
    assert "not in the repro.analysis registry" in completed.stderr


def test_analysis_doc_catalogues_every_rule():
    """docs/ANALYSIS.md is the catalogue: every registered id appears."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis import rule_ids

    text = (DOCS / "ANALYSIS.md").read_text(encoding="utf-8")
    missing = [rule_id for rule_id in rule_ids() if rule_id not in text]
    assert not missing, f"docs/ANALYSIS.md never mentions: {missing}"


def test_docs_gate_requires_docs_tree(tmp_path):
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 1
    assert "no docs/*.md" in completed.stderr


@pytest.mark.parametrize(
    "flag", ["--catalog", "--workers", "--columnar", "--slow-ms", "--verbose"]
)
def test_operational_flags_are_documented(flag):
    """The serving flags OPERATIONS.md promises to cover are actually there."""
    text = "".join(
        (DOCS / name).read_text(encoding="utf-8")
        for name in ("OPERATIONS.md", "ARCHITECTURE.md")
    )
    assert flag in text, f"docs never mention {flag}"
