"""The docs tree and its CI gate (``scripts/check_docs.py``).

The gate promises two invariants: every internal link in ``docs/*.md`` and
``README.md`` resolves to a real file, and every ``--flag`` the docs name
exists in the ``fairank`` CLI parser.  These tests run the gate exactly as
CI does (a subprocess from the repository root), check the negative paths
on synthetic broken docs, and pin the docs tree's required files.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"


def _run_gate(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_docs.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_docs_tree_exists():
    """The documented docs tree ships its three core files."""
    for name in ("ARCHITECTURE.md", "PROTOCOL.md", "OPERATIONS.md"):
        assert (DOCS / name).is_file(), f"docs/{name} is missing"


def test_docs_gate_passes_on_repo():
    """The CI gate passes on the committed docs tree."""
    completed = _run_gate()
    assert completed.returncode == 0, completed.stderr
    assert "docs check OK" in completed.stdout


def test_docs_gate_rejects_broken_link(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "BAD.md").write_text(
        "see [the missing page](NOPE.md)\n", encoding="utf-8"
    )
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 1
    assert "broken link -> NOPE.md" in completed.stderr


def test_docs_gate_rejects_unknown_flag(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "BAD.md").write_text(
        "run `fairank serve --does-not-exist`\n", encoding="utf-8"
    )
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 1
    assert "--does-not-exist" in completed.stderr


def test_docs_gate_requires_docs_tree(tmp_path):
    completed = _run_gate("--root", str(tmp_path))
    assert completed.returncode == 1
    assert "no docs/*.md" in completed.stderr


@pytest.mark.parametrize(
    "flag", ["--catalog", "--workers", "--columnar", "--slow-ms", "--verbose"]
)
def test_operational_flags_are_documented(flag):
    """The serving flags OPERATIONS.md promises to cover are actually there."""
    text = "".join(
        (DOCS / name).read_text(encoding="utf-8")
        for name in ("OPERATIONS.md", "ARCHITECTURE.md")
    )
    assert flag in text, f"docs never mention {flag}"
