"""Tests for repro.roles.report (ReportTable, format_table)."""

import pytest

from repro.roles.report import ReportTable, format_table


class TestFormatTable:
    def test_columns_are_aligned(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert len({line.index("|") for line in (lines[0], lines[2], lines[3])}) == 1

    def test_floats_are_rounded_to_four_decimals(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestReportTable:
    def _table(self):
        table = ReportTable(title="Jobs", headers=["job", "unfairness"])
        table.add_row("writing", 0.5)
        table.add_row("coding", 1.5)
        table.add_row("design", 1.0)
        return table

    def test_add_row_validates_width(self):
        table = ReportTable(title="t", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_and_records(self):
        table = self._table()
        assert table.column("job") == ["writing", "coding", "design"]
        assert table.to_records()[1] == {"job": "coding", "unfairness": 1.5}
        with pytest.raises(ValueError):
            table.column("missing")

    def test_sort_by(self):
        table = self._table()
        table.sort_by("unfairness", descending=True)
        assert table.column("job") == ["coding", "design", "writing"]
        with pytest.raises(ValueError):
            table.sort_by("missing")

    def test_render_includes_title_rows_and_notes(self):
        table = self._table()
        table.add_note("a note about the data")
        text = table.render()
        assert "Jobs" in text
        assert "coding" in text
        assert "* a note about the data" in text

    def test_len(self):
        assert len(self._table()) == 3
