"""Tests for repro.core.problem (FairnessProblem)."""

import pytest

from repro.core.formulations import Formulation, Objective
from repro.core.problem import FairnessProblem
from repro.data.filters import Equals
from repro.errors import PartitioningError, ScoringError
from repro.scoring.linear import LinearScoringFunction


class TestConstruction:
    def test_basic_problem(self, table1_dataset, table1_function):
        problem = FairnessProblem(dataset=table1_dataset, function=table1_function)
        assert problem.population is table1_dataset
        assert problem.protected_attributes == table1_dataset.schema.protected_names

    def test_attribute_validation(self, table1_dataset, table1_function):
        with pytest.raises(Exception):
            FairnessProblem(
                dataset=table1_dataset, function=table1_function, attributes=("Rating",)
            )

    def test_function_validation(self, table1_dataset):
        bad = LinearScoringFunction({"NotAColumn": 1.0})
        with pytest.raises(ScoringError):
            FairnessProblem(dataset=table1_dataset, function=bad)

    def test_describe_mentions_components(self, table1_dataset, table1_function):
        problem = FairnessProblem(
            dataset=table1_dataset,
            function=table1_function,
            row_filter=Equals("Language", "English"),
        )
        text = problem.describe()
        assert table1_dataset.name in text
        assert "Language" in text


class TestPopulationFilter:
    def test_filter_restricts_population(self, table1_dataset, table1_function):
        problem = FairnessProblem(
            dataset=table1_dataset,
            function=table1_function,
            row_filter=Equals("Language", "English"),
        )
        assert len(problem.population) == 7
        assert all(ind["Language"] == "English" for ind in problem.population)

    def test_empty_filter_result_raises(self, table1_dataset, table1_function):
        problem = FairnessProblem(
            dataset=table1_dataset,
            function=table1_function,
            row_filter=Equals("Language", "Martian"),
        )
        with pytest.raises(PartitioningError):
            problem.population


class TestVariants:
    def test_with_function(self, table1_dataset, table1_function):
        problem = FairnessProblem(dataset=table1_dataset, function=table1_function)
        other = LinearScoringFunction({"Rating": 1.0}, name="rating-only")
        variant = problem.with_function(other)
        assert variant.function.name == "rating-only"
        assert problem.function.name == table1_function.name

    def test_with_formulation_and_objective(self, table1_dataset, table1_function):
        problem = FairnessProblem(dataset=table1_dataset, function=table1_function)
        least = problem.with_objective(Objective.LEAST_UNFAIR)
        assert least.formulation.objective is Objective.LEAST_UNFAIR
        custom = problem.with_formulation(Formulation(bins=10))
        assert custom.formulation.bins == 10

    def test_with_filter(self, table1_dataset, table1_function):
        problem = FairnessProblem(dataset=table1_dataset, function=table1_function)
        filtered = problem.with_filter(Equals("Gender", "Female"))
        assert len(filtered.population) == 4


class TestSolving:
    def test_solve_greedy(self, table1_dataset, table1_function):
        problem = FairnessProblem(
            dataset=table1_dataset,
            function=table1_function,
            attributes=("Gender", "Language", "Country", "Ethnicity"),
        )
        result = problem.solve()
        assert result.unfairness > 0.0
        assert sum(result.partitioning.sizes) == 10

    def test_solve_exactly(self, table1_dataset, table1_function):
        problem = FairnessProblem(
            dataset=table1_dataset,
            function=table1_function,
            attributes=("Gender", "Language"),
        )
        greedy = problem.solve()
        exact = problem.solve_exactly()
        assert greedy.unfairness <= exact.unfairness + 1e-9

    def test_solve_most_vs_least(self, table1_dataset, table1_function):
        problem = FairnessProblem(
            dataset=table1_dataset,
            function=table1_function,
            attributes=("Gender", "Language"),
        )
        most = problem.solve_exactly()
        least = problem.with_objective(Objective.LEAST_UNFAIR).solve_exactly()
        assert least.unfairness <= most.unfairness

    def test_solve_respects_filter(self, table1_dataset, table1_function):
        problem = FairnessProblem(
            dataset=table1_dataset,
            function=table1_function,
            attributes=("Gender", "Country"),
            row_filter=Equals("Language", "English"),
        )
        result = problem.solve()
        assert sum(result.partitioning.sizes) == 7
