"""Concurrency stress: one FairnessService hammered from many threads.

The serving stack multiplexes every transport — HTTP handler threads, the
batch executor's pool, the shard router's fan-out — onto one
:class:`~repro.service.service.FairnessService`.  Its result cache
(single-flight ``get_or_compute``) and score-store pool are the two shared
mutable structures; a race in either would surface as a divergent payload,
a double-computed store, or a crash.  These tests drive 16 threads of mixed
quantify / sweep / breakdown / batch traffic and require byte-identical
results versus serial execution on a fresh, identically-populated service.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.formulations import MOST_UNFAIR_AVG_EMD
from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.experiments.workloads import crowdsourcing_marketplace, synthetic_population
from repro.scoring.linear import LinearScoringFunction
from repro.service import (
    AuditRequest,
    BatchExecutor,
    BreakdownRequest,
    CompareRequest,
    FairnessService,
    QuantifyRequest,
    SweepRequest,
)

THREADS = 16


def build_service() -> FairnessService:
    service = FairnessService()
    service.register_dataset(load_example_table1(), name="table1")
    service.register_dataset(synthetic_population(size=120, seed=3), name="synthetic-120")
    service.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
    service.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    )
    service.register_marketplace(crowdsourcing_marketplace(size=40, seed=7))
    service.register_formulation(MOST_UNFAIR_AVG_EMD)
    return service


def mixed_requests():
    """A mixed workload hitting shared stores from several request kinds."""
    return [
        QuantifyRequest(dataset="table1", function="table1-f"),
        QuantifyRequest(dataset="table1", function="balanced", bins=7),
        QuantifyRequest(dataset="synthetic-120", function="balanced",
                        min_partition_size=5),
        BreakdownRequest(dataset="table1", function="table1-f"),
        BreakdownRequest(dataset="synthetic-120", function="balanced"),
        SweepRequest(dataset="table1", function="table1-f", steps=3),
        SweepRequest(dataset="synthetic-120", function="balanced", steps=3,
                     min_partition_size=5),
        CompareRequest(dataset="table1", functions=("table1-f", "balanced")),
        AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=5),
    ]


class TestServiceUnderThreadStress:
    def test_16_threads_of_mixed_traffic_match_serial_results(self):
        requests = mixed_requests()
        # The serial reference runs on its *own* service: any cross-thread
        # contamination of cache or stores in the stressed service shows up
        # as a canonical() mismatch.
        reference_service = build_service()
        reference = {
            request: reference_service.execute(request).canonical()
            for request in requests
        }

        service = build_service()
        errors: list = []
        mismatches: list = []
        barrier = threading.Barrier(THREADS)

        def worker(seed: int) -> None:
            generator = random.Random(seed)
            plan = requests * 3
            generator.shuffle(plan)
            barrier.wait()  # maximise simultaneous first-computation races
            for request in plan:
                try:
                    result = service.execute(request)
                except Exception as error:  # noqa: BLE001 - recorded for the assert
                    errors.append(error)
                    return
                if result.error is not None:
                    errors.append(result.error)
                    return
                if result.canonical() != reference[request]:
                    mismatches.append(request.kind)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, f"threaded execution failed: {errors[:3]}"
        assert not mismatches, f"divergent payloads under contention: {mismatches}"

        # Single-flight caching must hold under contention: every (dataset,
        # function) pair materialises exactly one store, and the cache never
        # computed one key twice (misses == distinct keys it ever computed).
        stats = service.cache_stats
        assert stats.hits + stats.misses >= THREADS * len(requests) * 3
        assert stats.misses <= len(requests) * 2  # request + kernel layer keys

    def test_batch_executor_against_concurrent_raw_traffic(self):
        """Batches and raw executes share the cache without deadlock or drift."""
        service = build_service()
        requests = mixed_requests()
        reference_service = build_service()
        reference = {
            request: reference_service.execute(request).canonical()
            for request in requests
        }
        executor = BatchExecutor(service, max_workers=8)

        def run_batch(round_index: int):
            return [result.canonical() for result in executor.run(requests)]

        def run_raw(round_index: int):
            generator = random.Random(round_index)
            plan = list(requests)
            generator.shuffle(plan)
            return [
                (request, service.execute(request).canonical()) for request in plan
            ]

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            batch_futures = [pool.submit(run_batch, index) for index in range(8)]
            raw_futures = [pool.submit(run_raw, index) for index in range(8)]
            batch_rounds = [future.result(timeout=300) for future in batch_futures]
            raw_rounds = [future.result(timeout=300) for future in raw_futures]

        expected_batch = [reference[request] for request in requests]
        for round_result in batch_rounds:
            assert round_result == expected_batch
        for round_result in raw_rounds:
            for request, canonical in round_result:
                assert canonical == reference[request], request.kind

    def test_store_pool_shares_one_scoring_pass_per_pair_under_contention(self):
        """N threads asking for the same store race to a single scoring pass."""
        service = build_service()
        dataset = service.dataset("table1")
        function = service.function("table1-f")
        barrier = threading.Barrier(THREADS)
        stores = []
        lock = threading.Lock()

        def fetch() -> None:
            barrier.wait()
            store = service.score_store(dataset, function)
            vector = store.vector()
            with lock:
                stores.append((store, vector.tobytes()))

        threads = [threading.Thread(target=fetch) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(stores) == THREADS
        first_store, first_vector = stores[0]
        assert all(store is first_store for store, _ in stores)
        assert all(vector == first_vector for _, vector in stores)
        assert first_store.stats.scoring_passes == 1
