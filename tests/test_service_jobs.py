"""Wire protocol: lossless JSON round-trips of every request/response type."""

from __future__ import annotations

import json

import pytest

from repro.core.formulations import Aggregation, Objective
from repro.errors import ServiceError
from repro.service.jobs import (
    AuditRequest,
    CompareRequest,
    QuantifyRequest,
    ServiceResult,
    request_from_json,
)


class TestQuantifyRequest:
    def test_round_trip_defaults(self):
        request = QuantifyRequest(dataset="d", function="f")
        assert QuantifyRequest.from_json(request.to_json()) == request

    def test_round_trip_every_field(self):
        request = QuantifyRequest(
            dataset="d",
            function="f",
            objective="least_unfair",
            aggregation="variance",
            distance="emd",
            bins=9,
            attributes=("Gender", "Language"),
            max_depth=3,
            min_partition_size=4,
            use_ranks_only=True,
        )
        payload = json.loads(json.dumps(request.to_json()))  # via real JSON text
        assert QuantifyRequest.from_json(payload) == request

    def test_formulation_materialisation(self):
        request = QuantifyRequest(
            dataset="d", function="f", objective="least_unfair", aggregation="maximum"
        )
        formulation = request.formulation()
        assert formulation.objective is Objective.LEAST_UNFAIR
        assert formulation.aggregation is Aggregation.MAXIMUM

    def test_requires_names(self):
        with pytest.raises(ServiceError):
            QuantifyRequest(dataset="", function="f")
        with pytest.raises(ServiceError):
            QuantifyRequest(dataset="d", function="")

    def test_attribute_sequences_normalise_to_tuples(self):
        request = QuantifyRequest(dataset="d", function="f", attributes=["Gender"])
        assert request.attributes == ("Gender",)


class TestAuditRequest:
    def test_round_trip(self):
        request = AuditRequest(
            marketplace="m",
            job="Content writing",
            attributes=("Gender",),
            min_partition_size=5,
            bins=7,
        )
        payload = json.loads(json.dumps(request.to_json()))
        assert AuditRequest.from_json(payload) == request

    def test_whole_marketplace_job_is_none(self):
        request = AuditRequest(marketplace="m")
        assert request.job is None
        assert AuditRequest.from_json(request.to_json()) == request

    def test_requires_marketplace(self):
        with pytest.raises(ServiceError):
            AuditRequest(marketplace="")


class TestCompareRequest:
    def test_round_trip(self):
        request = CompareRequest(
            dataset="d",
            functions=("f1", "f2", "f3"),
            objective="most_unfair",
            max_depth=2,
            min_partition_size=3,
        )
        payload = json.loads(json.dumps(request.to_json()))
        assert CompareRequest.from_json(payload) == request

    def test_requires_at_least_one_function(self):
        with pytest.raises(ServiceError):
            CompareRequest(dataset="d", functions=())

    def test_function_lists_normalise_to_tuples(self):
        request = CompareRequest(dataset="d", functions=["f1", "f2"])
        assert request.functions == ("f1", "f2")


class TestDispatch:
    def test_dispatch_round_trips_all_kinds(self):
        requests = [
            QuantifyRequest(dataset="d", function="f"),
            AuditRequest(marketplace="m"),
            CompareRequest(dataset="d", functions=("f",)),
        ]
        for request in requests:
            rebuilt = request_from_json(json.loads(json.dumps(request.to_json())))
            assert rebuilt == request
            assert type(rebuilt) is type(request)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown request kind"):
            request_from_json({"kind": "frobnicate"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ServiceError, match="'kind'"):
            request_from_json({"dataset": "d"})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ServiceError, match="missing required field"):
            request_from_json({"kind": "quantify", "dataset": "d"})


class TestServiceResult:
    def test_round_trip(self):
        result = ServiceResult(
            kind="quantify",
            key="abc123",
            payload={"unfairness": 0.25, "partitions": [{"label": "ALL", "size": 10}]},
            cached=True,
            elapsed_s=0.125,
        )
        rebuilt = ServiceResult.from_json(json.loads(json.dumps(result.to_json())))
        assert rebuilt == result

    def test_canonical_ignores_serving_metadata(self):
        cold = ServiceResult(kind="quantify", key="k", payload={"a": 1}, cached=False,
                             elapsed_s=1.5)
        warm = ServiceResult(kind="quantify", key="k", payload={"a": 1}, cached=True,
                             elapsed_s=0.001)
        assert cold.canonical() == warm.canonical()

    def test_canonical_is_deterministic_json(self):
        result = ServiceResult(kind="x", key="k", payload={"b": 2, "a": 1})
        assert result.canonical() == json.dumps(
            {"kind": "x", "key": "k", "payload": {"b": 2, "a": 1}}, sort_keys=True
        )
