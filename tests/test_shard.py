"""Tests for repro.shard: routing, worker pool lifecycle, router parity."""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.errors import ServiceError
from repro.scoring.linear import LinearScoringFunction
from repro.server import HTTPFairnessClient
from repro.service import (
    AuditRequest,
    FairnessClient,
    FairnessService,
    QuantifyRequest,
)
from repro.shard import (
    ShardRouter,
    WorkerPool,
    request_references,
    routing_key,
    worker_slot,
)
from repro.snapshot import snapshot_fingerprints


def build_service() -> FairnessService:
    from repro.experiments.workloads import crowdsourcing_marketplace

    service = FairnessService()
    service.register_dataset(load_example_table1(), name="table1")
    service.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
    service.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    )
    service.register_marketplace(crowdsourcing_marketplace(size=40, seed=7))
    return service


class TestRouting:
    def test_references_cover_every_wire_field(self):
        payload = {
            "dataset": "d",
            "function": "f",
            "functions": ["f1", "f2"],
            "marketplace": "m",
            "marketplaces": ["m1"],
            "job": "ignored",
            "kind": "ignored",
        }
        assert request_references(payload) == (
            ("dataset", "d"),
            ("function", "f"),
            ("function", "f1"),
            ("function", "f2"),
            ("marketplace", "m"),
            ("marketplace", "m1"),
        )

    def test_references_tolerate_malformed_payloads(self):
        assert request_references({}) == ()
        assert request_references({"dataset": 7, "functions": "oops"}) == ()
        assert request_references({"functions": [1, "ok", None]}) == (
            ("function", "ok"),
        )

    def test_key_is_deterministic_and_order_insensitive(self):
        first = routing_key((("dataset", "d"), ("function", "f")))
        second = routing_key((("dataset", "d"), ("function", "f")))
        assert first == second
        assert routing_key(()) == ""

    def test_same_pair_same_slot_across_request_kinds(self):
        quantify = request_references({"dataset": "d", "function": "f"})
        breakdown = request_references(
            {"dataset": "d", "function": "f", "min_partition_size": 5}
        )
        assert worker_slot(routing_key(quantify), 5) == worker_slot(
            routing_key(breakdown), 5
        )

    def test_fingerprints_override_names(self):
        references = (("dataset", "d"),)
        by_name = routing_key(references)
        by_fingerprint = routing_key(references, {("dataset", "d"): "abc123"})
        assert by_name != by_fingerprint
        # Renaming content-identical data keeps the key (same fingerprint).
        renamed = routing_key(
            (("dataset", "other"),), {("dataset", "other"): "abc123"}
        )
        assert renamed == by_fingerprint

    def test_slots_are_stable_and_in_range(self):
        keys = [routing_key((("dataset", f"d{i}"),)) for i in range(64)]
        slots = [worker_slot(key, 3) for key in keys]
        assert slots == [worker_slot(key, 3) for key in keys]
        assert set(slots) <= {0, 1, 2}
        assert len(set(slots)) > 1  # 64 distinct datasets spread over workers

    def test_single_worker_and_empty_key_route_to_slot_zero(self):
        assert worker_slot(routing_key((("dataset", "d"),)), 1) == 0
        assert worker_slot("", 7) == 0
        with pytest.raises(ValueError):
            worker_slot("abc", 0)


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = tmp_path_factory.mktemp("shard") / "deployment.json"
    build_service().catalog.save(path)
    return path


@pytest.fixture(scope="module")
def fleet(snapshot):
    """A started 2-worker pool + router + client (shared across the module)."""
    pool = WorkerPool(snapshot, 2, backoff_base_s=0.1, backoff_max_s=1.0)
    pool.start()
    router = ShardRouter(pool, fingerprints=snapshot_fingerprints(snapshot))
    router.serve_in_background()
    try:
        yield pool, router, HTTPFairnessClient(router.base_url, timeout=120.0)
    finally:
        router.shutdown()
        router.server_close()
        pool.stop()


@pytest.fixture(scope="module")
def reference(snapshot):
    from repro.catalog import Catalog

    return FairnessClient(FairnessService(catalog=Catalog.load(snapshot)))


def scenario_calls(client):
    return [
        ("quantify", lambda: client.quantify("table1", "table1-f")),
        ("audit", lambda: client.audit("crowdsourcing-sim", min_partition_size=5)),
        ("compare", lambda: client.compare("table1", ["table1-f", "balanced"])),
        ("breakdown", lambda: client.breakdown("table1", "table1-f")),
        ("sweep", lambda: client.sweep("table1", "table1-f", steps=3)),
        (
            "end_user",
            lambda: client.end_user(
                {"Gender": "Female"}, ["crowdsourcing-sim"], "Content writing"
            ),
        ),
        (
            "job_owner",
            lambda: client.job_owner(
                "crowdsourcing-sim", "Content writing", sweep_steps=3
            ),
        ),
    ]


class TestWorkerPool:
    def test_rejects_bad_configuration(self, snapshot, tmp_path):
        with pytest.raises(ServiceError, match="at least 1 worker"):
            WorkerPool(snapshot, 0)
        with pytest.raises(ServiceError, match="does not exist"):
            WorkerPool(tmp_path / "missing.json", 2)

    def test_boots_and_reports_workers(self, fleet):
        pool, _, _ = fleet
        described = pool.describe()
        assert described["workers"] == 2
        assert described["alive"] == 2
        ports = {entry["port"] for entry in described["slots"]}
        assert len(ports) == 2  # distinct ephemeral ports
        for slot in (0, 1):
            handle = pool.peek(slot)
            assert handle is not None and handle.alive

    def test_workers_answer_health_directly(self, fleet):
        pool, _, _ = fleet
        for slot in range(pool.size):
            handle = pool.peek(slot)
            with urllib.request.urlopen(
                f"{handle.base_url}/v2/health", timeout=10
            ) as response:
                assert json.loads(response.read())["status"] == "ok"

    def test_cannot_start_twice(self, fleet):
        pool, _, _ = fleet
        with pytest.raises(ServiceError, match="already been started"):
            pool.start()

    def test_boot_failure_reports_the_worker_output(self, snapshot):
        crashing = WorkerPool(
            snapshot, 2, boot_timeout_s=30,
            command=lambda snap, host: [
                sys.executable, "-c", "print('worker exploded'); raise SystemExit(3)",
            ],
        )
        with pytest.raises(ServiceError, match="exited with code 3"):
            crashing.start()

    def test_boot_timeout_kills_the_silent_worker(self, snapshot):
        silent = WorkerPool(
            snapshot, 1, boot_timeout_s=1.0,
            command=lambda snap, host: [
                sys.executable, "-c", "import time; time.sleep(60)",
            ],
        )
        with pytest.raises(ServiceError, match="no bound port announced"):
            silent.start()


class TestShardRouterParity:
    def test_every_kind_is_byte_identical_to_in_process(self, fleet, reference):
        _, _, client = fleet
        for (kind, sharded), (_, in_process) in zip(
            scenario_calls(client), scenario_calls(reference)
        ):
            over_router = sharded()
            local = in_process()
            assert over_router.kind == kind
            assert over_router.canonical() == local.canonical(), kind

    def test_batch_is_split_and_reassembled_in_order(self, fleet, reference):
        _, _, client = fleet
        requests = [
            QuantifyRequest(dataset="table1", function="table1-f"),
            AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=5),
            QuantifyRequest(dataset="table1", function="balanced"),
            QuantifyRequest(dataset="table1", function="table1-f"),
        ]
        sharded = client.batch(requests)
        serial = [reference.service.execute(request) for request in requests]
        assert [result.kind for result in sharded] == [r.kind for r in serial]
        for over_router, local in zip(sharded, serial):
            assert over_router.canonical() == local.canonical()

    def test_batch_keeps_error_and_malformed_slots_in_place(self, fleet):
        _, router, _ = fleet
        body = json.dumps(
            {
                "requests": [
                    {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
                    {"kind": "quantify", "dataset": "missing", "function": "table1-f"},
                    {"kind": "frobnicate"},
                ]
            }
        ).encode()
        request = urllib.request.Request(
            f"{router.base_url}/v2/batch", data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            payload = json.loads(response.read())
        results = payload["results"]
        assert [result["error"] is None for result in results] == [True, False, False]
        assert results[1]["error"]["code"] == "service"
        assert "unknown request kind" in results[2]["error"]["message"]

    def test_requests_for_same_pair_stick_to_one_worker(self, fleet):
        pool, router, client = fleet
        slot = worker_slot(
            routing_key(
                request_references({"dataset": "table1", "function": "table1-f"}),
                router.fingerprints,
            ),
            pool.size,
        )
        handle = pool.peek(slot)
        before = self._worker_requests(handle)
        client.quantify("table1", "table1-f")
        client.breakdown("table1", "table1-f")
        assert self._worker_requests(handle) >= before + 2

    @staticmethod
    def _worker_requests(handle) -> int:
        with urllib.request.urlopen(f"{handle.base_url}/v2/health", timeout=10) as r:
            return json.loads(r.read())["requests_served"]

    def test_health_aggregates_the_fleet(self, fleet):
        _, _, client = fleet
        health = client.health()
        assert health["status"] == "ok"
        assert health["role"] == "shard-router"
        assert health["workers"]["workers"] == 2
        assert health["workers"]["alive"] == 2
        assert len(health["workers"]["health"]) == 2
        for entry in health["workers"]["health"]:
            assert entry["alive"] is True
            assert set(entry["cache"]) >= {"hits", "misses"}
        assert health["routing"]["strategy"] == "resource-fingerprint"
        assert health["catalog"]["dataset"] >= 1  # proxied from a worker

    def test_catalog_is_proxied_from_a_worker(self, fleet, reference):
        _, _, client = fleet
        listing = client.catalog()
        names = {entry["name"] for entry in listing["resources"]}
        assert {"table1", "table1-f", "crowdsourcing-sim"} <= names

    def test_error_status_mapping_matches_single_process(self, fleet):
        _, router, _ = fleet

        def raw(path, method="POST", body=b"{}"):
            request = urllib.request.Request(
                f"{router.base_url}{path}", data=body, method=method
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.status
            except urllib.error.HTTPError as error:
                error.read()
                return error.code

        assert raw("/v2/nonsense") == 404
        assert raw("/v2/quantify", method="GET", body=None) == 405
        assert raw("/v2/health", method="POST") == 405
        assert raw("/v2/quantify", body=b"{not json") == 400
        body = json.dumps({"dataset": "missing", "function": "table1-f"}).encode()
        assert raw("/v2/quantify", body=body) == 422


class TestFailureRecovery:
    def test_killed_worker_loses_no_request_and_restarts(self, fleet, reference):
        pool, router, client = fleet
        expected = {
            "table1-f": reference.quantify("table1", "table1-f").canonical(),
            "balanced": reference.quantify("table1", "balanced").canonical(),
        }
        slot = worker_slot(
            routing_key(
                request_references({"dataset": "table1", "function": "table1-f"}),
                router.fingerprints,
            ),
            pool.size,
        )
        victim = pool.peek(slot)
        restarts_before = pool.restarts(slot)

        def fire(index: int) -> bool:
            if index == 8:  # kill the sticky worker mid-load
                victim.process.kill()
            function = "table1-f" if index % 2 == 0 else "balanced"
            result = client.quantify("table1", function)
            return result.ok and result.canonical() == expected[function]

        with ThreadPoolExecutor(max_workers=8) as load:
            outcomes = list(load.map(fire, range(32)))
        assert all(outcomes), "a request was lost or diverged during the kill"

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if pool.restarts(slot) > restarts_before and pool.alive_count == pool.size:
                break
            time.sleep(0.2)
        assert pool.restarts(slot) > restarts_before, "slot was never restarted"
        assert pool.alive_count == pool.size

        # The crash is accounted with its reason, in the pool and in the
        # aggregated health payload.
        assert pool.restart_reasons(slot)["crash"] >= 1
        health = client.health()
        assert health["status"] == "ok"
        slot_health = health["workers"]["health"][slot]
        assert slot_health["restart_reasons"]["crash"] >= 1

        # The restarted worker serves the same snapshot: parity holds again.
        assert client.quantify("table1", "table1-f").canonical() == expected["table1-f"]

    def test_stale_handle_reports_are_ignored(self, fleet):
        pool, _, _ = fleet
        current = pool.peek(0)
        restarts = pool.restarts(0)
        pool.report_failure(current)  # alive process: not a lifecycle event
        assert pool.peek(0) is current
        assert pool.restarts(0) == restarts

    def test_stop_terminates_a_replacement_worker_mid_boot(self, snapshot):
        """stop() during a restart's boot must not orphan the new process."""
        pool = WorkerPool(snapshot, 1, backoff_base_s=0.01, backoff_max_s=0.01)
        pool.start()
        try:
            victim = pool.peek(0)
            victim.process.kill()
            victim.process.wait(timeout=10)
            pool.candidates(0)  # reap: schedules the backoff restart
            # Catch the restart thread inside _boot_worker (the replacement
            # process is spawned but not yet slotted).
            deadline = time.monotonic() + 15
            replacement = None
            while time.monotonic() < deadline:
                with pool._lock:
                    if pool._booting:
                        replacement = next(iter(pool._booting))
                        break
                if pool.restarts(0) > 0:  # boot already finished: use the slot
                    replacement = pool.peek(0).process
                    break
                time.sleep(0.005)
            assert replacement is not None, "restart never spawned a process"
        finally:
            pool.stop()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and replacement.poll() is None:
            time.sleep(0.05)
        assert replacement.poll() is not None, "stop() orphaned the mid-boot worker"


class TestShutdownUnderRetry:
    def test_server_close_interrupts_the_retry_window(self, snapshot):
        """Regression: retry pacing used a bare sleep, so closing the router
        while a request swept a dead fleet stalled the drain for the rest of
        the retry window.  The stop-aware pause must wake immediately."""
        # One worker, huge restart backoff: once killed, the fleet stays
        # empty and a forward paces inside its (long) retry window.
        pool = WorkerPool(snapshot, 1, backoff_base_s=60.0, backoff_max_s=60.0)
        pool.start()
        router = ShardRouter(
            pool,
            fingerprints=snapshot_fingerprints(snapshot),
            retry_window_s=60.0,
        )
        router.serve_in_background()
        statuses = []
        try:
            victim = pool.peek(0)
            victim.process.kill()
            victim.process.wait(timeout=10)

            def fire():
                request = urllib.request.Request(
                    f"{router.base_url}/v2/quantify",
                    data=json.dumps(
                        {"dataset": "table1", "function": "table1-f"}
                    ).encode(),
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(request, timeout=120) as response:
                        statuses.append(response.status)
                except urllib.error.HTTPError as error:
                    error.read()
                    statuses.append(error.code)

            requester = threading.Thread(target=fire)
            requester.start()
            time.sleep(1.0)  # let the request enter the retry pacing loop
            closed_in = time.monotonic()
        finally:
            router.shutdown()
            router.server_close()  # drains: joins the in-flight handler
            pool.stop()
        elapsed = time.monotonic() - closed_in
        assert elapsed < 10, f"server_close() stalled {elapsed:.1f}s behind the retry window"
        requester.join(timeout=10)
        assert statuses == [503], "the paced request must answer 503, not hang"


class TestWarmRestart:
    """--warm-dir: a restarted fleet serves hot, byte-identically."""

    def _boot(self, snapshot, warm_root, size=2):
        pool = WorkerPool(
            snapshot, size, backoff_base_s=0.1, backoff_max_s=1.0,
            warm_dir=warm_root,
        )
        pool.start()
        router = ShardRouter(pool, fingerprints=snapshot_fingerprints(snapshot))
        router.serve_in_background()
        return pool, router, HTTPFairnessClient(router.base_url, timeout=120.0)

    @staticmethod
    def _stop(pool, router):
        router.shutdown()
        router.server_close()
        pool.stop()

    def test_restarted_fleet_serves_byte_identical_and_warm(
        self, snapshot, tmp_path, reference
    ):
        warm_root = tmp_path / "warm"
        expected = {
            "table1-f": reference.quantify("table1", "table1-f").canonical(),
            "balanced": reference.quantify("table1", "balanced").canonical(),
        }
        pool, router, client = self._boot(snapshot, warm_root)
        try:
            for function, canonical in expected.items():
                assert client.quantify("table1", function).canonical() == canonical
        finally:
            self._stop(pool, router)
        assert list(warm_root.glob("slot-*/manifest.json")), (
            "graceful shutdown saved no warm bundle"
        )

        pool, router, client = self._boot(snapshot, warm_root)
        try:
            # Before any traffic: the reloaded pool already holds stores,
            # and not a single scoring pass has run.
            pools = [
                entry["store_pool"]
                for entry in client.health()["workers"]["health"]
            ]
            assert sum(stats["stores"] for stats in pools) >= 1
            assert sum(stats["scoring_passes"] for stats in pools) == 0
            for function, canonical in expected.items():
                result = client.quantify("table1", function)
                assert result.canonical() == canonical
                assert result.cached, "warm results must serve from the cache"
            # Serving those requests still required no re-scoring pass.
            pools = [
                entry["store_pool"]
                for entry in client.health()["workers"]["health"]
            ]
            assert sum(stats["scoring_passes"] for stats in pools) == 0
        finally:
            self._stop(pool, router)

    def test_crash_restarted_slot_reloads_its_warm_bundle(
        self, snapshot, tmp_path, reference
    ):
        warm_root = tmp_path / "warm"
        expected = reference.quantify("table1", "table1-f").canonical()
        pool, router, client = self._boot(snapshot, warm_root)
        try:
            assert client.quantify("table1", "table1-f").canonical() == expected
            slot = worker_slot(
                routing_key(
                    request_references(
                        {"dataset": "table1", "function": "table1-f"}
                    ),
                    router.fingerprints,
                ),
                pool.size,
            )
            victim = pool.peek(slot)
            # SIGTERM is graceful: the worker drains and saves its bundle...
            victim.process.send_signal(signal.SIGTERM)
            victim.process.wait(timeout=30)
            # ...then the pool heals the slot with a replacement booted from
            # the same argv — including its per-slot --warm-dir.
            deadline = time.monotonic() + 30
            handle = None
            while time.monotonic() < deadline:
                pool.candidates(slot)  # reap + schedule the backoff restart
                handle = pool.peek(slot)
                if handle is not None and handle is not victim:
                    break
                time.sleep(0.2)
            assert handle is not None and handle is not victim, "slot never healed"
            result = client.quantify("table1", "table1-f")
            assert result.canonical() == expected
            assert result.cached, "the replacement must reload the result cache"
            # The replacement's own health proves the warm reload: stores
            # are back without a scoring pass.
            with urllib.request.urlopen(
                f"{handle.base_url}/v2/health", timeout=10
            ) as response:
                payload = json.loads(response.read())
            assert payload["store_pool"]["stores"] >= 1
            assert payload["store_pool"]["scoring_passes"] == 0
        finally:
            self._stop(pool, router)


class TestTracePropagation:
    """One trace id must span client -> router -> worker, observably."""

    def test_trace_id_spans_a_three_worker_fleet(self, snapshot):
        from io import StringIO

        from repro.obs.log import ObsLogger
        from repro.obs.trace import Trace, activate

        pool = WorkerPool(
            snapshot, 3, backoff_base_s=0.1, backoff_max_s=1.0,
            worker_arguments=["--verbose"],
        )
        pool.start()
        router = ShardRouter(pool, fingerprints=snapshot_fingerprints(snapshot))
        captured = StringIO()
        router.obs = ObsLogger(captured, verbose=True)
        router.serve_in_background()
        try:
            client = HTTPFairnessClient(router.base_url, timeout=120.0)
            pinned = Trace("trace-propagation-e2e")
            with activate(pinned):
                result = client.quantify("table1", "table1-f")

            # 1. The envelope's timing breakdown carries the pinned id plus
            #    worker-side phases and the router's forwarding time.
            timings = result.timings
            assert timings["trace_id"] == "trace-propagation-e2e"
            assert "total_ms" in timings
            assert "route_ms" in timings

            # 2. The router logged structured events under the same id.
            deadline = time.monotonic() + 10
            router_events = []
            while time.monotonic() < deadline:
                router_events = [
                    json.loads(line)
                    for line in captured.getvalue().splitlines()
                ]
                if any(
                    event.get("trace_id") == "trace-propagation-e2e"
                    for event in router_events
                ):
                    break
                time.sleep(0.05)
            traced = [
                event for event in router_events
                if event.get("trace_id") == "trace-propagation-e2e"
            ]
            assert traced, router_events
            assert any(event["event"] == "route" for event in traced)

            # 3. The worker that served it logged the id too (its stderr is
            #    merged into the stdout tail the pool pumps), attributed to
            #    its slot via FAIRANK_WORKER_SLOT.
            worker_line = None
            deadline = time.monotonic() + 10
            while worker_line is None and time.monotonic() < deadline:
                for slot in range(pool.size):
                    handle = pool.peek(slot)
                    if handle is None:
                        continue
                    for line in list(handle.pump.tail):
                        if (
                            "trace-propagation-e2e" in line
                            and '"event":"http_request"' in line
                        ):
                            worker_line = json.loads(line)
                if worker_line is None:
                    time.sleep(0.05)
            assert worker_line is not None
            assert worker_line["trace_id"] == "trace-propagation-e2e"
            assert worker_line["path"] == "/v2/quantify"
            assert worker_line["worker"] in {"0", "1", "2"}
        finally:
            router.shutdown()
            router.server_close()
            pool.stop()

    def test_router_metrics_aggregate_the_fleet(self, fleet):
        from repro.obs.metrics import parse_prometheus

        pool, router, client = fleet
        client.quantify("table1", "table1-f")
        page = parse_prometheus(router.metrics_text())
        # Worker-side service counters and router-side ingress counters
        # land on one page without colliding.
        executed = page.sum_by_label("fairank_requests_total", "kind")
        assert executed.get("quantify", 0) >= 1
        assert page.value("fairank_router_workers_total") == pool.size
        assert page.value("fairank_router_workers_alive") >= 1
        assert page.types["fairank_request_seconds"] == "histogram"


REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def boot_serve(arguments, timeout_s=90):
    """Start `fairank serve` as a subprocess and wait for its bound port."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *arguments],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ, PYTHONPATH=REPO_SRC),
    )
    deadline = time.monotonic() + timeout_s
    assert process.stdout is not None
    for line in process.stdout:
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return process, int(match.group(1))
        if time.monotonic() > deadline:
            break
    process.kill()
    raise AssertionError("server never announced its port")


class TestServeCLISharded:
    def test_sharded_serve_answers_and_shuts_down_cleanly(self, snapshot):
        process, port = boot_serve(
            ["--workers", "2", "--catalog", str(snapshot), "--port", "0"]
        )
        try:
            client = HTTPFairnessClient(f"http://127.0.0.1:{port}", timeout=120)
            health = client.health()
            assert health["status"] == "ok"
            assert health["workers"]["workers"] == 2
            result = client.quantify("table1", "table1-f")
            assert result.ok and result.payload["dataset"] == "table1"
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                assert process.wait(timeout=30) == 0
            except subprocess.TimeoutExpired:
                process.kill()
                raise AssertionError("sharded serve did not exit after SIGTERM")
        assert "shutting down" in process.stdout.read()

    def test_workers_flag_must_be_positive(self, capsys):
        from repro.cli import main

        assert main(["serve", "--workers", "0", "--port", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err


class TestServeCLIGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self):
        process, port = boot_serve(["--port", "0", "--market-size", "30"])
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v2/health", timeout=10
            ) as response:
                assert json.loads(response.read())["status"] == "ok"
        finally:
            process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        output = process.stdout.read()
        assert "shutting down" in output

    def test_sigint_is_equivalent(self):
        process, port = boot_serve(["--port", "0", "--market-size", "30"])
        # The listening socket must be released promptly: a second bind of the
        # same port succeeding is the observable proof of a clean close.
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 0
        assert "shutting down" in process.stdout.read()
        from repro.server import FairnessHTTPServer

        with FairnessHTTPServer(FairnessService(), port=port) as rebound:
            assert rebound.port == port
