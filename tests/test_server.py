"""Tests for the HTTP front end (repro.server): endpoints, parity, errors."""

import json
import os
import re
import subprocess
import sys
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.formulations import MOST_UNFAIR_AVG_EMD
from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.errors import ServiceError
from repro.experiments.workloads import crowdsourcing_marketplace
from repro.scoring.linear import LinearScoringFunction
from repro.server import REQUEST_ENDPOINTS, FairnessHTTPServer, HTTPFairnessClient
from repro.service import (
    AuditRequest,
    FairnessClient,
    FairnessService,
    QuantifyRequest,
)


def build_service() -> FairnessService:
    service = FairnessService()
    service.register_dataset(load_example_table1(), name="table1")
    service.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
    service.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    )
    service.register_marketplace(crowdsourcing_marketplace(size=60, seed=7))
    service.register_formulation(MOST_UNFAIR_AVG_EMD)
    return service


@pytest.fixture(scope="module")
def server():
    with FairnessHTTPServer(build_service(), port=0) as running:
        running.serve_in_background()
        yield running


@pytest.fixture(scope="module")
def client(server):
    return HTTPFairnessClient(server.base_url)


def raw_call(server, path, method="GET", body=None, headers=None):
    """A raw HTTP exchange (status, parsed JSON) bypassing the typed client."""
    request = urllib.request.Request(
        f"{server.base_url}{path}",
        data=None if body is None else body,
        headers=headers or {},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestReadEndpoints:
    def test_health_reports_liveness_and_stats(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == 2
        assert health["uptime_s"] >= 0
        assert set(health["cache"]) >= {"hits", "misses", "entries"}
        assert set(health["store_pool"]) >= {"stores", "scoring_passes"}
        assert health["catalog"]["dataset"] >= 2
        assert set(REQUEST_ENDPOINTS) <= set(health["endpoints"])

    def test_health_counts_served_requests(self, server, client):
        before = client.health()["requests_served"]
        client.health()
        assert client.health()["requests_served"] >= before + 2

    def test_catalog_lists_the_registry(self, client):
        listing = client.catalog()
        names = {entry["name"] for entry in listing["resources"]}
        assert {"table1", "table1-f", "crowdsourcing-sim"} <= names
        assert listing["counts"]["marketplace"] == 1

    def test_trailing_slash_is_tolerated(self, server):
        status, payload = raw_call(server, "/v2/health/")
        assert status == 200 and payload["status"] == "ok"


class TestRequestEndpoints:
    def test_every_kind_is_byte_identical_to_in_process(self, server, client):
        in_process = FairnessClient(server.service)
        calls = [
            ("quantify", lambda c: c.quantify("table1", "table1-f")),
            ("audit", lambda c: c.audit("crowdsourcing-sim", min_partition_size=5)),
            ("compare", lambda c: c.compare("table1", ["table1-f", "balanced"])),
            ("breakdown", lambda c: c.breakdown("table1", "table1-f")),
            ("sweep", lambda c: c.sweep("table1", "table1-f", steps=3)),
            (
                "end_user",
                lambda c: c.end_user(
                    {"Gender": "Female"}, ["crowdsourcing-sim"], "Content writing"
                ),
            ),
            (
                "job_owner",
                lambda c: c.job_owner(
                    "crowdsourcing-sim", "Content writing", sweep_steps=3
                ),
            ),
        ]
        for kind, call in calls:
            over_http = call(client)
            local = call(in_process)
            assert over_http.kind == kind
            assert over_http.canonical() == local.canonical(), kind

    def test_http_traffic_shares_the_service_cache(self, server, client):
        request = dict(dataset="table1", function="table1-f", bins=7)
        client.quantify(**request)
        assert client.quantify(**request).cached is True
        # ... and the same request in-process is a hit too: one cache.
        assert server.service.execute(
            QuantifyRequest(dataset="table1", function="table1-f", bins=7)
        ).cached is True

    def test_kind_field_in_body_is_optional(self, server):
        body = json.dumps({"dataset": "table1", "function": "table1-f"}).encode()
        status, payload = raw_call(
            server, "/v2/quantify", method="POST", body=body,
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        assert payload["kind"] == "quantify"
        assert payload["error"] is None

    def test_concurrent_requests_are_served(self, client):
        def fire(bins):
            return client.quantify("table1", "table1-f", bins=bins)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(fire, [2, 3, 4, 5] * 4))
        assert len(results) == 16
        assert all(result.ok for result in results)
        assert len({result.key for result in results}) == 4


class TestErrorMapping:
    def test_unknown_resource_is_an_error_envelope_with_422(self, server):
        body = json.dumps({"dataset": "missing", "function": "table1-f"}).encode()
        status, payload = raw_call(server, "/v2/quantify", method="POST", body=body)
        assert status == 422
        assert payload["error"]["code"] == "service"
        assert "missing" in payload["error"]["message"]

    def test_client_raises_or_returns_the_envelope(self, server):
        raising = HTTPFairnessClient(server.base_url)
        with pytest.raises(ServiceError, match="unknown dataset"):
            raising.quantify("missing", "table1-f")
        inspecting = HTTPFairnessClient(server.base_url, raise_errors=False)
        envelope = inspecting.quantify("missing", "table1-f")
        assert not envelope.ok
        assert envelope.error["code"] == "service"

    def test_malformed_json_is_400(self, server):
        status, payload = raw_call(
            server, "/v2/quantify", method="POST", body=b"{not json"
        )
        assert status == 400
        assert "not valid JSON" in payload["error"]["message"]

    def test_empty_body_is_400(self, server):
        status, payload = raw_call(server, "/v2/quantify", method="POST", body=b"")
        assert status == 400
        assert "empty" in payload["error"]["message"]

    def test_kind_mismatch_between_path_and_body_is_400(self, server):
        body = json.dumps(
            {"kind": "audit", "dataset": "table1", "function": "table1-f"}
        ).encode()
        status, payload = raw_call(server, "/v2/quantify", method="POST", body=body)
        assert status == 400
        assert "declares kind 'audit'" in payload["error"]["message"]

    def test_unknown_endpoint_is_404(self, server):
        status, payload = raw_call(server, "/v2/nonsense", method="POST", body=b"{}")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_methods_are_405(self, server):
        status, _ = raw_call(server, "/v2/quantify")
        assert status == 405
        status, _ = raw_call(server, "/v2/health", method="POST", body=b"{}")
        assert status == 405

    def test_rejected_posts_do_not_desync_keepalive_connections(self, server):
        """Error paths must drain the body: the next request on the same
        keep-alive connection has to parse cleanly (regression)."""
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            body = json.dumps({"dataset": "table1", "function": "table1-f"})
            for bad_path in ("/v2/health", "/v2/nonsense"):
                connection.request(
                    "POST", bad_path, body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status in (404, 405)
                response.read()
                # Same socket, next request: must be served normally.
                connection.request(
                    "POST", "/v2/quantify", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 200
                assert payload["kind"] == "quantify"
        finally:
            connection.close()

    def test_invalid_parameters_fail_client_side(self, client):
        with pytest.raises(ServiceError, match="at least 2 steps"):
            client.sweep("table1", "table1-f", steps=1)


class TestBatchEndpoint:
    def test_batch_matches_serial_execution_in_order(self, server, client):
        requests = [
            QuantifyRequest(dataset="table1", function="table1-f"),
            AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=5),
            QuantifyRequest(dataset="table1", function="table1-f"),
        ]
        over_http = client.batch(requests)
        serial = [server.service.execute(request) for request in requests]
        assert [r.kind for r in over_http] == [r.kind for r in serial]
        for http_result, local in zip(over_http, serial):
            assert http_result.canonical() == local.canonical()

    def test_batch_keeps_errors_in_slot(self, client):
        requests = [
            QuantifyRequest(dataset="table1", function="table1-f"),
            QuantifyRequest(dataset="missing", function="table1-f"),
            QuantifyRequest(dataset="table1", function="balanced"),
        ]
        results = client.batch(requests)
        assert [result.ok for result in results] == [True, False, True]
        assert results[1].error["code"] == "service"

    def test_unparseable_slot_gets_an_error_envelope(self, server):
        body = json.dumps(
            {
                "requests": [
                    {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
                    {"kind": "frobnicate"},
                    {"kind": "quantify"},
                ]
            }
        ).encode()
        status, payload = raw_call(server, "/v2/batch", method="POST", body=body)
        assert status == 200
        results = payload["results"]
        assert len(results) == 3
        assert results[0]["error"] is None
        assert "unknown request kind" in results[1]["error"]["message"]
        assert "missing required field 'dataset'" in results[2]["error"]["message"]

    def test_empty_batch_is_400(self, server):
        status, payload = raw_call(
            server, "/v2/batch", method="POST", body=b'{"requests": []}'
        )
        assert status == 400
        assert "non-empty" in payload["error"]["message"]


class TestServerLifecycle:
    def test_port_zero_binds_an_ephemeral_port(self):
        with FairnessHTTPServer(FairnessService(), port=0) as ephemeral:
            assert ephemeral.port > 0
            assert ephemeral.base_url.endswith(str(ephemeral.port))

    def test_binding_a_taken_port_raises_service_error(self, server):
        with pytest.raises(ServiceError, match="cannot bind"):
            FairnessHTTPServer(FairnessService(), port=server.port)

    def test_unreachable_server_raises_service_error(self, server):
        ghost = HTTPFairnessClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            ghost.quantify("table1", "table1-f")


class TestServeCLI:
    def test_serve_boots_from_a_snapshot_subprocess(self, tmp_path):
        """`fairank serve --catalog snap --port 0` answers real HTTP traffic."""
        snapshot = tmp_path / "snap.json"
        build_service().catalog.save(snapshot)
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--catalog", str(snapshot), "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=dict(os.environ, PYTHONPATH=repo_src),
        )
        try:
            port = None
            assert process.stdout is not None
            for line in process.stdout:
                match = re.search(r"http://[\d.]+:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port, "server never announced its port"
            client = HTTPFairnessClient(f"http://127.0.0.1:{port}", timeout=60)
            assert client.health()["status"] == "ok"
            result = client.quantify("table1", "table1-f")
            assert result.ok and result.payload["dataset"] == "table1"
        finally:
            process.terminate()
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=15)


class TestBatchMalformedSlotsOverHTTP:
    """Error paths for batch slots that are not even request-shaped objects."""

    def test_non_dict_slots_get_in_slot_envelopes(self, server):
        body = json.dumps(
            {
                "requests": [
                    {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
                    "not-a-request",
                    42,
                    None,
                ]
            }
        ).encode()
        status, payload = raw_call(server, "/v2/batch", method="POST", body=body)
        assert status == 200
        results = payload["results"]
        assert len(results) == 4
        assert results[0]["error"] is None
        for slot in results[1:]:
            assert slot["kind"] == "unknown"
            assert slot["error"]["code"] == "service"
            assert "must be a JSON object" in slot["error"]["message"]

    def test_batch_body_that_is_not_a_list_is_400(self, server):
        status, payload = raw_call(
            server, "/v2/batch", method="POST", body=b'{"requests": {"kind": "x"}}'
        )
        assert status == 400
        assert "non-empty list" in payload["error"]["message"]

    def test_results_stay_in_input_order_around_bad_slots(self, server, client):
        body = json.dumps(
            {
                "requests": [
                    "bad",
                    {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
                    "also bad",
                    {"kind": "quantify", "dataset": "table1", "function": "balanced"},
                ]
            }
        ).encode()
        status, payload = raw_call(server, "/v2/batch", method="POST", body=body)
        assert status == 200
        oks = [entry["error"] is None for entry in payload["results"]]
        assert oks == [False, True, False, True]
        assert payload["results"][1]["payload"]["function"] == "table1-f"
        assert payload["results"][3]["payload"]["function"] == "balanced"
