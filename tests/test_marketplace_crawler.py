"""Tests for repro.marketplace.crawler (simulated platform crawls)."""

import pytest

from repro.errors import MarketplaceError
from repro.marketplace.crawler import (
    PLATFORM_PROFILES,
    MarketplaceCrawler,
    available_platforms,
)
from repro.scoring.rank import OpaqueScoringFunction


class TestProfiles:
    def test_four_platforms_available(self):
        platforms = available_platforms()
        assert set(platforms) == {
            "taskrabbit-sim", "fiverr-sim", "qapa-sim", "mistertemp-sim",
        }

    def test_profiles_have_jobs_and_gaps(self):
        for profile in PLATFORM_PROFILES.values():
            assert profile.job_templates
            assert profile.group_gaps
            schema = profile.schema()
            assert schema.protected_names
            assert schema.observed_names

    def test_job_templates_reference_declared_skills(self):
        for profile in PLATFORM_PROFILES.values():
            for _, weights, _ in profile.job_templates:
                assert set(weights) <= set(profile.skills)


class TestCrawler:
    def test_crawl_returns_marketplace_with_jobs(self, crawled_marketplace):
        assert len(crawled_marketplace.workers) == 120
        assert len(crawled_marketplace) == len(PLATFORM_PROFILES["taskrabbit-sim"].job_templates)

    def test_crawl_is_deterministic(self):
        first = MarketplaceCrawler(seed=5).crawl("fiverr-sim", workers=60)
        second = MarketplaceCrawler(seed=5).crawl("fiverr-sim", workers=60)
        assert first.workers.to_records() == second.workers.to_records()

    def test_unknown_platform_rejected(self):
        with pytest.raises(MarketplaceError):
            MarketplaceCrawler().crawl("linkedin-sim")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(MarketplaceError):
            MarketplaceCrawler().crawl("qapa-sim", workers=0)

    def test_skills_in_unit_interval(self, crawled_marketplace):
        for skill in crawled_marketplace.workers.schema.observed_names:
            column = crawled_marketplace.workers.numeric_column(skill)
            assert column.min() >= 0.0 and column.max() <= 1.0

    def test_planted_gap_visible_in_data(self):
        marketplace = MarketplaceCrawler(seed=3).crawl("taskrabbit-sim", workers=800)
        workers = marketplace.workers
        black = workers.filter(lambda i: i["Ethnicity"] == "Black")
        white = workers.filter(lambda i: i["Ethnicity"] == "White")
        assert black.numeric_column("Rating").mean() < white.numeric_column("Rating").mean()

    def test_some_jobs_are_opaque(self, crawled_marketplace):
        opaque_jobs = [job for job in crawled_marketplace if not job.is_transparent]
        assert opaque_jobs
        assert all(isinstance(job.function, OpaqueScoringFunction) for job in opaque_jobs)

    def test_crawl_all(self):
        marketplaces = MarketplaceCrawler(seed=2).crawl_all(workers=40)
        assert {m.name for m in marketplaces} == set(available_platforms())
        assert all(len(m.workers) == 40 for m in marketplaces)
