"""Tests for repro.obs: metrics registry, tracing, structured logging."""

import io
import json

import pytest

from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.obs.log import WORKER_SLOT_ENV, ObsLogger
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    merge_parsed,
    parse_prometheus,
    render_parsed,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Trace,
    activate,
    current_trace_id,
    new_trace_id,
    span,
    valid_trace_id,
)
from repro.scoring.linear import LinearScoringFunction
from repro.server import FairnessHTTPServer
from repro.service import FairnessService, QuantifyRequest


def build_service() -> FairnessService:
    service = FairnessService()
    service.register_dataset(load_example_table1(), name="table1")
    service.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
    return service


class TestMetricsPrimitives:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits")
        counter.inc(kind="quantify")
        counter.inc(2, kind="quantify")
        counter.inc(kind="audit")
        assert counter.value(kind="quantify") == 3
        assert counter.value(kind="audit") == 1
        assert counter.value(kind="missing") == 0

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_and_moves(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5, queue="a")
        gauge.inc(2.5, queue="a")
        assert gauge.value(queue="a") == 7.5

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        samples = {
            (name, labels): value for name, labels, value in histogram.samples()
        }
        assert samples[("lat_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_seconds_bucket", (("le", "1"),))] == 3
        assert samples[("lat_seconds_bucket", (("le", "+Inf"),))] == 4
        assert samples[("lat_seconds_count", ())] == 4
        assert samples[("lat_seconds_sum", ())] == pytest.approx(6.05)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.5))

    def test_registry_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a_total")

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(kind="x")
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["a_total"]["kind"] == "counter"
        assert any(
            sample["name"] == "h_seconds_count"
            for sample in snapshot["h_seconds"]["samples"]
        )


class TestPrometheusText:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests").inc(3, kind="a b", path='q"x"')
        registry.gauge("up", "uptime").set(1.5)
        registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        page = parse_prometheus(registry.render())
        assert page.value("req_total", kind="a b", path='q"x"') == 3
        assert page.value("up") == 1.5
        assert page.value("lat_seconds_bucket", le="+Inf") == 1
        assert page.types["lat_seconds"] == "histogram"

    def test_parse_rejects_malformed_pages(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a sample line at all!{")

    def test_merge_sums_identical_series_across_pages(self):
        pages = []
        for count in (2, 5):
            registry = MetricsRegistry()
            registry.counter("req_total").inc(count, kind="quantify")
            registry.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
            pages.append(parse_prometheus(registry.render()))
        merged = merge_parsed(pages)
        assert merged.value("req_total", kind="quantify") == 7
        assert merged.value("lat_seconds_count") == 2

    def test_render_parsed_keeps_bucket_order_and_reparses(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.005, 0.05, 0.5))
        histogram.observe(0.01, kind="a")
        registry.counter("req_total").inc(kind="a")
        rendered = render_parsed(parse_prometheus(registry.render()))
        bucket_lines = [
            line for line in rendered.splitlines()
            if line.startswith("lat_seconds_bucket")
        ]
        assert '+Inf' in bucket_lines[-1]
        # A rendered page must itself be scrapeable (router aggregation
        # re-renders merged worker pages).
        again = parse_prometheus(rendered)
        assert again.value("req_total", kind="a") == 1


class TestTrace:
    def test_trace_ids_validate(self):
        assert valid_trace_id(new_trace_id()) is not None
        assert valid_trace_id("ok-id_1.2") == "ok-id_1.2"
        assert valid_trace_id("bad id") is None
        assert valid_trace_id("") is None
        assert valid_trace_id(17) is None
        assert valid_trace_id("x" * 65) is None

    def test_spans_accumulate_into_wire_timings(self):
        trace = Trace("tid-1")
        trace.add("queue", 0.25)
        with trace.span("compute"):
            pass
        trace.add("compute", 0.5)
        timings = trace.timings()
        assert timings["trace_id"] == "tid-1"
        assert timings["queue_ms"] == 250.0
        assert timings["compute_ms"] >= 500.0

    def test_activate_scopes_the_current_trace(self):
        assert current_trace_id() is None
        with activate(Trace("outer")):
            assert current_trace_id() == "outer"
            with activate(Trace("inner")):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_module_span_is_a_noop_without_a_trace(self):
        with span("compute"):
            pass
        trace = Trace()
        with activate(trace):
            with span("compute"):
                pass
        assert "compute_ms" in trace.timings()


class TestObsLogger:
    def test_lifecycle_events_always_emit_json_lines(self):
        captured = io.StringIO()
        ObsLogger(captured).event("worker_crash", slot=1, returncode=-9)
        record = json.loads(captured.getvalue())
        assert record["event"] == "worker_crash"
        assert record["slot"] == 1
        assert "ts" in record

    def test_request_events_are_gated_by_verbose(self):
        captured = io.StringIO()
        ObsLogger(captured).request("http_request", 12.0, path="/v2/health")
        assert captured.getvalue() == ""
        ObsLogger(captured, verbose=True).request(
            "http_request", 12.0, path="/v2/health"
        )
        record = json.loads(captured.getvalue())
        assert record["duration_ms"] == 12.0
        assert "slow" not in record

    def test_slow_threshold_emits_and_marks_without_verbose(self):
        captured = io.StringIO()
        logger = ObsLogger(captured, slow_ms=50.0)
        logger.request("http_request", 10.0, path="/fast")
        logger.request("http_request", 80.0, path="/slow")
        lines = captured.getvalue().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["path"] == "/slow"
        assert record["slow"] is True

    def test_worker_slot_rides_in_from_the_environment(self, monkeypatch):
        monkeypatch.setenv(WORKER_SLOT_ENV, "3")
        captured = io.StringIO()
        ObsLogger(captured).event("worker_ready")
        assert json.loads(captured.getvalue())["worker"] == "3"


class TestServiceTimings:
    def test_envelope_timings_cover_the_request(self):
        service = build_service()
        result = service.execute(QuantifyRequest(dataset="table1", function="table1-f"))
        timings = result.timings
        assert valid_trace_id(timings["trace_id"])
        assert timings["total_ms"] > 0
        assert "key_ms" in timings and "compute_ms" in timings
        assert timings["cache_ms"] >= 0
        # The score store's materialization is nested inside compute.
        assert timings["score_ms"] <= timings["compute_ms"]

    def test_cache_hit_skips_compute(self):
        service = build_service()
        request = QuantifyRequest(dataset="table1", function="table1-f")
        service.execute(request)
        hit = service.execute(request)
        assert hit.cached
        assert "compute_ms" not in hit.timings

    def test_active_trace_id_is_inherited(self):
        service = build_service()
        with activate(Trace("pinned-id")):
            result = service.execute(
                QuantifyRequest(dataset="table1", function="table1-f")
            )
        assert result.timings["trace_id"] == "pinned-id"

    def test_error_envelopes_still_carry_timings(self):
        service = build_service()
        result = service.execute(QuantifyRequest(dataset="nope", function="table1-f"))
        assert result.error is not None
        assert valid_trace_id(result.timings["trace_id"])
        assert "total_ms" in result.timings

    def test_timings_stay_out_of_the_canonical_bytes(self):
        service = build_service()
        request = QuantifyRequest(dataset="table1", function="table1-f")
        first = service.execute(request)
        second = service.execute(request)
        assert first.timings != second.timings  # distinct trace ids
        assert first.canonical() == second.canonical()

    def test_request_counter_and_latency_histogram_advance(self):
        registry = get_registry()
        counter = registry.counter("fairank_requests_total")
        histogram = registry.histogram("fairank_request_seconds")
        before = counter.value(kind="quantify", status="ok", cached="false")
        latency_before = histogram.count(kind="quantify")
        build_service().execute(QuantifyRequest(dataset="table1", function="table1-f"))
        assert counter.value(kind="quantify", status="ok", cached="false") == before + 1
        assert histogram.count(kind="quantify") == latency_before + 1

    def test_batch_shares_one_trace_id_and_measures_queueing(self):
        service = build_service()
        requests = [
            QuantifyRequest(dataset="table1", function="table1-f", bins=bins)
            for bins in (3, 4, 5)
        ]
        with activate(Trace("batch-parent")):
            results = service.execute_many(requests)
        for result in results:
            assert result.timings["trace_id"] == "batch-parent"
            assert result.timings["queue_ms"] >= 0


class TestServerObservability:
    @pytest.fixture(scope="class")
    def server(self):
        with FairnessHTTPServer(build_service(), port=0) as running:
            running.serve_in_background()
            yield running

    def test_metrics_endpoint_serves_prometheus_text(self, server):
        import urllib.request

        # The page is rendered *during* the scrape (its own counter lands
        # after the response), so a prior request provides the sample.
        urllib.request.urlopen(f"{server.base_url}/v2/health", timeout=30).read()
        with urllib.request.urlopen(
            f"{server.base_url}/v2/metrics", timeout=30
        ) as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            page = parse_prometheus(response.read().decode("utf-8"))
        served = page.sum_by_label("fairank_http_requests_total", "endpoint")
        assert served.get("/v2/health", 0) >= 1
        assert page.value("fairank_http_uptime_seconds") >= 0

    def test_metrics_rejects_post(self, server):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{server.base_url}/v2/metrics", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=30)
        assert caught.value.code == 405

    def test_trace_header_is_echoed_and_lands_in_timings(self, server):
        import urllib.request

        body = json.dumps({"dataset": "table1", "function": "table1-f"}).encode()
        request = urllib.request.Request(
            f"{server.base_url}/v2/quantify",
            data=body,
            headers={"Content-Type": "application/json", TRACE_HEADER: "hdr-test-1"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers[TRACE_HEADER] == "hdr-test-1"
            payload = json.loads(response.read())
        assert payload["timings"]["trace_id"] == "hdr-test-1"

    def test_invalid_trace_header_is_replaced_not_relayed(self, server):
        import urllib.request

        request = urllib.request.Request(
            f"{server.base_url}/v2/health",
            headers={TRACE_HEADER: "bad header!!"},
            method="GET",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            echoed = response.headers[TRACE_HEADER]
        assert echoed != "bad header!!"
        assert valid_trace_id(echoed)

    def test_slow_request_logging_marks_breaches(self, server):
        import time
        import urllib.request

        captured = io.StringIO()
        original = server.obs
        server.obs = ObsLogger(captured, slow_ms=0.0)
        try:
            urllib.request.urlopen(f"{server.base_url}/v2/health", timeout=30).read()
            # The event is emitted after the response bytes reach the client;
            # wait for it before swapping the logger back.
            deadline = time.monotonic() + 5
            while "/v2/health" not in captured.getvalue():
                if time.monotonic() > deadline:
                    break
                time.sleep(0.01)
        finally:
            server.obs = original
        records = [json.loads(line) for line in captured.getvalue().splitlines()]
        health = [r for r in records if r.get("path") == "/v2/health"]
        assert health and health[-1]["slow"] is True
        assert valid_trace_id(health[-1]["trace_id"])
