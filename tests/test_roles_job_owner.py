"""Tests for the JOB OWNER role workflow."""

import pytest

from repro.errors import MarketplaceError, ScoringError
from repro.marketplace.entities import Job, Marketplace
from repro.roles.job_owner import JobOwner
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import OpaqueScoringFunction


@pytest.fixture(scope="module")
def owner_report(request):
    marketplace = request.getfixturevalue("crowdsourcing_marketplace_fixture")
    owner = JobOwner(min_partition_size=2)
    return owner.explore_job(marketplace, "Content writing", sweep_steps=4)


class TestCompareVariants:
    def test_base_function_included(self, owner_report):
        names = [evaluation.name for evaluation in owner_report.evaluations]
        assert "Content writing" in names
        assert len(names) > 1

    def test_variant_names_are_numbered(self, owner_report):
        numbered = [name for name in
                    (e.name for e in owner_report.evaluations) if "#" in name]
        assert numbered
        assert all(name.startswith("Content writing#") for name in numbered)

    def test_fairest_is_minimum_unfairness(self, owner_report):
        values = [e.unfairness for e in owner_report.evaluations]
        assert owner_report.fairest.unfairness == min(values)
        assert owner_report.most_unfair.unfairness == max(values)

    def test_variant_lookup(self, owner_report):
        name = owner_report.evaluations[0].name
        assert owner_report.evaluation_for(name).name == name
        with pytest.raises(ScoringError):
            owner_report.evaluation_for("nope")

    def test_table_sorted_by_unfairness_and_mentions_recommendation(self, owner_report):
        table = owner_report.to_table()
        values = table.column("unfairness")
        assert values == sorted(values)
        assert any("recommended" in note for note in table.notes)
        assert owner_report.fairest.name in owner_report.render()

    def test_weight_variation_changes_unfairness(self, owner_report):
        values = {round(e.unfairness, 6) for e in owner_report.evaluations}
        assert len(values) > 1


class TestJobOwnerConfiguration:
    def test_explicit_overrides(self, small_population):
        owner = JobOwner(min_partition_size=2)
        base = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="base")
        report = owner.compare_variants(
            small_population, base,
            overrides=[{"Language Test": 1.0, "Rating": 0.0},
                       {"Language Test": 0.0, "Rating": 1.0}],
        )
        assert len(report.evaluations) == 3

    def test_opaque_job_rejected(self, small_population):
        hidden = LinearScoringFunction({"Rating": 1.0}, name="hidden")
        marketplace = Marketplace(name="m", workers=small_population)
        marketplace.add_job(
            Job(title="opaque", function=OpaqueScoringFunction(hidden, name="opaque"))
        )
        with pytest.raises(MarketplaceError):
            JobOwner().explore_job(marketplace, "opaque")

    def test_non_linear_base_rejected(self, small_population):
        from repro.scoring.base import Ranking
        from repro.scoring.rank import RankDerivedScorer

        scorer = RankDerivedScorer(Ranking((("a", 1.0), ("b", 0.5))))
        with pytest.raises(ScoringError):
            JobOwner().compare_variants(small_population, scorer, overrides=[])

    def test_evaluation_partitions_cover_candidates(self, small_population):
        owner = JobOwner(min_partition_size=2)
        base = LinearScoringFunction({"Language Test": 0.7, "Rating": 0.3}, name="base")
        evaluation = owner.evaluate_function(small_population, base)
        assert sum(evaluation.result.partitioning.sizes) == len(small_population)

    def test_filtered_job_uses_candidates_only(self, crowdsourcing_marketplace_fixture):
        owner = JobOwner(min_partition_size=2)
        report = owner.explore_job(
            crowdsourcing_marketplace_fixture, "English transcription", sweep_steps=3
        )
        candidates = crowdsourcing_marketplace_fixture.candidates_for("English transcription")
        for evaluation in report.evaluations:
            assert sum(evaluation.result.partitioning.sizes) == len(candidates)
