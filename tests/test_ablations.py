"""Tests for the ablation studies (repro.experiments.ablations)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    ablate_bins,
    ablate_min_partition_size,
    ablate_split_criterion,
)
from repro.experiments.workloads import biased_population
from repro.scoring.linear import LinearScoringFunction


@pytest.fixture(scope="module")
def population():
    dataset, _ = biased_population(size=200, seed=7, penalty=-0.3)
    return dataset


@pytest.fixture(scope="module")
def function():
    return LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")


class TestAblateBins:
    def test_one_row_per_bin_count(self, population, function):
        table = ablate_bins(population, function, bin_counts=(3, 5, 10))
        assert table.column("bins") == [3, 5, 10]

    def test_normalised_unfairness_is_bounded(self, population, function):
        table = ablate_bins(population, function, bin_counts=(3, 5, 10))
        for value in table.column("unfairness (normalised)"):
            assert 0.0 <= value <= 1.0

    def test_bin_unit_unfairness_grows_with_resolution(self, population, function):
        table = ablate_bins(population, function, bin_counts=(3, 20))
        values = table.column("unfairness (bin units)")
        assert values[1] >= values[0]

    def test_empty_bin_counts_rejected(self, population, function):
        with pytest.raises(ExperimentError):
            ablate_bins(population, function, bin_counts=())


class TestAblateMinPartitionSize:
    def test_larger_minimum_never_increases_unfairness(self, population, function):
        table = ablate_min_partition_size(population, function, sizes=(1, 5, 25))
        values = table.column("unfairness")
        assert values[0] >= values[-1] - 1e-9

    def test_smallest_group_respects_minimum(self, population, function):
        table = ablate_min_partition_size(population, function, sizes=(5, 10))
        for record in table.to_records():
            assert record["smallest group"] >= record["min size"]

    def test_empty_sizes_rejected(self, population, function):
        with pytest.raises(ExperimentError):
            ablate_min_partition_size(population, function, sizes=())


class TestAblateSplitCriterion:
    def test_informed_criteria_beat_random(self, population, function):
        table = ablate_split_criterion(population, function, random_trials=3)
        records = {record["criterion"]: record for record in table.to_records()}
        algorithm1 = records["Algorithm 1 (local most-unfair attribute)"]["unfairness"]
        random_key = next(key for key in records if key.startswith("random"))
        assert algorithm1 >= records[random_key]["unfairness"] - 1e-9

    def test_all_rows_have_nonnegative_unfairness(self, population, function):
        table = ablate_split_criterion(population, function, random_trials=2)
        assert all(value >= 0.0 for value in table.column("unfairness"))

    def test_deterministic_given_seed(self, population, function):
        first = ablate_split_criterion(population, function, random_trials=2, seed=3)
        second = ablate_split_criterion(population, function, random_trials=2, seed=3)
        assert first.column("unfairness") == second.column("unfairness")
