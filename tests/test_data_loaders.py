"""Tests for repro.data.loaders, in particular the Table 1 reproduction."""

import pytest

from repro.data.loaders import (
    TABLE1_PUBLISHED_SCORES,
    TABLE1_WEIGHTS,
    load_csv,
    load_records,
    table1_schema,
)
from repro.errors import DataError
from repro.scoring.linear import LinearScoringFunction


class TestTable1:
    def test_ten_individuals(self, table1_dataset):
        assert len(table1_dataset) == 10
        assert table1_dataset.uids == tuple(f"w{i}" for i in range(1, 11))

    def test_schema_roles(self):
        schema = table1_schema()
        assert set(schema.protected_names) == {
            "Gender", "Country", "Year of Birth", "Language", "Ethnicity", "Experience",
        }
        assert set(schema.observed_names) == {"Language Test", "Rating"}

    def test_row_w7_matches_paper(self, table1_dataset):
        w7 = table1_dataset.by_uid("w7")
        assert w7["Gender"] == "Female"
        assert w7["Country"] == "America"
        assert w7["Ethnicity"] == "African-American"
        assert w7["Language Test"] == 0.95
        assert w7["Rating"] == 0.98

    def test_published_scores_reproduced_exactly(self, table1_dataset, table1_function):
        scores = table1_function.score_map(table1_dataset)
        for uid, published in TABLE1_PUBLISHED_SCORES.items():
            assert scores[uid] == pytest.approx(published, abs=1e-9), uid

    def test_weights_are_normalised(self):
        function = LinearScoringFunction(TABLE1_WEIGHTS)
        assert sum(function.weights.values()) == pytest.approx(1.0)

    def test_gender_counts_match_paper(self, table1_dataset):
        counts = table1_dataset.value_counts("Gender")
        assert counts == {"Female": 4, "Male": 6}


class TestLoadRecords:
    def test_infers_domains(self):
        records = [
            {"Gender": "F", "Skill": 0.4},
            {"Gender": "M", "Skill": 0.7},
        ]
        ds = load_records(records, protected_names=["Gender"], observed_names=["Skill"])
        assert ds.schema.attribute("Gender").domain == ("F", "M")
        assert len(ds) == 2

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            load_records([], protected_names=["Gender"], observed_names=["Skill"])

    def test_drops_extra_fields(self):
        records = [{"Gender": "F", "Skill": 0.4, "noise": "ignored"}]
        ds = load_records(records, protected_names=["Gender"], observed_names=["Skill"])
        assert "noise" not in ds[0].values


class TestLoadCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "workers.csv"
        path.write_text(
            "Gender,City,Rating\nF,NY,0.9\nM,SF,0.4\nF,SF,0.7\n", encoding="utf-8"
        )
        ds = load_csv(path, protected_names=["Gender", "City"], observed_names=["Rating"])
        assert len(ds) == 3
        assert ds.column("Gender") == ("F", "M", "F")
        assert ds.numeric_column("Rating").tolist() == [0.9, 0.4, 0.7]
        assert ds.name == "workers"

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_csv(
                tmp_path / "missing.csv", protected_names=["Gender"], observed_names=["Rating"]
            )

    def test_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("Gender,Rating\nF,0.9\n", encoding="utf-8")
        with pytest.raises(DataError):
            load_csv(path, protected_names=["Gender", "City"], observed_names=["Rating"])

    def test_non_numeric_observed_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("Gender,Rating\nF,not-a-number\n", encoding="utf-8")
        with pytest.raises(DataError) as excinfo:
            load_csv(path, protected_names=["Gender"], observed_names=["Rating"])
        assert "Rating" in str(excinfo.value)

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("Gender,Rating\n", encoding="utf-8")
        with pytest.raises(DataError):
            load_csv(path, protected_names=["Gender"], observed_names=["Rating"])

    def test_duplicate_header_column_fails_fast(self, tmp_path):
        # A duplicated column makes the name -> value mapping ambiguous;
        # silently keeping one copy used to surface later as a confusing
        # downstream failure.  It must fail at the header, naming the column.
        path = tmp_path / "dup.csv"
        path.write_text(
            "Gender,Rating,Gender\nF,0.9,M\nM,0.4,F\n", encoding="utf-8"
        )
        with pytest.raises(DataError) as excinfo:
            load_csv(path, protected_names=["Gender"], observed_names=["Rating"])
        message = str(excinfo.value)
        assert "duplicate CSV header column" in message
        assert "'Gender'" in message

    def test_duplicate_header_names_every_offender(self, tmp_path):
        path = tmp_path / "dup2.csv"
        path.write_text(
            "Gender,Gender,Rating,Rating\nF,M,0.9,0.4\n", encoding="utf-8"
        )
        with pytest.raises(DataError) as excinfo:
            load_csv(path, protected_names=["Gender"], observed_names=["Rating"])
        message = str(excinfo.value)
        assert "'Gender'" in message
        assert "'Rating'" in message
