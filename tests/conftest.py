"""Shared fixtures for the FaiRank reproduction test suite."""

from __future__ import annotations

import pytest

from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.marketplace.generator import CrowdsourcingGenerator
from repro.scoring.linear import LinearScoringFunction


@pytest.fixture(scope="session")
def table1_dataset():
    """The paper's Table 1 example dataset (10 individuals)."""
    return load_example_table1()


@pytest.fixture(scope="session")
def table1_function():
    """The scoring function that reproduces the paper's f(w) column."""
    return LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f")


@pytest.fixture(scope="session")
def small_population():
    """A small deterministic synthetic population (fast tests)."""
    return CrowdsourcingGenerator(seed=13).generate(80, name="test-pop-80")


@pytest.fixture(scope="session")
def medium_population():
    """A medium synthetic population for integration-style tests."""
    return CrowdsourcingGenerator(seed=29).generate(250, name="test-pop-250")


@pytest.fixture(scope="session")
def balanced_function():
    """An equal-weight scoring function over the default synthetic skills."""
    return LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")


@pytest.fixture(scope="session")
def crowdsourcing_marketplace_fixture():
    """A synthetic crowdsourcing marketplace with several jobs."""
    from repro.experiments.workloads import crowdsourcing_marketplace

    return crowdsourcing_marketplace(size=150, seed=13)


@pytest.fixture(scope="session")
def crawled_marketplace():
    """One simulated platform crawl (TaskRabbit profile)."""
    from repro.marketplace.crawler import MarketplaceCrawler

    return MarketplaceCrawler(seed=5).crawl("taskrabbit-sim", workers=120)
