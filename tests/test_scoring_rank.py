"""Tests for repro.scoring.rank (function-opaque transparency setting)."""

import pytest

from repro.errors import ScoringError
from repro.scoring.base import Ranking
from repro.scoring.rank import OpaqueScoringFunction, RankDerivedScorer


@pytest.fixture
def ranking():
    return Ranking((("a", 0.9), ("b", 0.7), ("c", 0.5), ("d", 0.1)), function_name="hidden")


class TestRankDerivedScorer:
    def test_linear_weighting_spans_unit_interval(self, ranking):
        scorer = RankDerivedScorer(ranking, weighting="linear")
        scores = scorer._scores
        assert scores["a"] == pytest.approx(1.0)
        assert scores["d"] == pytest.approx(0.0)
        assert scores["b"] == pytest.approx(2 / 3)
        assert scores["c"] == pytest.approx(1 / 3)

    def test_exposure_weighting_is_monotone_and_normalised(self, ranking):
        scorer = RankDerivedScorer(ranking, weighting="exposure")
        scores = scorer._scores
        assert scores["a"] == pytest.approx(1.0)
        assert scores["d"] == pytest.approx(0.0)
        assert scores["a"] > scores["b"] > scores["c"] > scores["d"]
        # Exposure decays faster than linear near the top.
        assert scores["b"] < 2 / 3

    def test_exposure_gives_more_top_separation_than_linear(self, ranking):
        linear = RankDerivedScorer(ranking, weighting="linear")._scores
        exposure = RankDerivedScorer(ranking, weighting="exposure")._scores
        top_gap_linear = linear["a"] - linear["b"]
        top_gap_exposure = exposure["a"] - exposure["b"]
        assert top_gap_exposure > top_gap_linear

    def test_single_individual_ranking(self):
        scorer = RankDerivedScorer(Ranking((("only", 0.3),)))
        assert scorer._scores["only"] == pytest.approx(1.0)

    def test_empty_ranking_rejected(self):
        with pytest.raises(ScoringError):
            RankDerivedScorer(Ranking(()))

    def test_unknown_weighting_rejected(self, ranking):
        with pytest.raises(ScoringError):
            RankDerivedScorer(ranking, weighting="quadratic")

    def test_unknown_individual_raises(self, ranking, table1_dataset):
        scorer = RankDerivedScorer(ranking)
        with pytest.raises(ScoringError):
            scorer.score_individual(table1_dataset[0])  # uid w1 not in ranking

    def test_is_not_transparent(self, ranking):
        assert RankDerivedScorer(ranking).transparent is False

    def test_describe_mentions_weighting(self, ranking):
        assert "linear" in RankDerivedScorer(ranking, weighting="linear").describe()


class TestOpaqueScoringFunction:
    def test_direct_scoring_is_refused(self, table1_dataset, table1_function):
        opaque = OpaqueScoringFunction(table1_function, name="hidden-job")
        with pytest.raises(ScoringError):
            opaque.score_individual(table1_dataset[0])

    def test_reveal_ranking_matches_hidden_function(self, table1_dataset, table1_function):
        opaque = OpaqueScoringFunction(table1_function)
        revealed = opaque.reveal_ranking(table1_dataset).uids
        assert revealed == table1_function.rank(table1_dataset).uids

    def test_as_rank_scorer_preserves_order(self, table1_dataset, table1_function):
        opaque = OpaqueScoringFunction(table1_function)
        scorer = opaque.as_rank_scorer(table1_dataset)
        derived = scorer.rank(table1_dataset)
        assert derived.uids == table1_function.rank(table1_dataset).uids

    def test_rank_derived_scores_monotone_with_true_scores(self, table1_dataset, table1_function):
        opaque = OpaqueScoringFunction(table1_function)
        scorer = opaque.as_rank_scorer(table1_dataset)
        true_scores = table1_function.score_map(table1_dataset)
        derived_scores = scorer.score_map(table1_dataset)
        ordered = sorted(table1_dataset.uids, key=lambda uid: -true_scores[uid])
        derived_in_order = [derived_scores[uid] for uid in ordered]
        assert derived_in_order == sorted(derived_in_order, reverse=True)

    def test_is_not_transparent(self, table1_function):
        assert OpaqueScoringFunction(table1_function).transparent is False
