"""Tests for repro.scoring.linear and repro.scoring.base."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.schema import Schema, observed, protected
from repro.errors import ScoringError
from repro.scoring.base import Ranking, rank_by_score
from repro.scoring.linear import LinearScoringFunction


@pytest.fixture
def schema():
    return Schema((
        protected("Gender", domain=("F", "M")),
        observed("Skill"),
        observed("Rating"),
    ))


@pytest.fixture
def dataset(schema):
    rows = [
        {"Gender": "F", "Skill": 0.9, "Rating": 0.8},
        {"Gender": "M", "Skill": 0.4, "Rating": 0.9},
        {"Gender": "F", "Skill": 0.6, "Rating": 0.2},
        {"Gender": "M", "Skill": 0.1, "Rating": 0.1},
    ]
    return Dataset.from_records(schema, rows, name="scoring-test")


class TestConstruction:
    def test_weights_are_normalised_by_default(self):
        function = LinearScoringFunction({"Skill": 2.0, "Rating": 2.0})
        assert function.weights == {"Skill": 0.5, "Rating": 0.5}

    def test_normalize_false_keeps_raw_weights(self):
        function = LinearScoringFunction({"Skill": 2.0}, normalize=False)
        assert function.weights == {"Skill": 2.0}

    def test_rejects_empty_weights(self):
        with pytest.raises(ScoringError):
            LinearScoringFunction({})

    def test_rejects_negative_weight(self):
        with pytest.raises(ScoringError):
            LinearScoringFunction({"Skill": -0.5})

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ScoringError):
            LinearScoringFunction({"Skill": 0.0})

    def test_rejects_non_finite_weight(self):
        with pytest.raises(ScoringError):
            LinearScoringFunction({"Skill": float("nan")})

    def test_uniform_and_single_constructors(self):
        uniform = LinearScoringFunction.uniform(["Skill", "Rating"])
        assert uniform.weights == {"Skill": 0.5, "Rating": 0.5}
        single = LinearScoringFunction.single("Skill")
        assert single.weights == {"Skill": 1.0}
        assert single.name == "only-Skill"
        with pytest.raises(ScoringError):
            LinearScoringFunction.uniform([])


class TestScoring:
    def test_score_individual_matches_weighted_sum(self, dataset):
        function = LinearScoringFunction({"Skill": 0.75, "Rating": 0.25})
        expected = 0.75 * 0.9 + 0.25 * 0.8
        assert function.score_individual(dataset[0]) == pytest.approx(expected)

    def test_score_dataset_is_vectorised_and_consistent(self, dataset):
        function = LinearScoringFunction({"Skill": 0.6, "Rating": 0.4})
        vectorised = function.score_dataset(dataset)
        rowwise = np.asarray([function.score_individual(ind) for ind in dataset])
        assert np.allclose(vectorised, rowwise)

    def test_scores_stay_in_unit_interval(self, dataset):
        function = LinearScoringFunction({"Skill": 1.0, "Rating": 3.0})
        scores = function.score_dataset(dataset)
        assert (scores >= 0.0).all() and (scores <= 1.0).all()

    def test_zero_weight_attribute_is_ignored(self, dataset):
        function = LinearScoringFunction({"Skill": 1.0, "Rating": 0.0})
        assert function.attributes == ("Skill",)
        assert function.score_dataset(dataset).tolist() == pytest.approx(
            dataset.numeric_column("Skill").tolist()
        )

    def test_score_map(self, dataset):
        function = LinearScoringFunction({"Skill": 1.0})
        mapping = function.score_map(dataset)
        assert set(mapping) == set(dataset.uids)
        assert mapping["w1"] == pytest.approx(0.9)

    def test_non_numeric_value_raises(self, schema):
        ds = Dataset.from_records(
            schema, [{"Gender": "F", "Skill": 0.5, "Rating": 0.5}]
        )
        bad = ds[0].with_values(Skill="high")
        function = LinearScoringFunction({"Skill": 1.0})
        with pytest.raises(ScoringError):
            function.score_individual(bad)

    def test_validate_against_schema(self, schema):
        LinearScoringFunction({"Skill": 1.0}).validate_against(schema)
        with pytest.raises(ScoringError):
            LinearScoringFunction({"Unknown": 1.0}).validate_against(schema)
        with pytest.raises(ScoringError):
            LinearScoringFunction({"Gender": 1.0}).validate_against(schema)

    def test_describe_mentions_weights(self):
        function = LinearScoringFunction({"Skill": 0.6, "Rating": 0.4}, name="job")
        text = function.describe()
        assert "job" in text and "Skill" in text and "Rating" in text


class TestVariants:
    def test_with_weights_creates_renormalised_variant(self):
        base = LinearScoringFunction({"Skill": 0.5, "Rating": 0.5}, name="base")
        variant = base.with_weights(Skill=3.0, Rating=1.0)
        assert variant.weights["Skill"] == pytest.approx(0.75)
        assert variant.name == "base-variant"
        # The base function is untouched.
        assert base.weights["Skill"] == pytest.approx(0.5)

    def test_with_weights_custom_name(self):
        base = LinearScoringFunction({"Skill": 1.0}, name="base")
        variant = base.with_weights(name="v2", Skill=1.0, Rating=1.0)
        assert variant.name == "v2"
        assert set(variant.attributes) == {"Skill", "Rating"}


class TestRanking:
    def test_rank_orders_by_decreasing_score(self, dataset):
        function = LinearScoringFunction({"Skill": 1.0})
        ranking = function.rank(dataset)
        assert ranking.uids == ("w1", "w3", "w2", "w4")
        assert ranking.scores[0] >= ranking.scores[-1]

    def test_rank_breaks_ties_by_uid(self, schema):
        rows = [
            {"Gender": "F", "Skill": 0.5, "Rating": 0.0},
            {"Gender": "M", "Skill": 0.5, "Rating": 0.0},
        ]
        ds = Dataset.from_records(schema, rows)
        ranking = LinearScoringFunction({"Skill": 1.0}).rank(ds)
        assert ranking.uids == ("w1", "w2")

    def test_position_and_score_of(self, dataset):
        ranking = LinearScoringFunction({"Skill": 1.0}).rank(dataset)
        assert ranking.position("w1") == 1
        assert ranking.position("w4") == 4
        assert ranking.score_of("w3") == pytest.approx(0.6)
        with pytest.raises(ScoringError):
            ranking.position("ghost")
        with pytest.raises(ScoringError):
            ranking.score_of("ghost")

    def test_top_k(self, dataset):
        ranking = LinearScoringFunction({"Skill": 1.0}).rank(dataset)
        assert ranking.top(2) == ("w1", "w3")
        assert ranking.top(100) == ranking.uids
        with pytest.raises(ScoringError):
            ranking.top(-1)

    def test_duplicate_entries_rejected(self):
        with pytest.raises(ScoringError):
            Ranking((("w1", 0.5), ("w1", 0.4)))

    def test_as_table(self, dataset):
        ranking = LinearScoringFunction({"Skill": 1.0}).rank(dataset)
        table = ranking.as_table()
        assert table[0] == {"position": 1, "uid": "w1", "score": pytest.approx(0.9)}
        assert len(table) == len(dataset)

    def test_rank_by_score_matches_method(self, dataset):
        function = LinearScoringFunction({"Rating": 1.0})
        assert rank_by_score(dataset, function).uids == function.rank(dataset).uids
