"""Batch executor: concurrency, deduplication, deterministic ordering."""

from __future__ import annotations

from typing import List

import pytest

from repro.experiments.workloads import crowdsourcing_marketplace
from repro.marketplace.generator import CrowdsourcingGenerator
from repro.scoring.linear import LinearScoringFunction
from repro.service import (
    AuditRequest,
    BatchExecutor,
    CompareRequest,
    FairnessService,
    QuantifyRequest,
)


def build_service() -> FairnessService:
    service = FairnessService()
    service.register_dataset(
        CrowdsourcingGenerator(seed=13).generate(120, name="pop"), name="pop"
    )
    service.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    )
    service.register_function(
        LinearScoringFunction({"Language Test": 0.9, "Rating": 0.1}, name="language-heavy")
    )
    service.register_marketplace(crowdsourcing_marketplace(size=100, seed=13))
    return service


def mixed_batch_16() -> List:
    """16 mixed requests, including duplicates and all three kinds."""
    quantify = [
        QuantifyRequest(dataset="pop", function=function, aggregation=aggregation,
                        min_partition_size=3)
        for function in ("balanced", "language-heavy")
        for aggregation in ("average", "maximum", "variance")
    ]  # 6 distinct
    extras = [
        QuantifyRequest(dataset="pop", function="balanced", objective="least_unfair",
                        min_partition_size=3),
        QuantifyRequest(dataset="pop", function="balanced", use_ranks_only=True,
                        min_partition_size=3),
        QuantifyRequest(dataset="crowdsourcing-sim", function="Content writing",
                        min_partition_size=3),
        AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=3),
        AuditRequest(marketplace="crowdsourcing-sim", job="Data labelling",
                     min_partition_size=3),
        CompareRequest(dataset="pop", functions=("balanced", "language-heavy"),
                       min_partition_size=3),
    ]  # 6 distinct
    duplicates = [quantify[0], quantify[3], extras[3], extras[5]]  # 4 duplicates
    batch = quantify + extras + duplicates
    assert len(batch) == 16
    return batch


class TestBatchExecution:
    def test_16_request_batch_matches_serial_byte_for_byte(self):
        serial = BatchExecutor(build_service()).run_serial(mixed_batch_16())
        batched = BatchExecutor(build_service(), max_workers=8).run(mixed_batch_16())
        assert len(serial) == len(batched) == 16
        assert [r.canonical() for r in batched] == [r.canonical() for r in serial]

    def test_results_come_back_in_input_order(self):
        service = build_service()
        batch = mixed_batch_16()
        results = BatchExecutor(service, max_workers=4).run(batch)
        assert [result.kind for result in results] == [request.kind for request in batch]
        assert [result.key for result in results] == [
            service.request_key(request) for request in batch
        ]

    def test_duplicate_requests_share_one_computation(self):
        service = build_service()
        request = QuantifyRequest(dataset="pop", function="balanced", min_partition_size=3)
        results = BatchExecutor(service, max_workers=8).run([request] * 8)
        assert len(results) == 8
        assert len({id(result) for result in results}) == 1, "duplicates share the result"
        # Only one quantify computation hit the service cache as a miss.
        assert service.cache_stats.misses == 2  # request payload + quantify kernel

    def test_empty_batch(self):
        assert BatchExecutor(build_service()).run([]) == []

    def test_single_worker_still_correct(self):
        serial = BatchExecutor(build_service()).run_serial(mixed_batch_16())
        one_worker = BatchExecutor(build_service(), max_workers=1).run(mixed_batch_16())
        assert [r.canonical() for r in one_worker] == [r.canonical() for r in serial]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor(build_service(), max_workers=0)

    def test_execute_many_is_the_service_entry_point(self):
        service = build_service()
        batch = mixed_batch_16()[:4]
        results = service.execute_many(batch, max_workers=4)
        assert [result.kind for result in results] == [request.kind for request in batch]


class TestWarmBatch:
    def test_second_run_is_fully_cached(self):
        service = build_service()
        executor = BatchExecutor(service, max_workers=4)
        cold = executor.run(mixed_batch_16())
        warm = executor.run(mixed_batch_16())
        assert all(result.cached for result in warm)
        assert [r.canonical() for r in warm] == [r.canonical() for r in cold]
