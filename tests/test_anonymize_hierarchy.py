"""Tests for repro.anonymize.hierarchy."""

import pytest

from repro.anonymize.hierarchy import (
    SUPPRESSED,
    CategoricalHierarchy,
    IntervalHierarchy,
    identity_hierarchy,
)
from repro.errors import AnonymizationError


class TestCategoricalHierarchy:
    def _cities(self):
        return CategoricalHierarchy(
            attribute="City",
            ladders={
                "Paris": ("France", "Europe"),
                "Lyon": ("France", "Europe"),
                "Berlin": ("Germany", "Europe"),
                "NYC": ("USA", "America"),
            },
        )

    def test_height_includes_suppression_level(self):
        assert self._cities().height == 3

    def test_level_zero_is_identity(self):
        hierarchy = self._cities()
        assert hierarchy.generalize("Paris", 0) == "Paris"

    def test_intermediate_levels(self):
        hierarchy = self._cities()
        assert hierarchy.generalize("Paris", 1) == "France"
        assert hierarchy.generalize("Paris", 2) == "Europe"
        assert hierarchy.generalize("NYC", 2) == "America"

    def test_top_level_is_suppression(self):
        hierarchy = self._cities()
        assert hierarchy.generalize("Paris", 3) == SUPPRESSED

    def test_unknown_value_is_suppressed_at_positive_levels(self):
        hierarchy = self._cities()
        assert hierarchy.generalize("Atlantis", 1) == SUPPRESSED
        assert hierarchy.generalize("Atlantis", 0) == "Atlantis"

    def test_out_of_range_level_rejected(self):
        hierarchy = self._cities()
        with pytest.raises(AnonymizationError):
            hierarchy.generalize("Paris", 4)
        with pytest.raises(AnonymizationError):
            hierarchy.generalize("Paris", -1)

    def test_ladders_padded_to_uniform_height(self):
        hierarchy = CategoricalHierarchy(
            attribute="X",
            ladders={"a": ("group-a",), "b": ("group-b", "super-b")},
        )
        assert hierarchy.height == 3
        # The shorter ladder repeats its last ancestor.
        assert hierarchy.generalize("a", 2) == "group-a"

    def test_two_level_constructor(self):
        hierarchy = CategoricalHierarchy.two_level(
            "Language", {"European": ["French", "German"], "Asian": ["Hindi"]}
        )
        assert hierarchy.generalize("French", 1) == "European"
        assert hierarchy.generalize("Hindi", 1) == "Asian"
        assert hierarchy.height == 2

    def test_two_level_rejects_duplicates(self):
        with pytest.raises(AnonymizationError):
            CategoricalHierarchy.two_level(
                "Language", {"A": ["French"], "B": ["French"]}
            )


class TestIntervalHierarchy:
    def test_levels_widen(self):
        hierarchy = IntervalHierarchy(attribute="Year", widths=(5, 10, 25), origin=1900)
        assert hierarchy.generalize(1987, 1) == "[1985-1990)"
        assert hierarchy.generalize(1987, 2) == "[1980-1990)"
        assert hierarchy.generalize(1987, 3) == "[1975-2000)"
        assert hierarchy.generalize(1987, 4) == SUPPRESSED

    def test_level_zero_identity(self):
        hierarchy = IntervalHierarchy(attribute="Year", widths=(10,))
        assert hierarchy.generalize(1987, 0) == 1987

    def test_non_numeric_value_suppressed(self):
        hierarchy = IntervalHierarchy(attribute="Year", widths=(10,))
        assert hierarchy.generalize("unknown", 1) == SUPPRESSED

    def test_float_rendering(self):
        hierarchy = IntervalHierarchy(attribute="Score", widths=(0.5,))
        assert hierarchy.generalize(0.7, 1) == "[0.5-1)"

    def test_validation(self):
        with pytest.raises(AnonymizationError):
            IntervalHierarchy(attribute="Year", widths=())
        with pytest.raises(AnonymizationError):
            IntervalHierarchy(attribute="Year", widths=(0,))
        with pytest.raises(AnonymizationError):
            IntervalHierarchy(attribute="Year", widths=(10, 5))


class TestIdentityHierarchy:
    def test_only_suppression(self):
        hierarchy = identity_hierarchy("Gender")
        assert hierarchy.height == 1
        assert hierarchy.generalize("Female", 0) == "Female"
        assert hierarchy.generalize("Female", 1) == SUPPRESSED
