"""FairnessService facade: registry, cached kernels, requests, engine + CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.formulations import Formulation, Objective
from repro.core.quantify import quantify
from repro.core.unfairness import unfairness_breakdown
from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.errors import ServiceError
from repro.experiments.workloads import crowdsourcing_marketplace
from repro.marketplace.generator import CrowdsourcingGenerator
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import OpaqueScoringFunction
from repro.service import (
    AuditRequest,
    CompareRequest,
    FairnessService,
    LRUCache,
    QuantifyRequest,
)
from repro.session.config import SessionConfig
from repro.session.engine import FaiRankEngine


@pytest.fixture()
def service():
    service = FairnessService()
    service.register_dataset(load_example_table1(), name="table1")
    service.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
    return service


class TestRegistry:
    def test_unknown_names_raise_service_errors(self, service):
        with pytest.raises(ServiceError, match="unknown dataset"):
            service.dataset("nope")
        with pytest.raises(ServiceError, match="unknown scoring function"):
            service.function("nope")
        with pytest.raises(ServiceError, match="unknown marketplace"):
            service.marketplace("nope")

    def test_register_marketplace_registers_workers_and_functions(self, service):
        market = crowdsourcing_marketplace(size=80, seed=13)
        name = service.register_marketplace(market)
        assert name == "crowdsourcing-sim"
        assert "crowdsourcing-sim" in service.dataset_names
        assert "Content writing" in service.function_names
        assert "crowdsourcing-sim" in service.marketplace_names


class TestCachedKernels:
    def test_quantify_cached_matches_direct_call(self, service):
        dataset = service.dataset("table1")
        function = service.function("table1-f")
        served = service.quantify_cached(dataset, function)
        direct = quantify(dataset, function)
        assert served.result.unfairness == pytest.approx(direct.unfairness)
        assert served.result.partitioning.labels == direct.partitioning.labels
        direct_breakdown = unfairness_breakdown(direct.partitioning, function)
        assert served.breakdown.most_favored == direct_breakdown.most_favored
        assert served.cached is False
        again = service.quantify_cached(dataset, function)
        assert again.cached is True and again.key == served.key
        assert again.result is served.result

    def test_semantically_identical_objects_hit_the_cache(self, service):
        served = service.quantify_cached(
            load_example_table1(), LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f")
        )
        again = service.quantify_cached(
            load_example_table1(), LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f")
        )
        assert served.cached is False and again.cached is True

    def test_different_formulation_misses(self, service):
        dataset = service.dataset("table1")
        function = service.function("table1-f")
        service.quantify_cached(dataset, function)
        least = service.quantify_cached(
            dataset, function, Formulation(objective=Objective.LEAST_UNFAIR)
        )
        assert least.cached is False

    def test_exhaustive_cached(self, service):
        dataset = service.dataset("table1")
        function = service.function("table1-f")
        first = service.exhaustive_cached(dataset, function, attributes=("Gender",))
        second = service.exhaustive_cached(dataset, function, attributes=("Gender",))
        assert first is second  # served from the cache

    def test_breakdown_cached_shares_quantify_entry(self, service):
        dataset = service.dataset("table1")
        function = service.function("table1-f")
        served = service.quantify_cached(dataset, function)
        breakdown = service.breakdown_cached(dataset, function)
        assert breakdown is served.breakdown


class TestRoleWorkflows:
    @pytest.fixture()
    def market_service(self):
        service = FairnessService()
        service.register_marketplace(crowdsourcing_marketplace(size=80, seed=13))
        return service

    def test_audit_marketplace_cached(self, market_service):
        first = market_service.audit_marketplace("crowdsourcing-sim", min_partition_size=3)
        second = market_service.audit_marketplace("crowdsourcing-sim", min_partition_size=3)
        assert first is second
        assert {audit.job_title for audit in first.audits} == {
            "Content writing", "Data labelling", "Balanced microtasks",
            "English transcription",
        }

    def test_explore_job_cached(self, market_service):
        first = market_service.explore_job("crowdsourcing-sim", "Content writing",
                                           sweep_steps=3, min_partition_size=3)
        second = market_service.explore_job("crowdsourcing-sim", "Content writing",
                                            sweep_steps=3, min_partition_size=3)
        assert first is second
        assert first.evaluations

    def test_end_user_view_cached(self, market_service):
        group = {"Gender": "Female"}
        first = market_service.end_user_view(group, ["crowdsourcing-sim"], "Data labelling")
        second = market_service.end_user_view(group, ["crowdsourcing-sim"], "Data labelling")
        assert first is second


class TestRequestExecution:
    def test_quantify_payload_matches_library(self, service):
        result = service.execute(QuantifyRequest(dataset="table1", function="table1-f"))
        direct = quantify(service.dataset("table1"), service.function("table1-f"))
        assert result.kind == "quantify"
        assert result.payload["unfairness"] == pytest.approx(direct.unfairness)
        assert [p["label"] for p in result.payload["partitions"]] == list(
            direct.partitioning.labels
        )
        # The payload survives real JSON serialisation.
        assert json.loads(json.dumps(result.payload)) == result.payload

    def test_ranks_only_changes_key_and_result(self, service):
        scored = service.execute(QuantifyRequest(dataset="table1", function="table1-f"))
        ranked = service.execute(
            QuantifyRequest(dataset="table1", function="table1-f", use_ranks_only=True)
        )
        assert scored.key != ranked.key

    def test_opaque_function_is_audited_via_ranks(self, service):
        service.register_function(
            OpaqueScoringFunction(
                LinearScoringFunction(TABLE1_WEIGHTS, name="hidden"), name="blackbox"
            )
        )
        result = service.execute(QuantifyRequest(dataset="table1", function="blackbox"))
        assert result.payload["unfairness"] >= 0.0

    def test_audit_request_payload(self):
        service = FairnessService()
        service.register_marketplace(crowdsourcing_marketplace(size=80, seed=13))
        result = service.execute(
            AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=3)
        )
        assert result.kind == "audit"
        assert len(result.payload["jobs"]) == 4
        assert result.payload["most_unfair_job"] in {job["job"] for job in result.payload["jobs"]}
        single = service.execute(
            AuditRequest(marketplace="crowdsourcing-sim", job="Content writing",
                         min_partition_size=3)
        )
        assert [job["job"] for job in single.payload["jobs"]] == ["Content writing"]

    def test_compare_request_payload(self, service):
        service.register_function(
            LinearScoringFunction({"Language Test": 1.0}, name="language-only")
        )
        result = service.execute(
            CompareRequest(dataset="table1", functions=("table1-f", "language-only"))
        )
        assert result.kind == "compare"
        assert [row["function"] for row in result.payload["functions"]] == [
            "table1-f", "language-only",
        ]
        names = {row["function"] for row in result.payload["functions"]}
        assert result.payload["fairest"] in names
        assert result.payload["most_unfair"] in names

    def test_same_weights_under_new_name_share_the_kernel_but_not_the_payload(self, service):
        service.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="renamed"))
        first = service.execute(QuantifyRequest(dataset="table1", function="table1-f"))
        second = service.execute(QuantifyRequest(dataset="table1", function="renamed"))
        # Distinct request keys (payloads echo the requested name) ...
        assert first.key != second.key
        assert second.payload["function"] == "renamed"
        # ... but the same unfairness, served from the shared quantify kernel.
        assert second.payload["unfairness"] == pytest.approx(first.payload["unfairness"])

    def test_mutating_a_payload_does_not_corrupt_the_cache(self, service):
        request = QuantifyRequest(dataset="table1", function="table1-f")
        first = service.execute(request)
        first.payload["partitions"].clear()
        first.payload.pop("pairwise")
        second = service.execute(request)
        assert second.cached is True
        assert second.payload["partitions"] and "pairwise" in second.payload

    def test_precomputed_key_is_honoured(self, service):
        request = QuantifyRequest(dataset="table1", function="table1-f")
        key = service.request_key(request)
        result = service.execute(request, key)
        assert result.key == key

    def test_shared_external_cache(self):
        cache = LRUCache(capacity=16)
        first = FairnessService(cache=cache)
        second = FairnessService(cache=cache)
        for svc in (first, second):
            svc.register_dataset(load_example_table1(), name="table1")
            svc.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
        first.execute(QuantifyRequest(dataset="table1", function="table1-f"))
        result = second.execute(QuantifyRequest(dataset="table1", function="table1-f"))
        assert result.cached is True


class TestEngineIntegration:
    def test_open_panel_uses_the_service_cache(self):
        engine = FaiRankEngine()
        dataset = CrowdsourcingGenerator(seed=13).generate(60, name="pop")
        engine.register_dataset(dataset)
        engine.register_function(
            LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
        )
        config = SessionConfig(dataset_name="pop", function_name="balanced",
                               min_partition_size=3)
        first = engine.open_panel(config)
        second = engine.open_panel(config)
        assert engine.cache_stats.hits >= 1
        assert first.result.unfairness == pytest.approx(second.result.unfairness)
        assert first.panel_id != second.panel_id  # panels stay distinct sessions

    def test_engines_can_share_a_service(self):
        shared = FairnessService()
        dataset = CrowdsourcingGenerator(seed=13).generate(60, name="pop")
        function = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5},
                                         name="balanced")
        config = SessionConfig(dataset_name="pop", function_name="balanced",
                               min_partition_size=3)
        for _ in range(2):
            engine = FaiRankEngine(service=shared)
            engine.register_dataset(dataset)
            engine.register_function(function)
            engine.open_panel(config)
        assert shared.cache_stats.hits >= 1


class TestServeBatchCLI:
    def test_serve_batch_runs_a_request_file(self, tmp_path, capsys):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps({
            "requests": [
                {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
                {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
                {"kind": "audit", "marketplace": "crowdsourcing-sim",
                 "min_partition_size": 5},
            ]
        }))
        exit_code = main(["serve-batch", str(path), "--market-size", "80",
                          "--workers", "2", "--repeat", "2"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "quantify" in output and "audit" in output
        assert "hit" in output  # the second round is served from the cache
        assert "cache:" in output
        assert "score store:" in output  # materialization stats are reported
        assert "scoring pass(es)" in output

    def test_serve_batch_rejects_bad_files(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        assert main(["serve-batch", str(path)]) == 2
        assert "error:" in capsys.readouterr().err
        path.write_text("{not json")
        assert main(["serve-batch", str(path)]) == 2
        assert main(["serve-batch", str(tmp_path / "missing.json")]) == 2

    def test_serve_batch_serial_mode_and_synthetic_datasets(self, tmp_path, capsys):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps([
            {"kind": "quantify", "dataset": "synthetic-60", "function": "balanced",
             "min_partition_size": 3},
        ]))
        exit_code = main(["serve-batch", str(path), "--market-size", "60",
                          "--synthetic", "60", "--serial"])
        assert exit_code == 0
        assert "serial" in capsys.readouterr().out
