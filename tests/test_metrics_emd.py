"""Tests for repro.metrics.emd, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormulationError
from repro.metrics.emd import emd, emd_1d, emd_matrix, normalized_emd, pairwise_emd_matrix
from repro.metrics.histogram import Binning, build_histogram

distributions = st.lists(
    st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=12
).filter(lambda values: sum(values) > 0)


class TestEmd1d:
    def test_identical_distributions_have_zero_distance(self):
        assert emd_1d([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_point_masses_at_extremes(self):
        # Moving all mass across k-1 bins costs k-1 in bin units.
        assert emd_1d([1, 0, 0, 0], [0, 0, 0, 1]) == pytest.approx(3.0)

    def test_adjacent_bins(self):
        assert emd_1d([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_with_positions_in_score_units(self):
        positions = [0.1, 0.3, 0.5, 0.7, 0.9]
        value = emd_1d([1, 0, 0, 0, 0], [0, 0, 0, 0, 1], positions=positions)
        assert value == pytest.approx(0.8)

    def test_single_bin_distance_is_zero(self):
        assert emd_1d([5.0], [3.0]) == pytest.approx(0.0)

    def test_size_mismatch_raises(self):
        with pytest.raises(FormulationError):
            emd_1d([1, 0], [1, 0, 0])

    def test_positions_size_mismatch_raises(self):
        with pytest.raises(FormulationError):
            emd_1d([1, 0], [0, 1], positions=[0.0, 0.5, 1.0])

    def test_decreasing_positions_raise(self):
        with pytest.raises(FormulationError):
            emd_1d([1, 0], [0, 1], positions=[1.0, 0.0])

    def test_negative_weights_raise(self):
        with pytest.raises(FormulationError):
            emd_1d([1, -1], [0, 1])

    def test_empty_distribution_raises(self):
        with pytest.raises(FormulationError):
            emd_1d([], [])

    @given(distributions)
    @settings(max_examples=60, deadline=None)
    def test_self_distance_is_zero(self, weights):
        assert emd_1d(weights, weights) == pytest.approx(0.0, abs=1e-9)

    @given(distributions, distributions)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, first, second):
        size = min(len(first), len(second))
        first, second = first[:size], second[:size]
        assert emd_1d(first, second) == pytest.approx(emd_1d(second, first), abs=1e-9)

    @given(distributions, distributions, distributions)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        size = min(len(a), len(b), len(c))
        a, b, c = a[:size], b[:size], c[:size]
        assert emd_1d(a, c) <= emd_1d(a, b) + emd_1d(b, c) + 1e-9

    @given(distributions, distributions)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_bins_minus_one(self, first, second):
        size = min(len(first), len(second))
        first, second = first[:size], second[:size]
        assert 0.0 <= emd_1d(first, second) <= size - 1 + 1e-9


class TestEmdMatrix:
    def test_matches_closed_form_on_line_costs(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            size = rng.integers(2, 8)
            p = rng.random(size)
            q = rng.random(size)
            cost = np.abs(np.subtract.outer(np.arange(size), np.arange(size))).astype(float)
            assert emd_matrix(p, q, cost) == pytest.approx(emd_1d(p, q), abs=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(FormulationError):
            emd_matrix([1, 0], [0, 1], np.zeros((3, 2)))

    def test_negative_cost_raises(self):
        with pytest.raises(FormulationError):
            emd_matrix([1, 0], [0, 1], [[0, -1], [1, 0]])

    def test_zero_cost_matrix_gives_zero(self):
        assert emd_matrix([0.3, 0.7], [0.6, 0.4], np.zeros((2, 2))) == pytest.approx(0.0)


class TestHistogramEmd:
    def test_histogram_emd(self):
        binning = Binning.unit(5)
        low = build_histogram([0.05, 0.1], binning=binning)
        high = build_histogram([0.95, 0.9], binning=binning)
        assert emd(low, high) == pytest.approx(4.0)

    def test_histogram_emd_in_score_units(self):
        binning = Binning.unit(5)
        low = build_histogram([0.05, 0.1], binning=binning)
        high = build_histogram([0.95, 0.9], binning=binning)
        assert emd(low, high, use_score_units=True) == pytest.approx(0.8)

    def test_mixed_arguments_rejected(self):
        histogram = build_histogram([0.5])
        with pytest.raises(FormulationError):
            emd(histogram, [1, 0, 0, 0, 0])

    def test_different_binnings_rejected(self):
        with pytest.raises(FormulationError):
            emd(build_histogram([0.5], bins=5), build_histogram([0.5], bins=6))

    def test_normalized_emd_in_unit_interval(self):
        binning = Binning.unit(5)
        low = build_histogram([0.0], binning=binning)
        high = build_histogram([1.0], binning=binning)
        assert normalized_emd(low, high) == pytest.approx(1.0)
        assert normalized_emd(low, low) == pytest.approx(0.0)

    def test_normalized_emd_single_bin(self):
        binning = Binning.unit(1)
        histogram = build_histogram([0.5], binning=binning)
        assert normalized_emd(histogram, histogram) == 0.0

    def test_pairwise_matrix_is_symmetric_with_zero_diagonal(self):
        binning = Binning.unit(5)
        histograms = [
            build_histogram([0.1, 0.2], binning=binning),
            build_histogram([0.5, 0.6], binning=binning),
            build_histogram([0.9, 0.95], binning=binning),
        ]
        matrix = pairwise_emd_matrix(histograms)
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        # Low vs high should be the largest distance.
        assert matrix[0, 2] == matrix.max()

    def test_pairwise_matrix_normalized(self):
        binning = Binning.unit(5)
        histograms = [
            build_histogram([0.0], binning=binning),
            build_histogram([1.0], binning=binning),
        ]
        matrix = pairwise_emd_matrix(histograms, normalize=True)
        assert matrix[0, 1] == pytest.approx(1.0)
