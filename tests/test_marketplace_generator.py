"""Tests for repro.marketplace.generator and repro.marketplace.bias."""

import numpy as np
import pytest

from repro.errors import MarketplaceError
from repro.marketplace.bias import BiasSpec, apply_bias, describe_bias
from repro.marketplace.generator import (
    CrowdsourcingGenerator,
    PopulationSpec,
    default_population_spec,
)


class TestPopulationSpec:
    def test_default_spec_matches_table1_attributes(self):
        spec = default_population_spec()
        schema = spec.schema()
        assert set(schema.protected_names) >= {"Gender", "Country", "Language", "Ethnicity"}
        assert set(schema.observed_names) == {"Language Test", "Rating"}

    def test_spec_validation(self):
        with pytest.raises(MarketplaceError):
            PopulationSpec(protected_distributions={}, skills=("S",))
        with pytest.raises(MarketplaceError):
            PopulationSpec(protected_distributions={"G": {"a": 1.0}}, skills=())
        with pytest.raises(MarketplaceError):
            PopulationSpec(protected_distributions={"G": {"a": -1.0}}, skills=("S",))
        with pytest.raises(MarketplaceError):
            PopulationSpec(protected_distributions={"G": {}}, skills=("S",))


class TestGenerator:
    def test_generates_requested_size(self):
        population = CrowdsourcingGenerator(seed=1).generate(57)
        assert len(population) == 57
        assert population.uids[0] == "w1"

    def test_deterministic_for_same_seed(self):
        first = CrowdsourcingGenerator(seed=5).generate(40)
        second = CrowdsourcingGenerator(seed=5).generate(40)
        assert first.to_records() == second.to_records()

    def test_different_seeds_differ(self):
        first = CrowdsourcingGenerator(seed=5).generate(40)
        second = CrowdsourcingGenerator(seed=6).generate(40)
        assert first.to_records() != second.to_records()

    def test_skills_in_unit_interval(self):
        population = CrowdsourcingGenerator(seed=2).generate(100)
        for skill in ("Language Test", "Rating"):
            column = population.numeric_column(skill)
            assert column.min() >= 0.0 and column.max() <= 1.0

    def test_protected_values_respect_domains(self):
        population = CrowdsourcingGenerator(seed=3).generate(100)
        spec = default_population_spec()
        for attribute, distribution in spec.protected_distributions.items():
            assert set(population.distinct_values(attribute)) <= set(distribution)

    def test_invalid_size(self):
        with pytest.raises(MarketplaceError):
            CrowdsourcingGenerator().generate(0)

    def test_intersectional_bias_helper(self):
        generator = CrowdsourcingGenerator(seed=4)
        dataset, spec = generator.generate_with_intersectional_bias(
            300, subgroup={"Gender": "Female", "Ethnicity": "Indian"}, penalty=-0.3
        )
        assert spec.condition_attributes == ("Ethnicity", "Gender")
        matching = dataset.filter(spec.matches)
        rest = dataset.filter(lambda i: not spec.matches(i))
        assert matching.numeric_column("Rating").mean() < rest.numeric_column("Rating").mean()


class TestBiasSpec:
    def test_requires_conditions_and_shifts(self):
        with pytest.raises(MarketplaceError):
            BiasSpec(conditions={}, shifts={"Rating": -0.1})
        with pytest.raises(MarketplaceError):
            BiasSpec(conditions={"Gender": "F"}, shifts={})

    def test_matches(self):
        spec = BiasSpec({"Gender": "Female", "Country": "India"}, {"Rating": -0.1})
        from repro.data.dataset import Individual

        assert spec.matches(Individual("w", {"Gender": "Female", "Country": "India"}))
        assert not spec.matches(Individual("w", {"Gender": "Female", "Country": "USA"}))

    def test_default_name_and_describe(self):
        spec = BiasSpec({"Gender": "F"}, {"Rating": -0.2})
        assert "Gender=F" in spec.name
        assert "-0.20" in spec.describe()
        assert "no planted bias" == describe_bias([])
        assert "Gender" in describe_bias([spec])


class TestApplyBias:
    def test_shift_applied_only_to_matching_individuals(self, small_population):
        spec = BiasSpec({"Gender": "Female"}, {"Rating": -0.2})
        biased = apply_bias(small_population, [spec])
        for before, after in zip(small_population, biased):
            if before["Gender"] == "Female":
                expected = max(0.0, float(before["Rating"]) - 0.2)
                assert after["Rating"] == pytest.approx(expected)
            else:
                assert after["Rating"] == before["Rating"]

    def test_values_clamped_to_unit_interval(self, small_population):
        spec = BiasSpec({"Gender": "Male"}, {"Rating": +5.0})
        biased = apply_bias(small_population, [spec])
        assert biased.numeric_column("Rating").max() <= 1.0

    def test_multiple_specs_accumulate(self, small_population):
        specs = [
            BiasSpec({"Gender": "Female"}, {"Rating": -0.1}),
            BiasSpec({"Country": "India"}, {"Rating": -0.1}),
        ]
        biased = apply_bias(small_population, specs)
        for before, after in zip(small_population, biased):
            if before["Gender"] == "Female" and before["Country"] == "India":
                expected = max(0.0, float(before["Rating"]) - 0.2)
                assert after["Rating"] == pytest.approx(expected)

    def test_unknown_condition_attribute_rejected(self, small_population):
        with pytest.raises(MarketplaceError):
            apply_bias(small_population, [BiasSpec({"Ghost": "x"}, {"Rating": -0.1})])

    def test_shift_on_protected_attribute_rejected(self, small_population):
        with pytest.raises(MarketplaceError):
            apply_bias(small_population, [BiasSpec({"Gender": "Female"}, {"Gender": -0.1})])

    def test_original_dataset_unchanged(self, small_population):
        before = small_population.numeric_column("Rating").copy()
        apply_bias(small_population, [BiasSpec({"Gender": "Female"}, {"Rating": -0.5})])
        assert np.allclose(small_population.numeric_column("Rating"), before)
