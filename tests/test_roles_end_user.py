"""Tests for the END-USER role workflow."""

import pytest

from repro.errors import MarketplaceError
from repro.roles.end_user import EndUser


@pytest.fixture(scope="module")
def end_user():
    return EndUser({"Gender": "Female"})


class TestAssessJob:
    def test_outcome_fields(self, end_user, crowdsourcing_marketplace_fixture):
        outcome = end_user.assess_job(crowdsourcing_marketplace_fixture, "Content writing")
        assert outcome.marketplace == crowdsourcing_marketplace_fixture.name
        assert outcome.job_title == "Content writing"
        assert 0 < outcome.group_size < outcome.population_size
        assert 0.0 <= outcome.mean_score <= 1.0
        assert 1.0 <= outcome.mean_rank <= outcome.population_size
        assert 0.0 <= outcome.exposure_share <= 1.0
        assert outcome.emd_vs_rest >= 0.0

    def test_score_gap_sign(self, end_user, crowdsourcing_marketplace_fixture):
        outcome = end_user.assess_job(crowdsourcing_marketplace_fixture, "Content writing")
        assert outcome.score_gap == pytest.approx(
            outcome.mean_score - outcome.population_mean_score
        )

    def test_group_membership_validation(self, crowdsourcing_marketplace_fixture):
        ghost_user = EndUser({"Gender": "Nonexistent"})
        with pytest.raises(MarketplaceError):
            ghost_user.assess_job(crowdsourcing_marketplace_fixture, "Content writing")

    def test_unknown_attribute_rejected(self, crowdsourcing_marketplace_fixture):
        user = EndUser({"FavouriteColour": "blue"})
        with pytest.raises(Exception):
            user.assess_job(crowdsourcing_marketplace_fixture, "Content writing")

    def test_empty_group_spec_rejected(self):
        with pytest.raises(MarketplaceError):
            EndUser({})

    def test_group_filter_and_label(self, end_user):
        assert "Gender" in end_user.group_label()
        assert end_user.group_filter.describe()

    def test_penalised_group_is_flagged(self, crowdsourcing_marketplace_fixture):
        # The fixture marketplace plants a penalty on Female African-American
        # workers; the broader Female group intersects it, and the flag is
        # computed from QUANTIFY's partitioning of the candidates.
        user = EndUser({"Gender": "Female", "Ethnicity": "African-American"})
        outcome = user.assess_job(crowdsourcing_marketplace_fixture, "Content writing")
        assert outcome.score_gap < 0.0

    def test_opaque_job_assessed_from_ranks(self, crawled_marketplace):
        user = EndUser({"Gender": "Female"})
        opaque_title = next(job.title for job in crawled_marketplace if not job.is_transparent)
        outcome = user.assess_job(crawled_marketplace, opaque_title)
        assert 0.0 <= outcome.mean_score <= 1.0


class TestComparisons:
    def test_compare_jobs_table(self, end_user, crowdsourcing_marketplace_fixture):
        table = end_user.compare_jobs(crowdsourcing_marketplace_fixture)
        assert len(table) == len(crowdsourcing_marketplace_fixture)
        assert any("best option" in note for note in table.notes)
        gaps = table.column("gap")
        assert gaps == sorted(gaps, reverse=True)

    def test_compare_jobs_subset(self, end_user, crowdsourcing_marketplace_fixture):
        table = end_user.compare_jobs(
            crowdsourcing_marketplace_fixture, job_titles=["Content writing", "Data labelling"]
        )
        assert len(table) == 2

    def test_compare_marketplaces(self, end_user, crowdsourcing_marketplace_fixture):
        table = end_user.compare_marketplaces(
            [crowdsourcing_marketplace_fixture], "Content writing"
        )
        assert len(table) == 1

    def test_compare_marketplaces_requires_offering(
        self, end_user, crowdsourcing_marketplace_fixture
    ):
        with pytest.raises(MarketplaceError):
            end_user.compare_marketplaces([crowdsourcing_marketplace_fixture], "Unicorn grooming")
