"""Wire protocol v2: envelopes, new request kinds, errors, client parity.

Covers the satellite checklist: lossless JSON round-trips across all request
kinds, v1-payload ingestion, error-envelope serving, cache-hit parity between
the :class:`~repro.service.client.FairnessClient` facade and raw requests,
and the catalog unification acceptance test (register via the engine,
resolve via a raw wire request).
"""

from __future__ import annotations

import json

import pytest

from repro.catalog import ResourceKind
from repro.cli import main
from repro.core.quantify import quantify
from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.errors import ServiceError, SessionError
from repro.experiments.workloads import crowdsourcing_marketplace
from repro.scoring.linear import LinearScoringFunction
from repro.service import (
    PROTOCOL_VERSION,
    AuditRequest,
    BatchExecutor,
    BreakdownRequest,
    CompareRequest,
    EndUserRequest,
    FairnessClient,
    FairnessService,
    JobOwnerRequest,
    QuantifyRequest,
    SweepRequest,
    request_from_json,
)
from repro.service.jobs import ServiceResult
from repro.session.config import SessionConfig
from repro.session.engine import FaiRankEngine


def all_kind_requests():
    """One fully-populated request per protocol kind."""
    return [
        QuantifyRequest(
            dataset="d", function="f", objective="least_unfair",
            aggregation="variance", bins=9, attributes=("Gender",),
            max_depth=3, min_partition_size=4, use_ranks_only=True,
        ),
        AuditRequest(
            marketplace="m", job="J", attributes=("Gender", "Language"),
            min_partition_size=5, bins=7,
        ),
        CompareRequest(
            dataset="d", functions=("f1", "f2"), aggregation="maximum",
            max_depth=2, min_partition_size=3,
        ),
        BreakdownRequest(
            dataset="d", function="f", attributes=("Country",),
            min_partition_size=2, use_ranks_only=True, bins=4,
        ),
        SweepRequest(
            dataset="d", function="f", steps=7,
            weights=({"a": 0.25, "b": 0.75}, {"a": 1.0, "b": 0.0}),
            attributes=("Gender",), max_depth=2, min_partition_size=3,
        ),
        EndUserRequest(
            group={"Gender": "Female", "Language": "English"},
            marketplaces=("m1", "m2"), job="J", bins=6,
        ),
        JobOwnerRequest(
            marketplace="m", job="J", sweep_steps=4, min_partition_size=2,
            objective="least_unfair",
        ),
    ]


class TestRoundTrips:
    def test_every_kind_round_trips_through_real_json(self):
        for request in all_kind_requests():
            payload = json.loads(json.dumps(request.to_json()))
            rebuilt = request_from_json(payload)
            assert rebuilt == request
            assert type(rebuilt) is type(request)

    def test_every_kind_round_trips_with_defaults(self):
        requests = [
            QuantifyRequest(dataset="d", function="f"),
            AuditRequest(marketplace="m"),
            CompareRequest(dataset="d", functions=("f",)),
            BreakdownRequest(dataset="d", function="f"),
            SweepRequest(dataset="d", function="f"),
            EndUserRequest(group={"Gender": "F"}, marketplaces=("m",), job="J"),
            JobOwnerRequest(marketplace="m", job="J"),
        ]
        for request in requests:
            assert request_from_json(json.loads(json.dumps(request.to_json()))) == request

    def test_payloads_are_stamped_with_protocol_2(self):
        for request in all_kind_requests():
            assert request.to_json()["protocol"] == PROTOCOL_VERSION == 2

    def test_sweep_weight_vectors_normalise_key_order(self):
        first = SweepRequest(dataset="d", function="f",
                             weights=({"a": 0.5, "b": 0.5},))
        second = SweepRequest(dataset="d", function="f",
                              weights=({"b": 0.5, "a": 0.5},))
        assert first == second
        assert first.weight_maps == ({"a": 0.5, "b": 0.5},)

    def test_sweep_rejects_bare_number_weight_vectors(self):
        # A vector must map attribute names to weights; a bare list of
        # numbers must surface as a structured error, not a TypeError.
        with pytest.raises(ServiceError, match="weight vector"):
            request_from_json(
                {"kind": "sweep", "dataset": "d", "function": "f",
                 "weights": [[0.5, 0.5]]}
            )

    def test_end_user_group_normalises_key_order(self):
        first = EndUserRequest(group={"A": 1, "B": 2}, marketplaces=("m",), job="J")
        second = EndUserRequest(group={"B": 2, "A": 1}, marketplaces=("m",), job="J")
        assert first == second and first.group_map == {"A": 1, "B": 2}


class TestVersioning:
    def test_v1_payload_without_protocol_field_parses(self):
        request = request_from_json(
            {"kind": "quantify", "dataset": "d", "function": "f"}
        )
        assert request == QuantifyRequest(dataset="d", function="f")

    def test_explicit_protocol_1_parses(self):
        request = request_from_json(
            {"protocol": 1, "kind": "audit", "marketplace": "m"}
        )
        assert request == AuditRequest(marketplace="m")

    def test_future_protocol_rejected(self):
        with pytest.raises(ServiceError, match="unsupported protocol version 3"):
            request_from_json(
                {"protocol": 3, "kind": "quantify", "dataset": "d", "function": "f"}
            )

    def test_malformed_protocol_rejected(self):
        with pytest.raises(ServiceError, match="invalid protocol"):
            request_from_json({"protocol": "two", "kind": "quantify"})

    def test_validation_messages(self):
        with pytest.raises(ServiceError, match="at least one vector"):
            SweepRequest(dataset="d", function="f", weights=())
        with pytest.raises(ServiceError, match="at least 2 steps"):
            SweepRequest(dataset="d", function="f", steps=1)
        with pytest.raises(ServiceError, match="at least one marketplace"):
            EndUserRequest(group={"G": "F"}, marketplaces=(), job="J")
        with pytest.raises(ServiceError, match="job title"):
            JobOwnerRequest(marketplace="m", job="")


@pytest.fixture()
def service():
    service = FairnessService()
    service.register_dataset(load_example_table1(), name="table1")
    service.register_function(LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f"))
    service.register_marketplace(crowdsourcing_marketplace(size=80, seed=13))
    return service


class TestErrorEnvelopes:
    def test_unknown_resource_returns_an_error_result(self, service):
        result = service.execute(QuantifyRequest(dataset="nope", function="table1-f"))
        assert result.ok is False and result.cached is False
        assert result.error["code"] == "service"
        assert "unknown dataset" in result.error["message"]
        assert result.payload == {}
        with pytest.raises(ServiceError, match="unknown dataset"):
            result.raise_for_error()

    def test_error_results_round_trip_and_compare_canonically(self, service):
        result = service.execute(QuantifyRequest(dataset="nope", function="table1-f"))
        rebuilt = ServiceResult.from_json(json.loads(json.dumps(result.to_json())))
        assert rebuilt.error == result.error
        assert rebuilt.canonical() == result.canonical()
        ok = service.execute(QuantifyRequest(dataset="table1", function="table1-f"))
        assert ok.canonical() != result.canonical()

    def test_error_results_are_not_cached(self, service):
        request = QuantifyRequest(dataset="late", function="table1-f")
        assert service.execute(request).ok is False
        service.register_dataset(load_example_table1(), name="late")
        healed = service.execute(request)
        assert healed.ok is True and healed.payload["unfairness"] > 0

    def test_batch_with_a_bad_request_still_serves_the_rest(self, service):
        batch = [
            QuantifyRequest(dataset="table1", function="table1-f"),
            QuantifyRequest(dataset="missing", function="table1-f"),
            AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=3),
        ]
        results = BatchExecutor(service, max_workers=4).run(batch)
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].kind == "quantify"
        assert results[1].error["code"] == "service"

    def test_invalid_formulation_travels_as_formulation_error(self, service):
        result = service.execute(
            QuantifyRequest(dataset="table1", function="table1-f",
                            objective="sideways")
        )
        assert result.ok is False
        assert result.error["code"] == "formulation"


class TestNewKindsServing:
    def test_breakdown_matches_direct_single_splits(self, service):
        result = service.execute(
            BreakdownRequest(dataset="table1", function="table1-f")
        )
        assert result.ok
        payload = result.payload
        names = [row["attribute"] for row in payload["attributes"]]
        assert names == list(service.dataset("table1").schema.protected_names)
        best = max(
            (row for row in payload["attributes"] if row["admissible"]),
            key=lambda row: row["unfairness"],
        )
        assert payload["most_unfair_attribute"] == best["attribute"]
        assert json.loads(json.dumps(payload)) == payload

    def test_breakdown_with_no_attributes_is_an_error_envelope(self, service):
        # An empty attribute list must travel as a structured error, not a
        # raised ValueError that would kill a whole batch.
        result = service.execute(
            BreakdownRequest(dataset="table1", function="table1-f", attributes=())
        )
        assert result.ok is False
        assert result.error["code"] == "service"
        assert "at least one protected attribute" in result.error["message"]
        batch = BatchExecutor(service, max_workers=2).run([
            QuantifyRequest(dataset="table1", function="table1-f"),
            BreakdownRequest(dataset="table1", function="table1-f", attributes=()),
        ])
        assert [r.ok for r in batch] == [True, False]

    def test_sweep_matches_serial_quantify_byte_for_byte(self):
        weights = [
            {"Language Test": alpha, "Rating": 1.0 - alpha}
            for alpha in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        sweep_service = FairnessService()
        sweep_service.register_dataset(
            crowdsourcing_marketplace(size=120, seed=13).workers, name="pop"
        )
        sweep_service.register_function(
            LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
        )
        result = sweep_service.execute(
            SweepRequest(dataset="pop", function="balanced",
                         weights=tuple(weights), min_partition_size=3)
        )
        assert result.ok and len(result.payload["points"]) == 5
        # The pool recorded reuse: summary stats and the search kernels share
        # one materialized vector per sweep point.
        assert result.store_stats["hits"] > 0
        assert result.store_stats["scoring_passes"] == 5

        # Byte-identical to serial quantify calls over the same variants.
        serial_service = FairnessService()
        dataset = sweep_service.dataset("pop")
        base = sweep_service.function("balanced")
        serial_values = []
        for index, vector in enumerate(weights):
            variant = base.with_weights(name=f"balanced@sweep{index}", **vector)
            served = serial_service.quantify_cached(
                dataset, variant, min_partition_size=3
            )
            serial_values.append(served.result.unfairness)
        sweep_values = [point["unfairness"] for point in result.payload["points"]]
        assert json.dumps(sweep_values) == json.dumps(serial_values)

    def test_explicit_sweep_vectors_replace_base_weights(self, service):
        # A partial vector fully specifies the variant: omitted attributes
        # get weight 0, nothing is merged in from the base function.
        result = service.execute(
            SweepRequest(dataset="table1", function="table1-f",
                         weights=({"Rating": 1.0},))
        )
        assert result.ok
        assert result.payload["points"][0]["weights"] == {"Rating": 1.0}

    def test_sweep_rejects_opaque_functions(self, service):
        from repro.scoring.rank import OpaqueScoringFunction

        service.register_function(
            OpaqueScoringFunction(
                LinearScoringFunction(TABLE1_WEIGHTS, name="hidden"), name="blackbox"
            )
        )
        result = service.execute(SweepRequest(dataset="table1", function="blackbox"))
        assert result.ok is False
        assert "linear scoring function" in result.error["message"]

    def test_end_user_request_payload(self, service):
        result = service.execute(
            EndUserRequest(
                group={"Gender": "Female"},
                marketplaces=("crowdsourcing-sim",),
                job="Content writing",
            )
        )
        assert result.ok
        outcome = result.payload["outcomes"][0]
        assert outcome["marketplace"] == "crowdsourcing-sim"
        assert outcome["group_size"] > 0
        assert outcome["score_gap"] == pytest.approx(
            outcome["mean_score"] - outcome["population_mean_score"]
        )
        assert result.payload["best_marketplace"] == "crowdsourcing-sim"

    def test_end_user_request_without_matching_job_errors(self, service):
        result = service.execute(
            EndUserRequest(group={"Gender": "Female"},
                           marketplaces=("crowdsourcing-sim",), job="Nope")
        )
        assert result.ok is False

    def test_job_owner_request_payload(self, service):
        result = service.execute(
            JobOwnerRequest(marketplace="crowdsourcing-sim", job="Content writing",
                            sweep_steps=3, min_partition_size=3)
        )
        assert result.ok
        names = [variant["variant"] for variant in result.payload["variants"]]
        assert result.payload["recommended"] in names
        unfairness_by_name = {
            variant["variant"]: variant["unfairness"]
            for variant in result.payload["variants"]
        }
        assert unfairness_by_name[result.payload["recommended"]] == min(
            unfairness_by_name.values()
        )

    def test_new_kinds_are_cached_by_content(self, service):
        request = BreakdownRequest(dataset="table1", function="table1-f")
        cold = service.execute(request)
        warm = service.execute(
            BreakdownRequest(dataset="table1", function="table1-f")
        )
        assert cold.cached is False and warm.cached is True
        assert cold.canonical() == warm.canonical()


class TestClientParity:
    def test_client_and_raw_requests_share_cache_entries(self, service):
        client = FairnessClient(service)
        served = client.quantify("table1", "table1-f", min_partition_size=2)
        raw = service.execute(
            QuantifyRequest(dataset="table1", function="table1-f",
                            min_partition_size=2)
        )
        assert served.cached is False and raw.cached is True
        assert served.key == raw.key
        assert served.canonical() == raw.canonical()

    def test_client_covers_every_kind(self, service):
        client = FairnessClient(service)
        assert client.audit("crowdsourcing-sim", min_partition_size=3).ok
        assert client.compare("table1", ["table1-f"]).ok
        assert client.breakdown("table1", "table1-f").ok
        assert client.sweep("table1", "table1-f", steps=3).ok
        assert client.end_user({"Gender": "Female"}, ["crowdsourcing-sim"],
                               "Content writing").ok
        assert client.job_owner("crowdsourcing-sim", "Content writing",
                                sweep_steps=3, min_partition_size=3).ok

    def test_client_raises_on_error_envelopes_by_default(self, service):
        client = FairnessClient(service)
        with pytest.raises(ServiceError, match="unknown dataset"):
            client.quantify("missing", "table1-f")

    def test_client_can_hand_back_error_envelopes(self, service):
        client = FairnessClient(service, raise_errors=False)
        result = client.quantify("missing", "table1-f")
        assert result.ok is False and result.error["code"] == "service"


class TestCatalogUnification:
    def test_engine_registration_is_servable_via_raw_requests(self):
        """Acceptance: register via the engine, resolve via a wire request."""
        engine = FaiRankEngine()
        engine.register_dataset(load_example_table1(), name="table1")
        engine.register_function(
            LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f")
        )
        result = engine.service.execute(
            QuantifyRequest(dataset="table1", function="table1-f")
        )
        assert result.ok
        direct = quantify(engine.dataset("table1"), engine.function("table1-f"))
        assert result.payload["unfairness"] == pytest.approx(direct.unfairness)

    def test_engine_holds_no_private_registries(self):
        engine = FaiRankEngine()
        assert not hasattr(engine, "_datasets")
        assert not hasattr(engine, "_functions")
        assert engine.catalog is engine.service.catalog

    def test_service_registration_is_visible_to_the_engine(self, service):
        engine = FaiRankEngine(service=service)
        assert "table1" in engine.dataset_names
        panel = engine.open_panel(
            SessionConfig("table1", "table1-f", min_partition_size=2)
        )
        assert panel.result.unfairness >= 0.0

    def test_engine_marketplace_registration_serves_all_role_requests(self):
        engine = FaiRankEngine()
        engine.register_marketplace(crowdsourcing_marketplace(size=80, seed=13))
        for request in (
            AuditRequest(marketplace="crowdsourcing-sim", min_partition_size=3),
            EndUserRequest(group={"Gender": "Female"},
                           marketplaces=("crowdsourcing-sim",),
                           job="Content writing"),
            JobOwnerRequest(marketplace="crowdsourcing-sim",
                            job="Content writing", sweep_steps=3,
                            min_partition_size=3),
        ):
            assert engine.service.execute(request).ok

    def test_engine_role_shortcuts_resolve_registered_names(self):
        engine = FaiRankEngine()
        engine.register_marketplace(crowdsourcing_marketplace(size=80, seed=13))
        report = engine.auditor_view("crowdsourcing-sim", min_partition_size=3)
        assert len(report.audits) >= 1
        table = engine.end_user_view({"Gender": "Female"},
                                     ["crowdsourcing-sim"], "Content writing")
        assert len(table) == 1

    def test_formulations_are_registrable_and_resolvable(self, service):
        from repro.core.formulations import LEAST_UNFAIR_AVG_EMD

        name = service.register_formulation(LEAST_UNFAIR_AVG_EMD)
        assert name == LEAST_UNFAIR_AVG_EMD.name
        assert name in service.formulation_names
        assert service.formulation(name) is LEAST_UNFAIR_AVG_EMD
        with pytest.raises(ServiceError, match="unknown formulation"):
            service.formulation("nope")

    def test_fingerprint_addressing_resolves_requests(self, service):
        fingerprint = service.catalog.get(ResourceKind.DATASET, "table1").fingerprint
        result = service.execute(
            QuantifyRequest(dataset=fingerprint[:12], function="table1-f")
        )
        assert result.ok


class TestEngineReplaceFreeze:
    def test_silent_clobbering_is_gone(self):
        engine = FaiRankEngine()
        engine.register_function(LinearScoringFunction({"Rating": 1.0}, name="job-f"))
        with pytest.raises(SessionError, match="replace=True"):
            engine.register_function(
                LinearScoringFunction({"Language Test": 1.0}, name="job-f")
            )
        # The original registration is untouched.
        assert engine.function("job-f").weights == {"Rating": 1.0}

    def test_identical_reregistration_is_idempotent(self):
        engine = FaiRankEngine()
        engine.register_function(LinearScoringFunction({"Rating": 1.0}, name="job-f"))
        engine.register_function(LinearScoringFunction({"Rating": 1.0}, name="job-f"))
        assert engine.function_names.count("job-f") == 1

    def test_explicit_replace_still_works(self):
        engine = FaiRankEngine()
        engine.register_function(LinearScoringFunction({"Rating": 1.0}, name="job-f"))
        engine.register_function(
            LinearScoringFunction({"Language Test": 1.0}, name="job-f"), replace=True
        )
        assert "Language Test" in engine.function("job-f").weights

    def test_frozen_functions_cannot_be_replaced(self):
        engine = FaiRankEngine()
        engine.register_function(
            LinearScoringFunction({"Rating": 1.0}, name="pinned"), freeze=True
        )
        with pytest.raises(SessionError, match="frozen"):
            engine.register_function(
                LinearScoringFunction({"Language Test": 1.0}, name="pinned"),
                replace=True,
            )


class TestServeBatchV2CLI:
    def test_serve_batch_executes_a_v1_file(self, tmp_path, capsys):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps({
            "requests": [
                {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
                {"kind": "audit", "marketplace": "crowdsourcing-sim",
                 "min_partition_size": 5},
            ]
        }))
        assert main(["serve-batch", str(path), "--market-size", "60"]) == 0
        output = capsys.readouterr().out
        assert "quantify" in output and "audit" in output

    def test_serve_batch_executes_every_v2_kind(self, tmp_path, capsys):
        path = tmp_path / "v2.json"
        path.write_text(json.dumps([
            {"protocol": 2, "kind": "quantify", "dataset": "table1",
             "function": "table1-f"},
            {"protocol": 2, "kind": "compare", "dataset": "table1",
             "functions": ["table1-f", "balanced"]},
            {"protocol": 2, "kind": "breakdown", "dataset": "table1",
             "function": "table1-f"},
            {"protocol": 2, "kind": "sweep", "dataset": "table1",
             "function": "table1-f", "steps": 3},
            {"protocol": 2, "kind": "end_user", "group": {"Gender": "Female"},
             "marketplaces": ["crowdsourcing-sim"], "job": "Content writing"},
            {"protocol": 2, "kind": "job_owner", "marketplace": "crowdsourcing-sim",
             "job": "Content writing", "sweep_steps": 3, "min_partition_size": 3},
            {"protocol": 2, "kind": "audit", "marketplace": "crowdsourcing-sim",
             "min_partition_size": 5},
        ]))
        assert main(["serve-batch", str(path), "--market-size", "60"]) == 0
        output = capsys.readouterr().out
        for kind in ("quantify", "compare", "breakdown", "sweep", "end_user",
                     "job_owner", "audit"):
            assert kind in output
        assert "error" not in output.split("cache:")[0].replace("errors:", "")

    def test_serve_batch_reports_error_envelopes(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([
            {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
            {"kind": "quantify", "dataset": "missing", "function": "table1-f"},
        ]))
        # Exit 1: scripts must see partial failure without parsing stdout.
        assert main(["serve-batch", str(path), "--market-size", "60"]) == 1
        output = capsys.readouterr().out
        assert "error" in output
        assert "unknown dataset 'missing'" in output
        assert "1 request(s) returned an error envelope" in output

    def test_catalog_command_lists_resources(self, capsys):
        assert main(["catalog", "--market-size", "60"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "dataset" in output
        assert "crowdsourcing-sim" in output and "marketplace" in output
        assert "formulation" in output

    def test_catalog_command_checks_a_batch_file(self, tmp_path, capsys):
        path = tmp_path / "check.json"
        path.write_text(json.dumps([
            {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
            {"kind": "quantify", "dataset": "missing", "function": "table1-f"},
        ]))
        assert main(["catalog", "--market-size", "60", "--requests", str(path)]) == 0
        output = capsys.readouterr().out
        assert "does not resolve" in output
        assert "1 reference(s) are missing" in output

    def test_catalog_command_with_fully_resolvable_file(self, tmp_path, capsys):
        path = tmp_path / "good.json"
        path.write_text(json.dumps([
            {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
        ]))
        assert main(["catalog", "--market-size", "60", "--requests", str(path)]) == 0
        assert "every request resolves" in capsys.readouterr().out
