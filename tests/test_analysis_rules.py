"""Fixture-backed tests for every ``repro.analysis`` rule.

Each rule gets the four fixture flavours the analysis plane promises:

* **positive** — the seeded violation from :mod:`repro.analysis.selftest`
  fires (parametrised over every registered id, so a new rule without a
  seed fails here before it fails in CI);
* **negative** — the compliant twin of the violation stays silent;
* **suppressed** — a ``# fairlint: disable=`` directive drops the finding
  without leaving an unused-suppression FL000 behind;
* **baseline-masked** — the same violation masked by a baseline built
  from its own findings passes the gate.

Fixture sources live inline (never under ``tests/`` paths the real lint
run analyses — ``DEFAULT_TARGETS`` excludes tests for exactly this
reason) and run in isolated tmp roots.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import baseline_from_findings, rule_ids, run_analysis
from repro.analysis.selftest import SELFTEST_CASES

#: AST-backed ids whose seeded violation can be suppressed by inserting a
#: standalone directive line above the finding (format-floor rules get
#: explicit suppression tests below; FL000 is unsuppressible, FL900 has
#: no line to annotate).
_SUPPRESSIBLE = ("FL001", "FL002", "FL003", "FL004", "FL005", "FL006", "FL007")


def analyse(root: Path, relpath: str, source, **extra_files):
    """Write one fixture module (plus optional docs) and run the engine."""
    for name, text in extra_files.items():
        doc = root / "docs" / f"{name}.md"
        doc.parent.mkdir(parents=True, exist_ok=True)
        doc.write_text(text, encoding="utf-8")
    target = root / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    data = source if isinstance(source, bytes) else source.encode("utf-8")
    target.write_bytes(data)
    return run_analysis([root], root=root)


def fired(report, rule_id):
    return [finding for finding in report.findings if finding.rule == rule_id]


class TestEveryRule:
    @pytest.mark.parametrize("rule_id", sorted(SELFTEST_CASES))
    def test_positive_seeded_violation_fires(self, tmp_path, rule_id):
        relpath, source = SELFTEST_CASES[rule_id]
        report = analyse(tmp_path, relpath, source)
        findings = fired(report, rule_id)
        assert findings, f"{rule_id} missed its seeded violation"
        assert report.failed
        for finding in findings:
            assert finding.text().startswith(f"{relpath}:")
            assert f" {rule_id} " in finding.text()

    @pytest.mark.parametrize("rule_id", sorted(SELFTEST_CASES))
    def test_baseline_masks_the_seeded_violation(self, tmp_path, rule_id):
        relpath, source = SELFTEST_CASES[rule_id]
        first = analyse(tmp_path, relpath, source)
        baseline = baseline_from_findings(first.findings)
        masked = run_analysis([tmp_path], root=tmp_path, baseline=baseline)
        assert not masked.failed
        assert not masked.diff.new and not masked.diff.stale
        assert len(masked.diff.masked) == len(first.findings)

    @pytest.mark.parametrize("rule_id", _SUPPRESSIBLE)
    def test_standalone_directive_suppresses(self, tmp_path, rule_id):
        relpath, source = SELFTEST_CASES[rule_id]
        line = analyse(tmp_path, relpath, source).findings[0].line
        lines = source.splitlines(keepends=True)
        lines.insert(line - 1, f"# fairlint: disable={rule_id} -- fixture\n")
        report = analyse(tmp_path, relpath, "".join(lines))
        assert not fired(report, rule_id), f"directive did not drop {rule_id}"
        assert not fired(report, "FL000"), "used directive reported as unused"

    def test_registry_and_selftest_cover_the_same_ids(self):
        assert set(SELFTEST_CASES) == set(rule_ids())


class TestLockDiscipline:
    def test_locked_writes_are_clean(self, tmp_path):
        report = analyse(tmp_path, "repro/store.py", (
            "import threading\n\n\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._hits = 0\n\n"
            "    def record(self):\n"
            "        with self._lock:\n"
            "            self._hits += 1\n"
        ))
        assert not fired(report, "FL001")

    def test_locked_suffix_method_is_exempt(self, tmp_path):
        report = analyse(tmp_path, "repro/store.py", (
            "import threading\n\n\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._hits = 0\n\n"
            "    def record(self):\n"
            "        with self._lock:\n"
            "            self._evict_locked()\n\n"
            "    def _evict_locked(self):\n"
            "        self._hits += 1\n"
        ))
        assert not fired(report, "FL001")

    def test_unguarded_attribute_is_not_flagged(self, tmp_path):
        # _free is never touched under the lock, so it is not in the
        # guarded set and plain writes to it are fine.
        report = analyse(tmp_path, "repro/store.py", (
            "import threading\n\n\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n\n"
            "    def record(self):\n"
            "        with self._lock:\n"
            "            self._hits = 1\n\n"
            "    def tag(self):\n"
            "        self._free = 2\n"
        ))
        assert not fired(report, "FL001")

    def test_nested_function_does_not_inherit_lock_context(self, tmp_path):
        # The closure may run on another thread after the with-block
        # exits; its write must still count as unlocked.
        report = analyse(tmp_path, "repro/store.py", (
            "import threading\n\n\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._hits = 0\n\n"
            "    def record(self):\n"
            "        with self._lock:\n"
            "            self._hits += 1\n\n"
            "            def later():\n"
            "                self._hits += 1\n\n"
            "            return later\n"
        ))
        assert len(fired(report, "FL001")) == 1


class TestHotPathMaterialisation:
    def test_iter_rows_outside_hot_paths_is_fine(self, tmp_path):
        _, source = SELFTEST_CASES["FL002"]
        report = analyse(tmp_path, "repro/session/hot.py", source)
        assert not fired(report, "FL002")

    def test_columnar_access_on_hot_path_is_fine(self, tmp_path):
        report = analyse(tmp_path, "repro/core/hot.py", (
            "def total(dataset):\n"
            "    return float(dataset.numeric_column('score').sum())\n"
        ))
        assert not fired(report, "FL002")


class TestCanonicalDrift:
    def test_documented_field_is_fine(self, tmp_path):
        _, source = SELFTEST_CASES["FL003"]
        report = analyse(
            tmp_path, "service/jobs.py", source,
            PROTOCOL="The envelope carries `surprise` (int).\n",
        )
        assert not fired(report, "FL003")

    def test_field_excluded_from_canonical_is_fine(self, tmp_path):
        report = analyse(tmp_path, "service/jobs.py", (
            "import json\n"
            "from dataclasses import dataclass\n\n\n"
            "@dataclass(frozen=True)\n"
            "class ServiceResult:\n"
            "    value: int = 0\n"
            "    elapsed_s: float = 0.0\n\n"
            "    def canonical(self):\n"
            "        return json.dumps({'value': self.value})\n"
        ), PROTOCOL="The envelope carries `value`.\n")
        assert not fired(report, "FL003")

    def test_undocumented_request_field_fires(self, tmp_path):
        report = analyse(tmp_path, "service/jobs.py", (
            "from dataclasses import dataclass\n\n\n"
            "@dataclass(frozen=True)\n"
            "class QuantifyRequest:\n"
            "    mystery: int = 0\n"
        ), PROTOCOL="No fields documented here.\n")
        assert len(fired(report, "FL003")) == 1

    def test_rule_only_looks_at_service_jobs(self, tmp_path):
        _, source = SELFTEST_CASES["FL003"]
        report = analyse(tmp_path, "service/other.py", source)
        assert not fired(report, "FL003")


class TestFingerprintCompleteness:
    def test_scorer_with_fingerprint_is_fine(self, tmp_path):
        report = analyse(tmp_path, "repro/scoring/custom.py", (
            "from repro.scoring.base import ScoringFunction\n\n\n"
            "class GoodScorer(ScoringFunction):\n"
            "    def score(self, row):\n"
            "        return 1.0\n\n"
            "    def fingerprint(self):\n"
            "        return 'good-scorer'\n"
        ))
        assert not fired(report, "FL004")

    def test_pickle_outside_sanctioned_site_fires(self, tmp_path):
        report = analyse(tmp_path, "repro/service/cache.py", (
            "import pickle\n\n\n"
            "def key(value):\n"
            "    return pickle.dumps(value)\n"
        ))
        assert len(fired(report, "FL004")) == 1

    def test_pickle_in_sanctioned_site_is_fine(self, tmp_path):
        report = analyse(tmp_path, "repro/service/fingerprint.py", (
            "import pickle\n\n\n"
            "def fallback(value):\n"
            "    return pickle.dumps(value)\n"
        ))
        assert not fired(report, "FL004")


class TestMetricsNaming:
    def test_documented_convention_name_is_fine(self, tmp_path):
        report = analyse(
            tmp_path, "repro/obs/custom.py",
            "def install(registry):\n"
            "    registry.counter('fairank_good_total', 'help').inc()\n",
            OPERATIONS="| `fairank_good_total` | a documented family |\n",
        )
        assert not fired(report, "FL005")

    def test_undocumented_convention_name_fires(self, tmp_path):
        report = analyse(
            tmp_path, "repro/obs/custom.py",
            "def install(registry):\n"
            "    registry.counter('fairank_secret_total', 'help').inc()\n",
            OPERATIONS="Nothing documented.\n",
        )
        findings = fired(report, "FL005")
        assert len(findings) == 1
        assert "not documented" in findings[0].message

    def test_dynamic_family_name_is_skipped(self, tmp_path):
        report = analyse(tmp_path, "repro/obs/custom.py", (
            "def install(registry, name):\n"
            "    registry.counter(name, 'help').inc()\n"
        ))
        assert not fired(report, "FL005")


class TestThreadHygiene:
    def test_sleep_outside_serving_paths_is_fine(self, tmp_path):
        _, source = SELFTEST_CASES["FL006"]
        report = analyse(tmp_path, "repro/session/slowpath.py", source)
        assert not fired(report, "FL006")

    def test_event_wait_is_the_blessed_pattern(self, tmp_path):
        report = analyse(tmp_path, "repro/server/poll.py", (
            "def handle_poll(stopping):\n"
            "    stopping.wait(timeout=0.05)\n"
        ))
        assert not fired(report, "FL006")

    def test_daemon_thread_in_handler_fires(self, tmp_path):
        report = analyse(tmp_path, "repro/server/handlers.py", (
            "import threading\n\n\n"
            "def do_POST(payload):\n"
            "    threading.Thread(target=print, daemon=True).start()\n"
        ))
        assert len(fired(report, "FL006")) == 1

    def test_daemon_thread_in_lifecycle_code_is_fine(self, tmp_path):
        report = analyse(tmp_path, "repro/server/lifecycle.py", (
            "import threading\n\n\n"
            "def start_reaper(pool):\n"
            "    threading.Thread(target=pool.reap, daemon=True).start()\n"
        ))
        assert not fired(report, "FL006")


class TestSwallowedException:
    def test_logged_handler_is_fine(self, tmp_path):
        report = analyse(tmp_path, "repro/util.py", (
            "def read(path, log):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except OSError as error:\n"
            "        log.warning('read failed: %s', error)\n"
            "        return ''\n"
        ))
        assert not fired(report, "FL007")

    def test_reraising_handler_is_fine(self, tmp_path):
        report = analyse(tmp_path, "repro/util.py", (
            "def read(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except OSError:\n"
            "        raise\n"
        ))
        assert not fired(report, "FL007")

    def test_typed_noop_handler_fires(self, tmp_path):
        report = analyse(tmp_path, "repro/util.py", (
            "def read(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except (OSError, ValueError):\n"
            "        pass\n"
        ))
        assert len(fired(report, "FL007")) == 1


class TestFormatFloor:
    def test_multiline_string_interior_is_exempt(self, tmp_path):
        report = analyse(
            tmp_path, "repro/banner.py",
            'BANNER = """\n\ttab and trailing space \ncontent\n"""\n',
        )
        assert not fired(report, "FL101")
        assert not fired(report, "FL102")

    def test_exactly_max_length_is_fine(self, tmp_path):
        line = "value = '" + "a" * 90 + "'"
        assert len(line) == 100
        report = analyse(tmp_path, "repro/wide.py", line + "\n")
        assert not fired(report, "FL103")

    def test_lf_file_with_final_newline_is_clean(self, tmp_path):
        report = analyse(tmp_path, "repro/tidy.py", "value = 1\n")
        assert not report.findings

    def test_crlf_reports_once_per_file(self, tmp_path):
        _, source = SELFTEST_CASES["FL105"]
        report = analyse(tmp_path, "repro/crlf.py", source)
        assert len(fired(report, "FL105")) == 1

    def test_inline_directive_suppresses_long_line(self, tmp_path):
        source = (
            "value = '" + "a" * 120 + "'"
            "  # fairlint: disable=FL103 -- fixture\n"
        )
        report = analyse(tmp_path, "repro/wide.py", source)
        assert not fired(report, "FL103")
        assert not fired(report, "FL000")


class TestSuppressionEngine:
    def test_inline_directive_covers_its_own_line_only(self, tmp_path):
        report = analyse(tmp_path, "repro/wide.py", (
            "first = '" + "a" * 120 + "'  # fairlint: disable=FL103 -- one\n"
            "second = '" + "a" * 120 + "'\n"
        ))
        findings = fired(report, "FL103")
        assert [finding.line for finding in findings] == [2]

    def test_standalone_directive_covers_the_next_line_only(self, tmp_path):
        report = analyse(tmp_path, "repro/wide.py", (
            "# fairlint: disable=FL103 -- next line only\n"
            "first = '" + "a" * 120 + "'\n"
            "second = '" + "a" * 120 + "'\n"
        ))
        findings = fired(report, "FL103")
        assert [finding.line for finding in findings] == [3]

    def test_comma_separated_ids_all_apply(self, tmp_path):
        # One directive, two seeded violations on its line: over-long AND
        # trailing whitespace.
        report = analyse(tmp_path, "repro/messy.py", (
            "value = '" + "a" * 120 + "'   # fairlint: disable=FL103,FL102 -- x \n"
        ))
        assert not fired(report, "FL103")
        assert not fired(report, "FL102")
        assert not fired(report, "FL000")

    def test_unused_directive_becomes_fl000(self, tmp_path):
        report = analyse(tmp_path, "repro/stale.py", (
            "value = 1  # fairlint: disable=FL103 -- nothing to suppress\n"
        ))
        findings = fired(report, "FL000")
        assert len(findings) == 1
        assert report.failed

    def test_malformed_directive_becomes_fl000(self, tmp_path):
        report = analyse(tmp_path, "repro/typo.py", (
            "value = 1  # fairlint disable=103\n"
        ))
        assert len(fired(report, "FL000")) == 1

    def test_fl000_itself_cannot_be_suppressed(self, tmp_path):
        report = analyse(tmp_path, "repro/meta.py", (
            "value = 1  # fairlint: disable=FL103,FL000 -- nice try\n"
        ))
        assert fired(report, "FL000")

    def test_directive_in_docstring_is_ignored(self, tmp_path):
        # Only COMMENT tokens carry directives; documentation that quotes
        # the syntax must not create (unused) suppressions.
        report = analyse(tmp_path, "repro/doc.py", (
            'def f():\n'
            '    """Use `# fairlint: disable=FL103` to suppress."""\n'
            '    return 1\n'
        ))
        assert not fired(report, "FL000")

    def test_syntax_error_reports_fl900_only_once(self, tmp_path):
        relpath, source = SELFTEST_CASES["FL900"]
        report = analyse(tmp_path, relpath, source)
        assert len(fired(report, "FL900")) == 1
        assert report.failed
