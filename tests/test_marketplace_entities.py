"""Tests for repro.marketplace.entities (Job, Marketplace)."""

import pytest

from repro.data.filters import Equals
from repro.errors import MarketplaceError
from repro.marketplace.entities import Job, Marketplace
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import OpaqueScoringFunction


@pytest.fixture
def writing_job():
    return Job(
        title="Content writing",
        function=LinearScoringFunction({"Language Test": 0.7, "Rating": 0.3},
                                       name="Content writing"),
        description="write articles in English",
    )


@pytest.fixture
def marketplace(small_population, writing_job):
    market = Marketplace(name="test-market", workers=small_population)
    market.add_job(writing_job)
    return market


class TestJob:
    def test_candidates_default_everyone(self, small_population, writing_job):
        assert len(writing_job.candidates(small_population)) == len(small_population)

    def test_candidates_filtered(self, small_population):
        job = Job(
            title="English-only",
            function=LinearScoringFunction({"Rating": 1.0}, name="English-only"),
            candidate_filter=Equals("Language", "English"),
        )
        candidates = job.candidates(small_population)
        assert 0 < len(candidates) < len(small_population)
        assert all(ind["Language"] == "English" for ind in candidates)

    def test_candidates_empty_filter_raises(self, small_population):
        job = Job(
            title="impossible",
            function=LinearScoringFunction({"Rating": 1.0}, name="impossible"),
            candidate_filter=Equals("Language", "Klingon"),
        )
        with pytest.raises(MarketplaceError):
            job.candidates(small_population)

    def test_ranking_best_first(self, small_population, writing_job):
        ranking = writing_job.ranking(small_population)
        assert len(ranking) == len(small_population)
        scores = list(ranking.scores)
        assert scores == sorted(scores, reverse=True)

    def test_opaque_job_ranking(self, small_population):
        hidden = LinearScoringFunction({"Rating": 1.0}, name="hidden")
        job = Job(title="opaque-job", function=OpaqueScoringFunction(hidden, name="opaque-job"))
        assert not job.is_transparent
        ranking = job.ranking(small_population)
        assert ranking.uids == hidden.rank(small_population).uids

    def test_describe(self, writing_job):
        text = writing_job.describe()
        assert "Content writing" in text
        assert "write articles" in text


class TestMarketplace:
    def test_add_and_lookup_job(self, marketplace, writing_job):
        assert marketplace.job("Content writing") is writing_job
        assert "Content writing" in marketplace
        assert len(marketplace) == 1

    def test_duplicate_job_title_rejected(self, marketplace, writing_job):
        with pytest.raises(MarketplaceError):
            marketplace.add_job(writing_job)
        marketplace.add_job(writing_job, replace=True)  # replace allowed

    def test_unknown_job_lists_available(self, marketplace):
        with pytest.raises(MarketplaceError) as excinfo:
            marketplace.job("ghost")
        assert "Content writing" in str(excinfo.value)

    def test_job_function_validated_against_schema(self, small_population):
        market = Marketplace(name="m", workers=small_population)
        bad = Job(title="bad", function=LinearScoringFunction({"NotAColumn": 1.0}, name="bad"))
        with pytest.raises(Exception):
            market.add_job(bad)

    def test_workers_must_be_dataset(self):
        with pytest.raises(MarketplaceError):
            Marketplace(name="m", workers=[1, 2, 3])

    def test_ranking_and_candidates_for(self, marketplace):
        ranking = marketplace.ranking_for("Content writing")
        candidates = marketplace.candidates_for("Content writing")
        assert len(ranking) == len(candidates)

    def test_summary_and_describe(self, marketplace):
        summary = marketplace.summary()
        assert summary["marketplace"] == "test-market"
        assert summary["jobs"] == 1
        assert "Content writing" in marketplace.describe()

    def test_iteration(self, marketplace):
        assert [job.title for job in marketplace] == ["Content writing"]
        assert marketplace.job_titles == ("Content writing",)
