"""LRU cache semantics: hits, misses, evictions, costs, single-flight."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import CacheStats, LRUCache


class TestBasicSemantics:
    def test_miss_then_hit(self):
        cache = LRUCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", 41)
        assert cache.get("k") == 41
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.entries == 1

    def test_put_replaces_value_and_cost(self):
        cache = LRUCache(capacity=4)
        cache.put("k", "old", cost=10.0)
        cache.put("k", "new", cost=2.0)
        assert cache.get("k") == "new"
        assert cache.stats.total_cost == pytest.approx(2.0)
        assert len(cache) == 1

    def test_contains_and_invalidate(self):
        cache = LRUCache(capacity=4)
        cache.put("k", 1)
        assert "k" in cache
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert "k" not in cache
        assert cache.stats.total_cost == pytest.approx(0.0)

    def test_clear_keeps_counters(self):
        cache = LRUCache(capacity=4)
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)
        with pytest.raises(ValueError):
            LRUCache(capacity=4, max_cost=0)


class TestEviction:
    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_cost_bound_evicts_lru_until_fitting(self):
        cache = LRUCache(capacity=10, max_cost=10.0)
        cache.put("a", 1, cost=4.0)
        cache.put("b", 2, cost=4.0)
        cache.put("c", 3, cost=4.0)  # 12 > 10: evict a
        assert "a" not in cache
        assert cache.stats.total_cost == pytest.approx(8.0)
        assert cache.stats.evictions == 1

    def test_oversized_entry_is_evicted_on_insert(self):
        # Regression: an entry costlier than max_cost used to be admitted and
        # then pinned forever by the `len(entries) > 1` guard of the budget
        # sweep, permanently busting the budget.
        cache = LRUCache(capacity=10, max_cost=5.0)
        cache.put("big", "value", cost=50.0)
        assert "big" not in cache
        assert len(cache) == 0
        assert cache.stats.total_cost == pytest.approx(0.0)
        assert cache.stats.evictions == 1

    def test_oversized_insert_keeps_cheaper_entries(self):
        # Refusing the oversized entry must not flush the entries that fit.
        cache = LRUCache(capacity=10, max_cost=5.0)
        cache.put("a", 1, cost=2.0)
        cache.put("b", 2, cost=2.0)
        cache.put("big", "value", cost=50.0)
        assert "a" in cache and "b" in cache and "big" not in cache
        assert cache.stats.total_cost == pytest.approx(4.0)

    def test_oversized_refresh_drops_the_existing_entry(self):
        # Refreshing a resident key with an oversized cost removes it: the
        # stale value must not keep serving under the budget it no longer fits.
        cache = LRUCache(capacity=10, max_cost=5.0)
        cache.put("k", "small", cost=1.0)
        cache.put("k", "huge", cost=9.0)
        assert "k" not in cache
        assert cache.stats.total_cost == pytest.approx(0.0)

    def test_total_cost_stays_exact_under_repeated_churn(self):
        # Regression: invalidate() used `-=`, so thousands of float add /
        # subtract cycles drifted total_cost away from the true sum.
        cache = LRUCache(capacity=10, max_cost=100.0)
        cache.put("anchor", 0, cost=3.3)
        for index in range(5000):
            cache.put("churn", index, cost=0.1)
            cache.invalidate("churn")
        assert cache.stats.total_cost == 3.3  # exact: recomputed, not drifted
        cache.clear()
        assert cache.stats.total_cost == 0.0

    def test_items_snapshot_preserves_recency_order(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1, cost=1.0)
        cache.put("b", 2, cost=2.0)
        cache.get("a")  # refresh: b becomes LRU
        assert cache.items() == (("b", 2, 2.0), ("a", 1, 1.0))


class TestGetOrCompute:
    def test_computes_once_then_hits(self):
        cache = LRUCache(capacity=4)
        calls = []

        def produce():
            calls.append(1)
            return "value"

        value, hit = cache.get_or_compute("k", produce)
        assert (value, hit) == ("value", False)
        value, hit = cache.get_or_compute("k", produce)
        assert (value, hit) == ("value", True)
        assert len(calls) == 1

    def test_cost_callback_is_applied(self):
        cache = LRUCache(capacity=4)
        cache.get_or_compute("k", lambda: "abc", cost=lambda v: float(len(v)))
        assert cache.stats.total_cost == pytest.approx(3.0)

    def test_producer_error_propagates_and_key_stays_absent(self):
        cache = LRUCache(capacity=4)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert "k" not in cache
        # The key is computable again afterwards.
        value, hit = cache.get_or_compute("k", lambda: 7)
        assert (value, hit) == (7, False)

    def test_concurrent_same_key_runs_producer_once(self):
        cache = LRUCache(capacity=4)
        entered = threading.Event()
        release = threading.Event()
        calls = []

        def slow_produce():
            calls.append(1)
            entered.set()
            release.wait(timeout=5)
            return "value"

        outcomes = []

        def worker():
            outcomes.append(cache.get_or_compute("k", slow_produce))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        assert entered.wait(timeout=5)
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(calls) == 1, "producer must run exactly once"
        assert all(value == "value" for value, _ in outcomes)
        # Exactly one caller computed; the waiters observed a hit.
        assert sum(1 for _, hit in outcomes if not hit) == 1


class TestStats:
    def test_hit_rate_and_describe(self):
        stats = CacheStats(hits=3, misses=1, evictions=0, entries=2, total_cost=5.0)
        assert stats.requests == 4
        assert stats.hit_rate == pytest.approx(0.75)
        assert "75% hit rate" in stats.describe()
        assert stats.as_dict()["hits"] == 3

    def test_untouched_cache_has_zero_hit_rate(self):
        assert LRUCache().stats.hit_rate == 0.0
