"""The analysis engine, baseline ratchet, CLI and CI gate end to end.

The rule-level fixtures live in ``test_analysis_rules.py``; this module
covers everything around them: the self-lint invariant (the committed
tree is clean against the committed baseline), the rule self-test
harness, the baseline diff/ratchet semantics (including a hypothesis
round-trip property), ``fairank lint`` and ``scripts/check_analysis.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_TARGETS,
    Baseline,
    Finding,
    all_rules,
    baseline_from_findings,
    rule_ids,
    run_analysis,
)
from repro.analysis.selftest import SELFTEST_CASES, run_selftest
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestSelfLint:
    """The repository must pass its own gate."""

    def test_committed_tree_is_clean_against_committed_baseline(self):
        baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
        assert baseline_path.is_file(), "the baseline ratchet must be committed"
        baseline = Baseline.load(baseline_path)
        targets = [
            REPO_ROOT / target
            for target in DEFAULT_TARGETS
            if (REPO_ROOT / target).exists()
        ]
        report = run_analysis(targets, root=REPO_ROOT, baseline=baseline)
        assert not report.diff.new, "\n".join(
            finding.text() for finding in report.diff.new
        )
        assert not report.diff.stale, (
            "stale baseline entries: run 'fairank lint --update-baseline' "
            f"-> {report.diff.stale}"
        )
        assert report.files_analyzed > 50

    def test_selftest_every_rule_detects_its_seed(self):
        results = run_selftest()
        assert set(results) == set(rule_ids())
        rotted = sorted(rule for rule, count in results.items() if count == 0)
        assert not rotted, f"rules no longer detect their seeds: {rotted}"

    def test_rule_catalogue_shape(self):
        rules = all_rules()
        assert len(rules) == len(SELFTEST_CASES)
        for rule in rules:
            assert rule.id and rule.name and rule.description
            assert rule.severity in ("error", "warning")


def _finding(path: str, rule: str, line: int = 1) -> Finding:
    return Finding(path=path, line=line, col=1, rule=rule, message="m")


class TestBaseline:
    def test_new_finding_fails_the_diff(self):
        diff = Baseline().diff([_finding("a.py", "FL103")])
        assert len(diff.new) == 1 and not diff.masked and not diff.stale

    def test_masked_finding_passes(self):
        baseline = Baseline(entries={"a.py": {"FL103": 1}})
        diff = baseline.diff([_finding("a.py", "FL103")])
        assert not diff.new and len(diff.masked) == 1 and not diff.stale

    def test_count_overflow_is_new(self):
        baseline = Baseline(entries={"a.py": {"FL103": 1}})
        diff = baseline.diff(
            [_finding("a.py", "FL103", line=1), _finding("a.py", "FL103", line=2)]
        )
        assert len(diff.masked) == 1 and len(diff.new) == 1

    def test_fixed_violation_leaves_stale_slack(self):
        baseline = Baseline(entries={"a.py": {"FL103": 2}})
        diff = baseline.diff([_finding("a.py", "FL103")])
        assert diff.stale == (("a.py", "FL103", 1),)

    def test_load_rejects_wrong_version(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "entries": {}}', encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(bad)

    def test_to_text_drops_zero_counts(self):
        baseline = Baseline(entries={"a.py": {"FL103": 0}, "b.py": {"FL102": 1}})
        payload = json.loads(baseline.to_text())
        assert payload["entries"] == {"b.py": {"FL102": 1}}

    @given(
        entries=st.dictionaries(
            st.from_regex(r"[a-z]{1,8}\.py", fullmatch=True),
            st.dictionaries(
                st.from_regex(r"FL[0-9]{3}", fullmatch=True),
                st.integers(min_value=1, max_value=5),
                min_size=1,
                max_size=3,
            ),
            max_size=4,
        )
    )
    @settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_baseline_round_trips_losslessly(self, tmp_path, entries):
        """save -> load preserves the mask, and a finding set built from
        the mask diffs to exactly (no new, no stale, all masked)."""
        findings = [
            _finding(path, rule, line=index)
            for path, rules in entries.items()
            for rule, count in rules.items()
            for index in range(1, count + 1)
        ]
        baseline = baseline_from_findings(findings)
        target = tmp_path / "baseline.json"
        baseline.save(target)
        reloaded = Baseline.load(target)
        assert reloaded.entries == baseline.entries
        assert reloaded.total == len(findings)
        diff = reloaded.diff(findings)
        assert not diff.new
        assert not diff.stale
        assert len(diff.masked) == len(findings)
        # Serialisation is canonical: a second round trip is byte-identical.
        assert reloaded.to_text() == baseline.to_text()


def _violating_tree(root: Path) -> Path:
    relpath, source = SELFTEST_CASES["FL103"]
    target = root / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


class TestLintCommand:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        output = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in output

    def test_clean_tree_exits_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "tidy.py").write_text("value = 1\n", encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violations_exit_one_and_print_findings(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        _violating_tree(tmp_path)
        assert main(["lint", str(tmp_path)]) == 1
        assert "FL103" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _violating_tree(tmp_path)
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is True
        assert payload["findings"][0]["rule"] == "FL103"

    def test_update_baseline_then_masked_run_passes(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        _violating_tree(tmp_path)
        baseline = tmp_path / "mask.json"
        assert main(
            ["lint", "--baseline", str(baseline), "--update-baseline",
             str(tmp_path)]
        ) == 0
        assert baseline.is_file()
        capsys.readouterr()
        assert main(["lint", "--baseline", str(baseline), str(tmp_path)]) == 0
        assert "1 baseline-masked" in capsys.readouterr().out

    def test_default_baseline_is_picked_up_from_cwd(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        _violating_tree(tmp_path)
        assert main(["lint", "--update-baseline", str(tmp_path)]) == 0
        assert (tmp_path / DEFAULT_BASELINE_NAME).is_file()
        capsys.readouterr()
        assert main(["lint", str(tmp_path)]) == 0

    def test_missing_explicit_baseline_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "tidy.py").write_text("value = 1\n", encoding="utf-8")
        assert main(
            ["lint", "--baseline", str(tmp_path / "nope.json"), str(tmp_path)]
        ) == 2

    def test_missing_lint_path_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path / "ghost")]) == 2


class TestCheckAnalysisGate:
    """``scripts/check_analysis.py`` exactly as CI runs it."""

    @staticmethod
    def _run_gate(*args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_analysis.py"),
             *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PATH": "/usr/bin:/bin"},
        )

    def test_gate_passes_on_repo_with_selftest(self, tmp_path):
        output = tmp_path / "findings.json"
        completed = self._run_gate("--self-test", "--output", str(output))
        assert completed.returncode == 0, completed.stderr
        assert "analysis check OK" in completed.stdout
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["failed"] is False
        assert payload["findings"] == []

    def test_gate_fails_on_a_violating_tree(self, tmp_path):
        root = tmp_path / "project"
        (root / "src").mkdir(parents=True)
        _violating_tree(root / "src")
        completed = self._run_gate("--root", str(root))
        assert completed.returncode == 1
        assert "FL103" in completed.stderr
