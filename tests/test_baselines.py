"""Tests for repro.baselines.predefined."""

import pytest

from repro.baselines.predefined import (
    best_single_attribute,
    predefined_groups_baseline,
    single_attribute_baseline,
)
from repro.core.formulations import Formulation, Objective
from repro.core.partition import Partitioning
from repro.core.quantify import quantify
from repro.core.unfairness import unfairness
from repro.data.dataset import Dataset
from repro.data.schema import Schema, observed, protected
from repro.errors import PartitioningError
from repro.scoring.linear import LinearScoringFunction


class TestSingleAttributeBaseline:
    def test_one_result_per_multivalued_attribute(self, table1_dataset, table1_function):
        results = single_attribute_baseline(
            table1_dataset, table1_function,
            attributes=["Gender", "Country", "Language", "Ethnicity"],
        )
        assert {r.attribute for r in results} == {"Gender", "Country", "Language", "Ethnicity"}

    def test_results_sorted_best_first_for_most_unfair(self, table1_dataset, table1_function):
        results = single_attribute_baseline(
            table1_dataset, table1_function, attributes=["Gender", "Country", "Language"]
        )
        values = [r.unfairness for r in results]
        assert values == sorted(values, reverse=True)

    def test_results_sorted_for_least_unfair(self, table1_dataset, table1_function):
        formulation = Formulation(objective=Objective.LEAST_UNFAIR)
        results = single_attribute_baseline(
            table1_dataset, table1_function, formulation=formulation,
            attributes=["Gender", "Country", "Language"],
        )
        values = [r.unfairness for r in results]
        assert values == sorted(values)

    def test_values_match_flat_partitionings(self, table1_dataset, table1_function):
        results = single_attribute_baseline(
            table1_dataset, table1_function, attributes=["Gender", "Country"]
        )
        for result in results:
            flat = Partitioning.by_attributes(table1_dataset, [result.attribute])
            assert result.unfairness == pytest.approx(unfairness(flat, table1_function))

    def test_constant_attributes_are_skipped(self, table1_function):
        schema = Schema((
            protected("Const", domain=("only",)),
            protected("G", domain=("a", "b")),
            observed("Language Test"),
            observed("Rating"),
        ))
        rows = [
            {"Const": "only", "G": "a", "Language Test": 0.1, "Rating": 0.1},
            {"Const": "only", "G": "b", "Language Test": 0.9, "Rating": 0.9},
        ]
        dataset = Dataset.from_records(schema, rows)
        results = single_attribute_baseline(dataset, table1_function)
        assert {r.attribute for r in results} == {"G"}

    def test_all_constant_attributes_raise(self, table1_function):
        schema = Schema((
            protected("Const", domain=("only",)),
            observed("Language Test"), observed("Rating"),
        ))
        rows = [{"Const": "only", "Language Test": 0.5, "Rating": 0.5}] * 3
        dataset = Dataset.from_records(schema, rows)
        with pytest.raises(PartitioningError):
            single_attribute_baseline(dataset, table1_function)

    def test_best_single_attribute(self, table1_dataset, table1_function):
        best = best_single_attribute(
            table1_dataset, table1_function, attributes=["Gender", "Country", "Language"]
        )
        everything = single_attribute_baseline(
            table1_dataset, table1_function, attributes=["Gender", "Country", "Language"]
        )
        assert best.unfairness == max(r.unfairness for r in everything)

    def test_summary(self, table1_dataset, table1_function):
        best = best_single_attribute(table1_dataset, table1_function, attributes=["Gender"])
        summary = best.summary()
        assert summary["attribute"] == "Gender"
        assert summary["unfairness"] == pytest.approx(best.unfairness)


class TestSubgroupAdvantage:
    def test_quantify_measures_at_least_single_attribute_baseline(self):
        """The subgroup search dominates the single-attribute view on planted
        intersectional bias (the paper's positioning claim)."""
        schema = Schema((
            protected("Gender", domain=("F", "M")),
            protected("Age", domain=("young", "old")),
            observed("S"),
        ))
        rows = []
        for _ in range(15):
            rows.append({"Gender": "F", "Age": "old", "S": 0.05})
            rows.append({"Gender": "F", "Age": "young", "S": 0.95})
            rows.append({"Gender": "M", "Age": "old", "S": 0.95})
            rows.append({"Gender": "M", "Age": "young", "S": 0.95})
        dataset = Dataset.from_records(schema, rows)
        function = LinearScoringFunction({"S": 1.0})
        best_single = best_single_attribute(dataset, function)
        subgroup = quantify(dataset, function)
        assert subgroup.unfairness > best_single.unfairness


class TestPredefinedGroups:
    def test_explicit_groups(self, table1_dataset, table1_function):
        groups = {
            "top-half": [f"w{i}" for i in (2, 3, 4, 5, 7)],
            "bottom-half": [f"w{i}" for i in (1, 6, 8, 9, 10)],
        }
        partitioning, value = predefined_groups_baseline(
            table1_dataset, table1_function, groups
        )
        assert len(partitioning) == 2
        assert value > 0.0

    def test_groups_must_cover_everyone(self, table1_dataset, table1_function):
        groups = {"some": ["w1", "w2"]}
        with pytest.raises(PartitioningError):
            predefined_groups_baseline(table1_dataset, table1_function, groups)

    def test_groups_must_be_disjoint(self, table1_dataset, table1_function):
        groups = {
            "a": [f"w{i}" for i in range(1, 6)],
            "b": [f"w{i}" for i in range(5, 11)],
        }
        with pytest.raises(PartitioningError):
            predefined_groups_baseline(table1_dataset, table1_function, groups)
