"""Tests for repro.scoring.library."""

import pytest

from repro.errors import ScoringError
from repro.scoring.base import Ranking
from repro.scoring.library import ScoringLibrary, weight_sweep
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import RankDerivedScorer


@pytest.fixture
def library():
    return ScoringLibrary([
        LinearScoringFunction({"Skill": 0.7, "Rating": 0.3}, name="writing"),
        LinearScoringFunction({"Skill": 0.2, "Rating": 0.8}, name="support"),
    ])


class TestScoringLibrary:
    def test_register_and_get(self, library):
        assert library.get("writing").name == "writing"
        assert "support" in library
        assert len(library) == 2
        assert set(library.names) == {"writing", "support"}

    def test_duplicate_registration_rejected(self, library):
        with pytest.raises(ScoringError):
            library.register(LinearScoringFunction({"Skill": 1.0}, name="writing"))

    def test_replace_allows_overwrite(self, library):
        replacement = LinearScoringFunction({"Rating": 1.0}, name="writing")
        library.register(replacement, replace=True)
        assert library.get("writing") is replacement

    def test_unknown_name_raises_with_available_list(self, library):
        with pytest.raises(ScoringError) as excinfo:
            library.get("ghost")
        assert "writing" in str(excinfo.value)

    def test_iteration_and_describe(self, library):
        assert len(list(library)) == 2
        descriptions = library.describe()
        assert any("writing" in text for text in descriptions)

    def test_variants_of_registers_numbered_variants(self, library):
        variants = library.variants_of("writing", [{"Skill": 1.0}, {"Rating": 1.0}])
        assert [v.name for v in variants] == ["writing#1", "writing#2"]
        assert "writing#1" in library

    def test_variants_of_without_registering(self, library):
        library.variants_of("writing", [{"Skill": 1.0}], register=False)
        assert "writing#1" not in library

    def test_variants_of_non_linear_function_rejected(self):
        library = ScoringLibrary()
        library.register(RankDerivedScorer(Ranking((("a", 1.0), ("b", 0.5))), name="ranks"))
        with pytest.raises(ScoringError):
            library.variants_of("ranks", [{"Skill": 1.0}])


class TestWeightSweep:
    def test_two_attribute_sweep_covers_extremes(self):
        grid = weight_sweep(["A", "B"], steps=5)
        as_tuples = {tuple(sorted(weights.items())) for weights in grid}
        assert (("A", 0.0), ("B", 1.0)) in as_tuples
        assert (("A", 1.0), ("B", 0.0)) in as_tuples

    def test_sweep_points_sum_to_one(self):
        for weights in weight_sweep(["A", "B", "C"], steps=4):
            assert sum(weights.values()) == pytest.approx(1.0)

    def test_sweep_has_no_duplicates(self):
        grid = weight_sweep(["A", "B"], steps=5)
        keys = [tuple(sorted((k, round(v, 9)) for k, v in weights.items())) for weights in grid]
        assert len(keys) == len(set(keys))

    def test_sweep_validates_inputs(self):
        with pytest.raises(ScoringError):
            weight_sweep(["A"], steps=5)
        with pytest.raises(ScoringError):
            weight_sweep(["A", "B"], steps=1)

    def test_sweep_points_are_valid_scoring_functions(self):
        for weights in weight_sweep(["Skill", "Rating"], steps=3):
            if sum(weights.values()) > 0:
                LinearScoringFunction(weights)  # should not raise
