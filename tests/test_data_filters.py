"""Tests for repro.data.filters."""

import pytest

from repro.data.dataset import Dataset, Individual
from repro.data.filters import And, Between, Equals, OneOf, Or, TrueFilter, apply_filter
from repro.data.schema import Schema, observed, protected
from repro.errors import UnknownAttributeError


@pytest.fixture
def individual():
    return Individual("w1", {"Gender": "F", "City": "NY", "Age": 29, "Rating": 0.8})


@pytest.fixture
def dataset():
    schema = Schema((
        protected("Gender", domain=("F", "M")),
        protected("City", domain=("NY", "SF")),
        protected("Age"),
        observed("Rating"),
    ))
    rows = [
        {"Gender": "F", "City": "NY", "Age": 29, "Rating": 0.8},
        {"Gender": "M", "City": "NY", "Age": 41, "Rating": 0.5},
        {"Gender": "F", "City": "SF", "Age": 35, "Rating": 0.6},
        {"Gender": "M", "City": "SF", "Age": 23, "Rating": 0.3},
    ]
    return Dataset.from_records(schema, rows, name="filter-test")


class TestAtomicFilters:
    def test_true_filter_matches_everything(self, individual):
        assert TrueFilter().matches(individual)
        assert TrueFilter().describe() == "all individuals"

    def test_equals(self, individual):
        assert Equals("Gender", "F").matches(individual)
        assert not Equals("Gender", "M").matches(individual)
        assert "Gender" in Equals("Gender", "F").describe()

    def test_equals_missing_attribute_does_not_match(self, individual):
        assert not Equals("Missing", "F").matches(individual)
        # Missing attribute should not even match None.
        assert not Equals("Missing", None).matches(individual)

    def test_one_of(self, individual):
        assert OneOf("City", ["NY", "SF"]).matches(individual)
        assert not OneOf("City", ["LA"]).matches(individual)

    def test_between(self, individual):
        assert Between("Age", 18, 30).matches(individual)
        assert not Between("Age", 30, 40).matches(individual)
        assert not Between("Gender", 0, 1).matches(individual)  # non-numeric value

    def test_between_describe(self):
        assert Between("Age", 18, 30).describe() == "18 <= Age <= 30"


class TestCombinators:
    def test_and(self, individual):
        combined = Equals("Gender", "F") & Equals("City", "NY")
        assert combined.matches(individual)
        assert not (Equals("Gender", "F") & Equals("City", "SF")).matches(individual)

    def test_or(self, individual):
        combined = Equals("City", "LA") | Equals("Gender", "F")
        assert combined.matches(individual)
        assert not (Equals("City", "LA") | Equals("Gender", "M")).matches(individual)

    def test_not(self, individual):
        assert (~Equals("Gender", "M")).matches(individual)
        assert not (~Equals("Gender", "F")).matches(individual)

    def test_nested_describe_mentions_all_parts(self, individual):
        combined = (Equals("Gender", "F") & Between("Age", 18, 30)) | Equals("City", "LA")
        text = combined.describe()
        assert "Gender" in text and "Age" in text and "City" in text

    def test_empty_and_matches_everything(self, individual):
        assert And(()).matches(individual)
        assert And(()).describe() == "all individuals"

    def test_empty_or_matches_nothing(self, individual):
        assert not Or(()).matches(individual)

    def test_combinator_equality(self):
        a = Equals("Gender", "F") & Equals("City", "NY")
        b = Equals("Gender", "F") & Equals("City", "NY")
        assert a == b
        assert hash(a) == hash(b)


class TestApplyFilter:
    def test_apply_filter_returns_matching_rows(self, dataset):
        result = apply_filter(dataset, Equals("Gender", "F"))
        assert len(result) == 2
        assert all(ind["Gender"] == "F" for ind in result)

    def test_apply_filter_records_description_in_name(self, dataset):
        result = apply_filter(dataset, Equals("City", "NY"))
        assert "City" in result.name

    def test_apply_filter_unknown_attribute_raises(self, dataset):
        with pytest.raises(UnknownAttributeError):
            apply_filter(dataset, Equals("Nope", "x"))

    def test_apply_filter_nested_unknown_attribute_raises(self, dataset):
        with pytest.raises(UnknownAttributeError):
            apply_filter(dataset, Equals("Gender", "F") & Equals("Ghost", 1))

    def test_apply_filter_composed(self, dataset):
        young_women = apply_filter(dataset, Equals("Gender", "F") & Between("Age", 18, 32))
        assert young_women.uids == ("w1",)

    def test_apply_true_filter_keeps_everything(self, dataset):
        assert len(apply_filter(dataset, TrueFilter())) == len(dataset)
