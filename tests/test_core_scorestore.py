"""Tests for the score materialization layer (repro.core.scorestore)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.formulations import Formulation, resolve_binning
from repro.core.partition import Partitioning, root_partition, split_partition
from repro.core.quantify import quantify
from repro.core.scorestore import ScoreStore
from repro.core.unfairness import unfairness, unfairness_breakdown
from repro.data.dataset import Dataset
from repro.errors import FormulationError
from repro.experiments.workloads import crowdsourcing_marketplace, synthetic_population
from repro.metrics.histogram import Binning, build_histogram
from repro.scoring.linear import LinearScoringFunction
from repro.service import BatchExecutor, FairnessService, QuantifyRequest


@pytest.fixture(scope="module")
def population() -> Dataset:
    return synthetic_population(size=600, seed=11)


@pytest.fixture(scope="module")
def function() -> LinearScoringFunction:
    return LinearScoringFunction({"Language Test": 0.6, "Rating": 0.4}, name="store-f")


class CountingFunction(LinearScoringFunction):
    """Counts score_dataset invocations and total rows scored."""

    def __init__(self, base: LinearScoringFunction) -> None:
        self.__dict__.update(base.__dict__)
        self.calls = 0
        self.rows = 0

    def score_dataset(self, dataset):
        self.calls += 1
        self.rows += len(dataset)
        return LinearScoringFunction.score_dataset(self, dataset)


class TestSlicing:
    def test_sliced_scores_equal_direct_scoring_bit_for_bit(self, population, function):
        store = ScoreStore(population, function)
        result = quantify(population, function, min_partition_size=5, store=store)
        for partition in result.partitioning:
            direct = function.score_dataset(partition.members)
            sliced = store.scores(partition)
            assert sliced.dtype == direct.dtype
            assert np.array_equal(sliced, direct)
            # Bit-for-bit: byte-level equality, not just numeric closeness.
            assert direct.tobytes() == np.asarray(sliced).tobytes()

    def test_root_partition_scores_are_the_full_vector(self, population, function):
        store = ScoreStore(population, function)
        root = root_partition(population)
        assert store.scores(root) is store.vector()

    def test_vector_is_computed_exactly_once(self, population, function):
        counting = CountingFunction(function)
        store = ScoreStore(population, counting)
        result = quantify(population, counting, min_partition_size=5, store=store)
        unfairness_breakdown(result.partitioning, counting, store=store)
        assert counting.calls == 1
        assert counting.rows == len(population)
        assert store.stats.scoring_passes == 1
        assert store.stats.fallback_scorings == 0

    def test_unmappable_partition_falls_back_to_direct_scoring(self, population, function):
        store = ScoreStore(population, function)
        other = synthetic_population(size=40, seed=99)
        foreign = root_partition(other)
        scores = store.scores(foreign)
        assert np.array_equal(scores, function.score_dataset(other))
        assert store.stats.fallback_scorings == 1

    def test_statistics_match_partition_statistics(self, population, function):
        store = ScoreStore(population, function)
        partition = root_partition(population)
        assert store.statistics(partition) == partition.statistics(function)

    def test_store_for_another_function_is_never_served(self, population, function):
        other = LinearScoringFunction({"Language Test": 0.9, "Rating": 0.1}, name="other")
        store = ScoreStore(population, function)
        quantify(population, function, min_partition_size=5, store=store)
        # Passing a store built for a different function must fall back to
        # that function's own scores, not silently serve the store's.
        mismatched = quantify(population, other, min_partition_size=5, store=store)
        reference = quantify(population, other, min_partition_size=5)
        assert mismatched.summary() == reference.summary()
        partition = root_partition(population)
        assert np.array_equal(
            partition.scores(other, store=store), other.score_dataset(population)
        )
        # A rebuilt, content-identical function (equal fingerprint) is served.
        twin = LinearScoringFunction(
            {"Language Test": 0.6, "Rating": 0.4}, name="renamed-twin"
        )
        assert store.serves(twin)
        assert not store.serves(other)

    def test_shared_store_never_reuses_entries_across_datasets(self, population, function):
        # Partitions of different datasets can share a constraints key (every
        # root has key ()); a shared store must not serve one dataset's
        # memoised scores for the other.
        store = ScoreStore(population, function)
        full = quantify(population, function, min_partition_size=5, store=store)
        subset = population.filter(lambda ind: ind["Gender"] == "Female", name="women")
        shared = quantify(subset, function, min_partition_size=5, store=store)
        private = quantify(subset, function, min_partition_size=5)
        assert shared.summary() == private.summary()
        assert shared.unfairness == private.unfairness
        # And the original dataset's results are unaffected by the interleaving.
        again = quantify(population, function, min_partition_size=5, store=store)
        assert again.summary() == full.summary()


class TestSplit:
    def test_store_split_matches_group_by_split(self, population, function):
        store = ScoreStore(population, function)
        parent = root_partition(population)
        for attribute in population.schema.protected_names:
            plain = split_partition(parent, attribute)
            stored = split_partition(parent, attribute, store=store)
            assert [c.label for c in stored] == [c.label for c in plain]
            assert [c.size for c in stored] == [c.size for c in plain]
            for fast, slow in zip(stored, plain):
                assert fast.members.uids == slow.members.uids
                assert fast.members.name == slow.members.name

    def test_candidate_split_histograms_match_materialized(self, population, function):
        store = ScoreStore(population, function)
        parent = root_partition(population)
        binning = Binning.unit()
        for attribute in population.schema.protected_names:
            attr = population.schema.require_protected(attribute)
            candidate = store.candidate_split(parent, attr, binning)
            assert candidate is not None
            values, sizes, histograms = candidate
            children = split_partition(parent, attribute)
            assert list(values) == [c.constraint_value(attribute) for c in children]
            assert list(sizes) == [c.size for c in children]
            for histogram, child in zip(histograms, children):
                direct = build_histogram(function.score_dataset(child.members), binning=binning)
                assert histogram.counts == direct.counts
                assert histogram.binning == direct.binning


class TestHistogramMemo:
    def test_hit_miss_accounting(self, population, function):
        store = ScoreStore(population, function)
        partition = root_partition(population)
        binning = Binning.unit()
        assert store.stats.histogram_requests == 0
        first = store.histogram(partition, binning)
        stats = store.stats
        assert (stats.histogram_hits, stats.histogram_misses) == (0, 1)
        second = store.histogram(partition, binning)
        stats = store.stats
        assert (stats.histogram_hits, stats.histogram_misses) == (1, 1)
        assert second is first  # the memo returns the same object
        store.histogram(partition, Binning.unit(bins=10))  # different binning: miss
        stats = store.stats
        assert (stats.histogram_hits, stats.histogram_misses) == (1, 2)
        assert stats.histogram_hit_rate == pytest.approx(1 / 3)

    def test_histograms_match_build_histogram(self, population, function):
        store = ScoreStore(population, function)
        partitioning = Partitioning.by_attributes(population, ["Gender"])
        for binning in (Binning.unit(), Binning.unit(bins=10), Binning(0.2, 0.9, 7)):
            for partition in partitioning:
                fast = store.histogram(partition, binning)
                slow = build_histogram(
                    function.score_dataset(partition.members), binning=binning
                )
                assert fast.counts == slow.counts

    def test_eviction_bound_respected(self, population, function):
        store = ScoreStore(population, function, max_partitions=4)
        partitioning = Partitioning.by_attributes(population, ["Gender", "Language"])
        assert len(partitioning) > 4
        for partition in partitioning:
            store.histogram(partition, Binning.unit())
        assert len(store) <= 4
        assert store.stats.evictions >= len(partitioning) - 4

    def test_rejects_non_positive_bound(self, population, function):
        with pytest.raises(ValueError):
            ScoreStore(population, function, max_partitions=0)

    def test_nan_scores_match_build_histogram(self, population):
        # np.histogram silently drops NaN; the store's bincount path must too.
        class NaNScorer(LinearScoringFunction):
            # Row-pure: whether an individual scores NaN depends only on the
            # individual, so direct and sliced scoring agree.
            def score_dataset(self, dataset):
                scores = np.array(LinearScoringFunction.score_dataset(self, dataset))
                for row, individual in enumerate(dataset):
                    if int(individual.uid.lstrip("w")) % 7 == 0:
                        scores[row] = float("nan")
                return scores

        scorer = NaNScorer({"Language Test": 0.5, "Rating": 0.5}, name="nan-f")
        store = ScoreStore(population, scorer)
        parent = root_partition(population)
        for binning in (Binning.unit(), Binning.unit(bins=9)):
            direct = build_histogram(scorer.score_dataset(population), binning=binning)
            assert store.histogram(parent, binning).counts == direct.counts
            for attribute in population.schema.protected_names:
                attr = population.schema.require_protected(attribute)
                candidate = store.candidate_split(parent, attr, binning)
                assert candidate is not None
                values, sizes, histograms = candidate
                children = split_partition(parent, attribute)
                # Sizes count members (NaN-scored included)...
                assert list(sizes) == [c.size for c in children]
                # ...while histogram counts drop NaN, like build_histogram.
                for histogram, child in zip(histograms, children):
                    direct = build_histogram(
                        scorer.score_dataset(child.members), binning=binning
                    )
                    assert histogram.counts == direct.counts


class TestQuantifyRegression:
    def test_same_tree_same_splits_fewer_scorings(self, population, function):
        counting_seed = CountingFunction(function)
        counting_store = CountingFunction(function)
        seed_result = quantify(
            population,
            counting_seed,
            min_partition_size=5,
            materialize=False,
        )
        store_result = quantify(population, counting_store, min_partition_size=5)
        # Identical search outcome...
        assert store_result.summary() == seed_result.summary()
        assert store_result.splits_evaluated == seed_result.splits_evaluated
        assert store_result.unfairness == seed_result.unfairness
        assert store_result.partitioning.labels == seed_result.partitioning.labels
        assert store_result.tree.summary() == seed_result.tree.summary()
        # ...with strictly less scoring work: one pass over the population.
        assert counting_store.calls == 1
        assert counting_store.rows == len(population)
        assert counting_seed.rows > counting_store.rows

    def test_breakdown_identical_with_store(self, population, function):
        result = quantify(population, function, min_partition_size=5)
        store = ScoreStore(population, function)
        plain = unfairness_breakdown(result.partitioning, function)
        stored = unfairness_breakdown(result.partitioning, function, store=store)
        assert stored.value == plain.value
        assert stored.pairwise == plain.pairwise
        assert stored.mean_scores == plain.mean_scores

    def test_unfairness_identical_with_store(self, population, function):
        partitioning = Partitioning.by_attributes(population, ["Gender", "Language"])
        store = ScoreStore(population, function)
        assert unfairness(partitioning, function, store=store) == unfairness(
            partitioning, function
        )

    def test_works_across_formulations(self, population, function):
        store = ScoreStore(population, function)
        for formulation in (
            Formulation(),
            Formulation.from_names(aggregation="maximum"),
            Formulation.from_names(objective="least_unfair"),
            Formulation.from_names(bins=10),
        ):
            with_store = quantify(
                population, function, formulation, min_partition_size=5, store=store
            )
            without = quantify(
                population, function, formulation, min_partition_size=5, materialize=False
            )
            assert with_store.summary() == without.summary()
        assert store.stats.scoring_passes == 1


class TestBinningResolution:
    def test_explicit_matching_binning_is_accepted(self):
        formulation = Formulation()
        assert resolve_binning(formulation, Binning.unit()) == Binning.unit()

    def test_mismatched_binning_raises(self, population, function):
        formulation = Formulation()  # unit binning, 5 bins
        with pytest.raises(FormulationError):
            resolve_binning(formulation, Binning.unit(bins=7))
        partitioning = Partitioning.single(population)
        with pytest.raises(FormulationError):
            unfairness(partitioning, function, formulation, binning=Binning(0.0, 2.0, 5))
        with pytest.raises(FormulationError):
            unfairness_breakdown(
                partitioning,
                function,
                formulation,
                binning=Binning.unit(bins=3),
            )

    def test_quantify_and_breakdown_share_one_default(self, population, function):
        formulation = Formulation.from_names(bins=9)
        result = quantify(population, function, formulation, min_partition_size=5)
        breakdown = unfairness_breakdown(result.partitioning, function, formulation)
        assert breakdown.value == result.unfairness


class TestThreadSafety:
    def test_concurrent_histogram_requests_are_consistent(self, population, function):
        store = ScoreStore(population, function)
        partitioning = Partitioning.by_attributes(population, ["Gender", "Language"])
        errors = []

        def worker():
            try:
                for _ in range(20):
                    for partition in partitioning:
                        histogram = store.histogram(partition, Binning.unit())
                        direct = build_histogram(
                            function.score_dataset(partition.members),
                            binning=Binning.unit(),
                        )
                        if histogram.counts != direct.counts:  # pragma: no cover
                            errors.append((partition.label, histogram.counts))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats.scoring_passes == 1

    def test_batch_executor_shares_one_store(self):
        service = FairnessService()
        service.register_dataset(synthetic_population(size=300, seed=7), name="pop")
        service.register_function(
            LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
        )
        requests = [
            QuantifyRequest(
                dataset="pop",
                function="balanced",
                aggregation=aggregation,
                min_partition_size=5,
            )
            for aggregation in ("average", "maximum", "minimum", "variance")
        ] * 2
        serial = BatchExecutor(service).run_serial(requests)
        fresh = FairnessService()
        fresh.register_dataset(synthetic_population(size=300, seed=7), name="pop")
        fresh.register_function(
            LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
        )
        batched = BatchExecutor(fresh, max_workers=8).run(requests)
        assert [r.canonical() for r in batched] == [r.canonical() for r in serial]
        # All four formulations share one (dataset, function) scoring pass.
        assert fresh.store_stats.scoring_passes == 1
        assert fresh.store_stats.stores == 1


class TestServicePool:
    def _service(self, **kwargs) -> FairnessService:
        service = FairnessService(**kwargs)
        service.register_dataset(synthetic_population(size=300, seed=7), name="pop")
        service.register_function(
            LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
        )
        return service

    def test_store_reuse_across_requests(self):
        service = self._service()
        service.execute(
            QuantifyRequest(dataset="pop", function="balanced", min_partition_size=5)
        )
        service.execute(
            QuantifyRequest(
                dataset="pop",
                function="balanced",
                aggregation="maximum",
                min_partition_size=5,
            )
        )
        stats = service.store_stats
        assert stats.stores == 1
        assert stats.hits >= 1
        assert stats.scoring_passes == 1

    def test_content_identical_dataset_shares_store(self):
        service = self._service()
        dataset = service.dataset("pop")
        rebuilt = Dataset(dataset.schema, list(dataset), name="copy")
        function = service.function("balanced")
        first = service.score_store(dataset, function)
        second = service.score_store(rebuilt, function)
        assert second is first
        # uid-mapped slicing over the rebuilt copy still avoids re-scoring.
        result = quantify(rebuilt, function, min_partition_size=5, store=second)
        reference = quantify(rebuilt, function, min_partition_size=5, materialize=False)
        assert result.summary() == reference.summary()
        assert second.stats.scoring_passes == 1

    def test_pool_is_bounded(self):
        service = self._service(max_stores=2)
        dataset = service.dataset("pop")
        for index in range(4):
            function = LinearScoringFunction(
                {"Language Test": 0.1 + index * 0.2, "Rating": 0.5}, name=f"f{index}"
            )
            service.score_store(dataset, function)
        assert service.store_stats.stores == 2
        assert service.store_stats.evictions == 2

    def test_rejects_non_positive_max_stores(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            FairnessService(max_stores=0)

    def test_store_stats_surfaced_in_service_result(self):
        service = self._service()
        result = service.execute(
            QuantifyRequest(dataset="pop", function="balanced", min_partition_size=5)
        )
        assert result.store_stats is not None
        assert result.store_stats["scoring_passes"] == 1
        assert "hit_rate" in result.store_stats
        # Serving metadata round-trips but stays out of the canonical bytes.
        round_tripped = type(result).from_json(result.to_json())
        assert round_tripped.store_stats == result.store_stats
        assert "store_stats" not in result.canonical()

    def test_audit_fanout_shares_scoring_passes(self):
        service = FairnessService()
        marketplace = crowdsourcing_marketplace(size=150, seed=7)
        service.register_marketplace(marketplace)
        report = service.audit_marketplace(marketplace.name, min_partition_size=5)
        assert len(report.audits) == len(marketplace)
        stats = service.store_stats
        # One store (and one scoring pass) per distinct (candidates, function)
        # pair — never more than one pass per audited job.
        assert stats.scoring_passes <= len(marketplace)
        assert stats.fallback_scorings == 0
