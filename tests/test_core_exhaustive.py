"""Tests for the exhaustive enumeration baseline."""

import pytest

from repro.core.exhaustive import (
    count_partitionings,
    enumerate_partitionings,
    exhaustive_search,
)
from repro.core.formulations import Formulation, Objective
from repro.core.quantify import quantify
from repro.core.unfairness import unfairness
from repro.data.dataset import Dataset
from repro.data.schema import Schema, observed, protected
from repro.errors import PartitioningError
from repro.scoring.linear import LinearScoringFunction


@pytest.fixture
def tiny_dataset():
    schema = Schema((
        protected("A", domain=("x", "y")),
        protected("B", domain=("p", "q")),
        observed("S"),
    ))
    rows = [
        {"A": "x", "B": "p", "S": 0.1},
        {"A": "x", "B": "q", "S": 0.3},
        {"A": "y", "B": "p", "S": 0.7},
        {"A": "y", "B": "q", "S": 0.9},
        {"A": "x", "B": "p", "S": 0.2},
        {"A": "y", "B": "q", "S": 0.8},
    ]
    return Dataset.from_records(schema, rows)


@pytest.fixture
def score_function():
    return LinearScoringFunction({"S": 1.0})


class TestEnumeration:
    def test_all_partitionings_are_valid(self, tiny_dataset):
        for partitioning in enumerate_partitionings(tiny_dataset):
            assert sum(partitioning.sizes) == len(tiny_dataset)
            assert len(partitioning) >= 2

    def test_count_for_two_binary_attributes(self, tiny_dataset):
        # Hierarchical partitionings over two binary attributes:
        # split A (2 leaves), split B (2), A then B on either/both children,
        # B then A on either/both children, minus duplicates.
        count = count_partitionings(tiny_dataset)
        assert count == 7

    def test_enumeration_is_deduplicated(self, tiny_dataset):
        keys = [p.key() for p in enumerate_partitionings(tiny_dataset)]
        assert len(keys) == len(set(keys))

    def test_trivial_partitioning_excluded_by_default(self, tiny_dataset):
        for partitioning in enumerate_partitionings(tiny_dataset):
            assert len(partitioning) > 1

    def test_trivial_partitioning_included_on_request(self, tiny_dataset):
        sizes = [len(p) for p in
                 enumerate_partitionings(tiny_dataset, require_multiple=False)]
        assert 1 in sizes

    def test_limit_enforced(self, tiny_dataset):
        with pytest.raises(PartitioningError):
            list(enumerate_partitionings(tiny_dataset, limit=2))

    def test_attribute_subset(self, tiny_dataset):
        partitionings = list(enumerate_partitionings(tiny_dataset, attributes=["A"]))
        assert len(partitionings) == 1
        assert set(partitionings[0].labels) == {"A=x", "A=y"}


class TestExhaustiveSearch:
    def test_finds_global_optimum(self, tiny_dataset, score_function):
        result = exhaustive_search(tiny_dataset, score_function)
        best_by_scan = max(
            unfairness(p, score_function)
            for p in enumerate_partitionings(tiny_dataset)
        )
        assert result.unfairness == pytest.approx(best_by_scan)
        assert result.explored == count_partitionings(tiny_dataset)

    def test_greedy_never_beats_exhaustive(self, tiny_dataset, score_function):
        greedy = quantify(tiny_dataset, score_function)
        exact = exhaustive_search(tiny_dataset, score_function)
        assert greedy.unfairness <= exact.unfairness + 1e-9

    def test_least_unfair_objective(self, tiny_dataset, score_function):
        formulation = Formulation(objective=Objective.LEAST_UNFAIR)
        result = exhaustive_search(tiny_dataset, score_function, formulation=formulation)
        worst = exhaustive_search(tiny_dataset, score_function)
        assert result.unfairness <= worst.unfairness

    def test_single_value_attributes_yield_trivial_result(self, score_function):
        schema = Schema((protected("A", domain=("only",)), observed("S")))
        rows = [{"A": "only", "S": 0.2}, {"A": "only", "S": 0.9}]
        dataset = Dataset.from_records(schema, rows)
        result = exhaustive_search(dataset, score_function)
        assert len(result.partitioning) == 1
        assert result.unfairness == 0.0

    def test_summary(self, tiny_dataset, score_function):
        result = exhaustive_search(tiny_dataset, score_function)
        summary = result.summary()
        assert summary["explored"] == result.explored
        assert summary["partitions"] == len(result.partitioning)

    def test_table1_gender_language_optimum(self, table1_dataset, table1_function):
        result = exhaustive_search(
            table1_dataset, table1_function, attributes=["Gender", "Language"]
        )
        # The optimum over these two attributes must be at least as unfair as
        # the flat single-attribute partitionings.
        from repro.core.partition import Partitioning

        for attribute in ("Gender", "Language"):
            flat = Partitioning.by_attributes(table1_dataset, [attribute])
            assert result.unfairness >= unfairness(flat, table1_function) - 1e-9
