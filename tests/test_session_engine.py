"""Tests for the FaiRank session engine (headless interactive system)."""

import pytest

from repro.core.formulations import Formulation, Objective
from repro.data.filters import Equals
from repro.errors import SessionError
from repro.scoring.linear import LinearScoringFunction
from repro.session.config import SessionConfig
from repro.session.engine import FaiRankEngine


@pytest.fixture
def engine(small_population):
    engine = FaiRankEngine()
    engine.register_dataset(small_population, name="workers")
    engine.register_function(
        LinearScoringFunction({"Language Test": 0.6, "Rating": 0.4}, name="writing")
    )
    engine.register_function(
        LinearScoringFunction({"Language Test": 0.1, "Rating": 0.9}, name="support")
    )
    return engine


CONFIG_KWARGS = {"attributes": ("Gender", "Country", "Language", "Ethnicity"),
                 "min_partition_size": 2}


class TestCatalogues:
    def test_registration_and_lookup(self, engine, small_population):
        assert "workers" in engine.dataset_names
        assert set(engine.function_names) == {"writing", "support"}
        assert engine.dataset("workers") is small_population
        assert engine.function("writing").name == "writing"

    def test_unknown_names_raise(self, engine):
        with pytest.raises(SessionError):
            engine.dataset("nope")
        with pytest.raises(Exception):
            engine.function("nope")

    def test_register_marketplace(self, crowdsourcing_marketplace_fixture):
        engine = FaiRankEngine()
        dataset_name, function_names = engine.register_marketplace(
            crowdsourcing_marketplace_fixture
        )
        assert dataset_name == crowdsourcing_marketplace_fixture.name
        assert set(function_names) <= set(engine.function_names)


class TestPanels:
    def test_open_panel_produces_valid_result(self, engine, small_population):
        panel = engine.open_panel(SessionConfig("workers", "writing", **CONFIG_KWARGS))
        assert panel.panel_id == "P1"
        assert sum(panel.result.partitioning.sizes) == len(small_population)
        assert panel.unfairness >= 0.0
        assert panel.partition_count >= 1

    def test_panel_ids_increment_and_lookup(self, engine):
        first = engine.open_panel(SessionConfig("workers", "writing", **CONFIG_KWARGS))
        second = engine.open_panel(SessionConfig("workers", "support", **CONFIG_KWARGS))
        assert (first.panel_id, second.panel_id) == ("P1", "P2")
        assert engine.panel("P2") is second
        assert engine.open_panels == ("P1", "P2")
        with pytest.raises(SessionError):
            engine.panel("P99")

    def test_close_panel(self, engine):
        panel = engine.open_panel(SessionConfig("workers", "writing", **CONFIG_KWARGS))
        engine.close_panel(panel.panel_id)
        assert panel.panel_id not in engine.open_panels

    def test_filter_restricts_population(self, engine, small_population):
        config = SessionConfig("workers", "writing",
                               row_filter=Equals("Language", "English"), **CONFIG_KWARGS)
        panel = engine.open_panel(config)
        assert len(panel.population) < len(small_population)

    def test_filter_matching_nothing_raises(self, engine):
        config = SessionConfig("workers", "writing",
                               row_filter=Equals("Language", "Klingon"), **CONFIG_KWARGS)
        with pytest.raises(SessionError):
            engine.open_panel(config)

    def test_anonymised_panel_is_k_anonymous(self, engine):
        from repro.anonymize.kanonymity import is_k_anonymous

        config = SessionConfig("workers", "writing", anonymity_k=5, **CONFIG_KWARGS)
        panel = engine.open_panel(config)
        assert is_k_anonymous(
            panel.population, panel.population.schema.protected_names, 5
        )

    def test_ranks_only_panel_uses_rank_derived_scorer(self, engine):
        config = SessionConfig("workers", "writing", use_ranks_only=True, **CONFIG_KWARGS)
        panel = engine.open_panel(config)
        assert panel.effective_function.transparent is False
        assert "from-ranks" in panel.effective_function.name

    def test_formulation_change_changes_value(self, engine):
        most = engine.open_panel(SessionConfig("workers", "writing", **CONFIG_KWARGS))
        least = engine.open_panel(SessionConfig(
            "workers", "writing",
            formulation=Formulation(objective=Objective.LEAST_UNFAIR), **CONFIG_KWARGS
        ))
        assert least.unfairness <= most.unfairness + 1e-9

    def test_general_and_node_boxes(self, engine):
        panel = engine.open_panel(SessionConfig("workers", "writing", **CONFIG_KWARGS))
        general = panel.general_box()
        assert general["unfairness"] == pytest.approx(panel.unfairness)
        assert general["partitions"] == panel.partition_count
        label = panel.partition_labels()[0]
        node = panel.node_box(label)
        assert node["label"] == label
        assert node["size"] > 0
        assert len(node["histogram_counts"]) == panel.config.formulation.bins

    def test_panel_render_contains_tree(self, engine):
        panel = engine.open_panel(SessionConfig("workers", "writing", **CONFIG_KWARGS))
        text = panel.render()
        assert "Panel P" in text
        assert "ALL" in text

    def test_compare_panels(self, engine):
        engine.open_panel(SessionConfig("workers", "writing", **CONFIG_KWARGS))
        engine.open_panel(SessionConfig("workers", "support", **CONFIG_KWARGS))
        table = engine.compare()
        assert len(table) == 2
        assert set(table.column("function")) == {"writing", "support"}

    def test_compare_empty_raises(self):
        engine = FaiRankEngine()
        with pytest.raises(SessionError):
            engine.compare()


class TestRoleShortcuts:
    def test_auditor_view(self, crowdsourcing_marketplace_fixture):
        engine = FaiRankEngine()
        report = engine.auditor_view(crowdsourcing_marketplace_fixture, min_partition_size=2)
        assert len(report.audits) == len(crowdsourcing_marketplace_fixture)

    def test_job_owner_view(self, crowdsourcing_marketplace_fixture):
        engine = FaiRankEngine()
        report = engine.job_owner_view(
            crowdsourcing_marketplace_fixture, "Content writing",
            sweep_steps=3, min_partition_size=2,
        )
        assert report.fairest is not None

    def test_end_user_view(self, crowdsourcing_marketplace_fixture):
        engine = FaiRankEngine()
        table = engine.end_user_view(
            {"Gender": "Female"}, [crowdsourcing_marketplace_fixture], "Content writing"
        )
        assert len(table) == 1
