"""Warm-start persistence: bundles round-trip, drift/truncation fall back cold."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.quantify import quantify
from repro.core.scorestore import ScoreStore
from repro.errors import WarmStartError
from repro.experiments.workloads import synthetic_population
from repro.metrics.histogram import Binning, build_histogram
from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.scoring.linear import LinearScoringFunction
from repro.service import FairnessService, QuantifyRequest


@pytest.fixture(scope="module")
def population():
    return synthetic_population(size=300, seed=7)


@pytest.fixture(scope="module")
def function():
    return LinearScoringFunction({"Language Test": 0.6, "Rating": 0.4}, name="warm-f")


def _warm_store(population, function) -> ScoreStore:
    store = ScoreStore(population, function)
    quantify(population, function, min_partition_size=5, store=store)
    return store


def _skip_count(reason: str) -> float:
    return get_registry().counter("fairank_warmstart_skips_total").value(reason=reason)


class TestScoreStoreBundle:
    def test_round_trip_is_byte_identical(self, tmp_path, population, function):
        store = _warm_store(population, function)
        manifest = store.save(tmp_path)
        loaded = ScoreStore.load(tmp_path, population, function)
        assert loaded.materialized
        # The loaded vector is the saved bytes, not a recomputation.
        assert loaded.vector().tobytes() == store.vector().tobytes()
        assert loaded.stats.scoring_passes == 0
        # Every persisted partition memo (entries with histograms) is back.
        assert len(loaded) == len(manifest["partitions"]) >= 1

    def test_loaded_histograms_are_served_from_the_memo(
        self, tmp_path, population, function
    ):
        store = ScoreStore(population, function)
        result = quantify(population, function, min_partition_size=5, store=store)
        store.save(tmp_path)
        loaded = ScoreStore.load(tmp_path, population, function)
        binning = Binning.unit()
        for partition in result.partitioning:
            direct = build_histogram(
                function.score_dataset(partition.members), binning=binning
            )
            assert loaded.histogram(partition, binning).counts == direct.counts
        stats = loaded.stats
        assert stats.histogram_hits >= 1
        assert stats.scoring_passes == 0  # warm all the way: no recompute

    def test_save_requires_a_materialized_vector(self, tmp_path, population, function):
        store = ScoreStore(population, function)
        with pytest.raises(WarmStartError) as excinfo:
            store.save(tmp_path)
        assert excinfo.value.reason == "cold"

    def test_missing_manifest_is_a_manifest_error(self, tmp_path, population, function):
        with pytest.raises(WarmStartError) as excinfo:
            ScoreStore.load(tmp_path, population, function)
        assert excinfo.value.reason == "manifest"

    def test_truncated_manifest_is_rejected(self, tmp_path, population, function):
        store = _warm_store(population, function)
        store.save(tmp_path)
        full = (tmp_path / "manifest.json").read_text(encoding="utf-8")
        (tmp_path / "manifest.json").write_text(full[: len(full) // 2], encoding="utf-8")
        with pytest.raises(WarmStartError) as excinfo:
            ScoreStore.load(tmp_path, population, function)
        assert excinfo.value.reason == "manifest"

    def test_dataset_drift_is_rejected(self, tmp_path, population, function):
        _warm_store(population, function).save(tmp_path)
        drifted = synthetic_population(size=300, seed=8)  # same rows, other content
        with pytest.raises(WarmStartError) as excinfo:
            ScoreStore.load(tmp_path, drifted, function)
        assert excinfo.value.reason == "fingerprint"

    def test_function_drift_is_rejected(self, tmp_path, population, function):
        _warm_store(population, function).save(tmp_path)
        other = LinearScoringFunction(
            {"Language Test": 0.3, "Rating": 0.7}, name="warm-f"
        )
        with pytest.raises(WarmStartError) as excinfo:
            ScoreStore.load(tmp_path, population, other)
        assert excinfo.value.reason == "fingerprint"

    def test_partial_vector_file_is_rejected(self, tmp_path, population, function):
        _warm_store(population, function).save(tmp_path)
        blob = (tmp_path / "vector.bin").read_bytes()
        (tmp_path / "vector.bin").write_bytes(blob[: len(blob) // 2])
        with pytest.raises(WarmStartError) as excinfo:
            ScoreStore.load(tmp_path, population, function)
        assert excinfo.value.reason == "truncated"

    def test_non_local_file_reference_is_rejected(self, tmp_path, population, function):
        _warm_store(population, function).save(tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        manifest["vector"] = "../outside.bin"
        (tmp_path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(WarmStartError) as excinfo:
            ScoreStore.load(tmp_path, population, function)
        assert excinfo.value.reason == "manifest"

    def test_corrupt_bin_codes_are_rejected(self, tmp_path, population, function):
        store = ScoreStore(population, function)
        result = quantify(population, function, min_partition_size=5, store=store)
        assert result is not None
        store.save(tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["bin_codes"], "search must have produced bin codes"
        codes_file = tmp_path / str(manifest["bin_codes"][0]["file"])
        np.full(len(population), 999, dtype=np.int64).tofile(codes_file)
        with pytest.raises(WarmStartError) as excinfo:
            ScoreStore.load(tmp_path, population, function)
        assert excinfo.value.reason == "truncated"


def _service() -> FairnessService:
    service = FairnessService()
    service.register_dataset(synthetic_population(size=300, seed=7), name="pop")
    service.register_function(
        LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    )
    return service


_REQUEST = QuantifyRequest(dataset="pop", function="balanced", min_partition_size=5)


class TestServiceWarmState:
    def test_round_trip_restores_stores_and_results(self, tmp_path):
        warm = _service()
        reference = warm.execute(_REQUEST)
        assert warm.save_warm_state(tmp_path) is not None

        restarted = _service()
        loaded = restarted.load_warm_state(tmp_path)
        assert loaded == {"stores": 1, "results": 1}
        # The store pool is populated without a single scoring pass...
        stats = restarted.store_stats
        assert stats.stores == 1
        assert stats.scoring_passes == 0
        # ...the repeated request is a byte-identical cache hit...
        replay = restarted.execute(_REQUEST)
        assert replay.cached
        assert replay.canonical() == reference.canonical()
        # ...and a *new* formulation over the same pair reuses the warm
        # vector instead of re-scoring.
        fresh_request = QuantifyRequest(
            dataset="pop", function="balanced",
            aggregation="maximum", min_partition_size=5,
        )
        novel = restarted.execute(fresh_request)
        assert not novel.cached and novel.error is None
        assert restarted.store_stats.scoring_passes == 0
        assert novel.canonical() == _service().execute(fresh_request).canonical()

    def test_warm_dir_parameter_is_used_by_default(self, tmp_path):
        warm = _service()
        warm.warm_dir = tmp_path
        warm.execute(_REQUEST)
        warm.save_warm_state()
        restarted = FairnessService(warm_dir=tmp_path)
        restarted.register_dataset(synthetic_population(size=300, seed=7), name="pop")
        restarted.register_function(
            LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
        )
        assert restarted.load_warm_state() == {"stores": 1, "results": 1}

    def test_without_warm_dir_is_a_noop(self, tmp_path):
        service = _service()
        assert service.load_warm_state() is None
        assert service.save_warm_state() is None

    def test_empty_directory_is_a_quiet_cold_boot(self, tmp_path):
        before = _skip_count("manifest")
        assert _service().load_warm_state(tmp_path) == {"stores": 0, "results": 0}
        assert _skip_count("manifest") == before  # no bundle is not an anomaly

    def test_truncated_store_falls_back_cold_with_metric_and_event(self, tmp_path):
        warm = _service()
        reference = warm.execute(_REQUEST)
        warm.save_warm_state(tmp_path)
        vector = tmp_path / "stores" / "store_00" / "vector.bin"
        vector.write_bytes(vector.read_bytes()[:64])

        before = _skip_count("truncated")
        captured = io.StringIO()
        logger = get_logger()
        logger.stream = captured
        try:
            loaded = _service().load_warm_state(tmp_path)
        finally:
            logger.stream = None
        assert loaded is not None and loaded["stores"] == 0
        assert _skip_count("truncated") == before + 1
        events = [json.loads(line) for line in captured.getvalue().splitlines()]
        skips = [event for event in events if event["event"] == "warmstart_skip"]
        assert skips and skips[0]["reason"] == "truncated"
        # The degraded service still answers — cold, and byte-identically.
        cold = _service()
        cold.load_warm_state(tmp_path)
        result = cold.execute(_REQUEST)
        assert result.error is None
        assert result.canonical() == reference.canonical()

    def test_catalog_drift_skips_results_but_loads_stores(self, tmp_path):
        warm = _service()
        warm.execute(_REQUEST)
        warm.save_warm_state(tmp_path)

        drifted = _service()
        drifted.register_function(
            LinearScoringFunction({"Language Test": 0.9, "Rating": 0.1}, name="skewed")
        )
        before = _skip_count("catalog_drift")
        loaded = drifted.load_warm_state(tmp_path)
        # The result cache is keyed on the whole catalog; the stores are
        # keyed on their own (dataset, function) pair and still load.
        assert loaded == {"stores": 1, "results": 0}
        assert _skip_count("catalog_drift") == before + 1

    def test_foreign_bundle_directory_is_skipped(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": "something-else", "version": 1}), encoding="utf-8"
        )
        before = _skip_count("manifest")
        assert _service().load_warm_state(tmp_path) == {"stores": 0, "results": 0}
        assert _skip_count("manifest") == before + 1

    def test_load_reports_bytes_restored(self, tmp_path):
        warm = _service()
        warm.execute(_REQUEST)
        warm.save_warm_state(tmp_path)
        counter = get_registry().counter("fairank_warmstart_bytes_total")
        before = counter.value()
        _service().load_warm_state(tmp_path)
        restored = counter.value() - before
        # At least the 300-row float64 vector must have been accounted.
        assert restored >= 300 * 8
