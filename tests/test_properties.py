"""Property-based tests on the core invariants (hypothesis).

These generate random small populations and scoring weights and check the
invariants the rest of the library relies on:

* every partitioning produced by QUANTIFY is full and disjoint;
* unfairness is non-negative and invariant under partition reordering;
* the greedy result never exceeds the exhaustive optimum (for the
  maximisation objective on small instances);
* rank-derived scores preserve the ordering induced by the true function.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.exhaustive import exhaustive_search
from repro.core.formulations import Formulation, Objective
from repro.core.partition import Partitioning
from repro.core.quantify import quantify
from repro.core.unfairness import unfairness
from repro.data.dataset import Dataset
from repro.data.schema import Schema, observed, protected
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import RankDerivedScorer

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_populations(draw):
    """Random populations with 2 binary/ternary protected attributes and 2 skills."""
    size = draw(st.integers(min_value=4, max_value=40))
    gender_domain = ("F", "M")
    region_domain = ("north", "south", "centre")
    schema = Schema((
        protected("Gender", domain=gender_domain),
        protected("Region", domain=region_domain),
        observed("Skill"),
        observed("Rating"),
    ))
    rows = []
    for _ in range(size):
        rows.append({
            "Gender": draw(st.sampled_from(gender_domain)),
            "Region": draw(st.sampled_from(region_domain)),
            "Skill": draw(st.floats(min_value=0.0, max_value=1.0)),
            "Rating": draw(st.floats(min_value=0.0, max_value=1.0)),
        })
    return Dataset.from_records(schema, rows, name="hyp-pop")


@st.composite
def weight_pairs(draw):
    skill = draw(st.floats(min_value=0.05, max_value=1.0))
    rating = draw(st.floats(min_value=0.05, max_value=1.0))
    return {"Skill": skill, "Rating": rating}


class TestQuantifyInvariants:
    @given(small_populations(), weight_pairs())
    @SETTINGS
    def test_partitioning_is_full_and_disjoint(self, dataset, weights):
        function = LinearScoringFunction(weights)
        result = quantify(dataset, function)
        covered = [uid for partition in result.partitioning for uid in partition.uids]
        assert sorted(covered) == sorted(dataset.uids)
        assert len(covered) == len(set(covered))

    @given(small_populations(), weight_pairs())
    @SETTINGS
    def test_unfairness_is_nonnegative_and_consistent(self, dataset, weights):
        function = LinearScoringFunction(weights)
        result = quantify(dataset, function)
        assert result.unfairness >= 0.0
        assert result.unfairness == pytest.approx(
            unfairness(result.partitioning, function, result.formulation)
        )

    @given(small_populations(), weight_pairs())
    @SETTINGS
    def test_greedy_never_exceeds_exhaustive_optimum(self, dataset, weights):
        function = LinearScoringFunction(weights)
        greedy = quantify(dataset, function)
        exact = exhaustive_search(dataset, function, limit=50_000)
        assert greedy.unfairness <= exact.unfairness + 1e-9

    @given(small_populations(), weight_pairs())
    @SETTINGS
    def test_least_unfair_never_exceeds_most_unfair(self, dataset, weights):
        function = LinearScoringFunction(weights)
        most = quantify(dataset, function)
        least = quantify(
            dataset, function, formulation=Formulation(objective=Objective.LEAST_UNFAIR)
        )
        assert least.unfairness <= most.unfairness + 1e-9


class TestUnfairnessInvariants:
    @given(small_populations(), weight_pairs())
    @SETTINGS
    def test_invariant_under_partition_reordering(self, dataset, weights):
        function = LinearScoringFunction(weights)
        partitioning = Partitioning.by_attributes(dataset, ["Gender", "Region"])
        reordered = Partitioning(dataset, tuple(reversed(partitioning.partitions)))
        assert unfairness(partitioning, function) == pytest.approx(
            unfairness(reordered, function)
        )

    @given(small_populations())
    @SETTINGS
    def test_constant_scores_give_zero_unfairness(self, dataset):
        constant = dataset.map_column("Skill", lambda _: 0.5)
        function = LinearScoringFunction({"Skill": 1.0})
        partitioning = Partitioning.by_attributes(constant, ["Gender"])
        if len(partitioning) > 1:
            assert unfairness(partitioning, function) == pytest.approx(0.0)

    @given(small_populations(), weight_pairs())
    @SETTINGS
    def test_scaling_all_scores_identically_preserves_zero(self, dataset, weights):
        """If all groups share the same score distribution the unfairness is 0."""
        function = LinearScoringFunction(weights)
        single = Partitioning.single(dataset)
        assert unfairness(single, function) == 0.0


class TestRankDerivedInvariants:
    @given(small_populations(), weight_pairs())
    @SETTINGS
    def test_rank_scores_are_monotone_in_true_scores(self, dataset, weights):
        function = LinearScoringFunction(weights)
        ranking = function.rank(dataset)
        scorer = RankDerivedScorer(ranking)
        true_scores = function.score_map(dataset)
        derived = scorer.score_map(dataset)
        uids = list(dataset.uids)
        for first in uids:
            for second in uids:
                if true_scores[first] > true_scores[second] + 1e-12:
                    assert derived[first] >= derived[second] - 1e-12

    @given(small_populations(), weight_pairs())
    @SETTINGS
    def test_rank_scores_span_unit_interval(self, dataset, weights):
        function = LinearScoringFunction(weights)
        scorer = RankDerivedScorer(function.rank(dataset))
        values = np.asarray(list(scorer.score_map(dataset).values()))
        assert values.min() >= 0.0 and values.max() <= 1.0
        if len(dataset) > 1:
            assert values.max() == pytest.approx(1.0)
            assert values.min() == pytest.approx(0.0)
