"""Property-based tests for the serving stack's round-trips (hypothesis).

The sharded deployment leans on two lossless encodings:

* **wire protocol v2** — a request routed through the shard router, a batch
  file or an HTTP body must rebuild into exactly the object the client
  constructed (``request_from_json(r.to_json()) == r``), and result
  envelopes must survive the same trip;
* **catalog snapshots** — every worker boots from ``Catalog.save`` output,
  so ``Catalog.load`` must reconstruct every resource with its content
  fingerprint intact (fingerprints are the routing keys *and* the cache
  keys — drift would split caches across the fleet).

Random generators draw every request kind, every formulation name and
random small catalogs; json.dumps round-trips ensure the payloads are
actual JSON, not just dicts.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, ResourceKind
from repro.core.formulations import Formulation
from repro.data.dataset import Dataset, Individual
from repro.data.schema import Schema, observed, protected
from repro.scoring.linear import LinearScoringFunction
from repro.service.jobs import (
    AuditRequest,
    BreakdownRequest,
    CompareRequest,
    EndUserRequest,
    JobOwnerRequest,
    QuantifyRequest,
    ServiceResult,
    SweepRequest,
    request_from_json,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CATALOG_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# -- shared strategies ---------------------------------------------------------

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_",
    min_size=1,
    max_size=12,
)
name_tuples = st.lists(names, min_size=1, max_size=4, unique=True).map(tuple)
optional_names = st.none() | name_tuples

formulation_fields = {
    "objective": st.sampled_from(["most_unfair", "least_unfair"]),
    "aggregation": st.sampled_from(["average", "maximum", "minimum", "variance"]),
    "distance": st.sampled_from(
        ["emd", "normalized_emd", "total_variation",
         "kolmogorov_smirnov", "jensen_shannon", "mean_gap"]
    ),
    "bins": st.integers(min_value=2, max_value=12),
}

weights = st.dictionaries(
    names, st.floats(min_value=0.01, max_value=10.0, allow_nan=False), min_size=1, max_size=4
)

group_values = st.one_of(
    names, st.integers(min_value=-100, max_value=100), st.booleans()
)


@st.composite
def quantify_requests(draw):
    return QuantifyRequest(
        dataset=draw(names),
        function=draw(names),
        attributes=draw(optional_names),
        max_depth=draw(st.none() | st.integers(min_value=1, max_value=9)),
        min_partition_size=draw(st.integers(min_value=1, max_value=20)),
        use_ranks_only=draw(st.booleans()),
        **{field: draw(strategy) for field, strategy in formulation_fields.items()},
    )


@st.composite
def audit_requests(draw):
    return AuditRequest(
        marketplace=draw(names),
        job=draw(st.none() | names),
        attributes=draw(optional_names),
        min_partition_size=draw(st.integers(min_value=1, max_value=20)),
        **{field: draw(strategy) for field, strategy in formulation_fields.items()},
    )


@st.composite
def compare_requests(draw):
    return CompareRequest(
        dataset=draw(names),
        functions=draw(name_tuples),
        attributes=draw(optional_names),
        max_depth=draw(st.none() | st.integers(min_value=1, max_value=9)),
        min_partition_size=draw(st.integers(min_value=1, max_value=20)),
        **{field: draw(strategy) for field, strategy in formulation_fields.items()},
    )


@st.composite
def breakdown_requests(draw):
    return BreakdownRequest(
        dataset=draw(names),
        function=draw(names),
        attributes=draw(optional_names),
        min_partition_size=draw(st.integers(min_value=1, max_value=20)),
        use_ranks_only=draw(st.booleans()),
        **{field: draw(strategy) for field, strategy in formulation_fields.items()},
    )


@st.composite
def sweep_requests(draw):
    explicit = draw(st.booleans())
    return SweepRequest(
        dataset=draw(names),
        function=draw(names),
        steps=draw(st.integers(min_value=2, max_value=9)),
        weights=(
            tuple(draw(st.lists(weights, min_size=1, max_size=3)))
            if explicit
            else None
        ),
        attributes=draw(optional_names),
        max_depth=draw(st.none() | st.integers(min_value=1, max_value=9)),
        min_partition_size=draw(st.integers(min_value=1, max_value=20)),
        **{field: draw(strategy) for field, strategy in formulation_fields.items()},
    )


@st.composite
def end_user_requests(draw):
    return EndUserRequest(
        group=tuple(
            draw(st.dictionaries(names, group_values, min_size=1, max_size=3)).items()
        ),
        marketplaces=draw(name_tuples),
        job=draw(names),
        **{field: draw(strategy) for field, strategy in formulation_fields.items()},
    )


@st.composite
def job_owner_requests(draw):
    return JobOwnerRequest(
        marketplace=draw(names),
        job=draw(names),
        sweep_steps=draw(st.integers(min_value=2, max_value=9)),
        min_partition_size=draw(st.integers(min_value=1, max_value=20)),
        **{field: draw(strategy) for field, strategy in formulation_fields.items()},
    )


any_request = st.one_of(
    quantify_requests(),
    audit_requests(),
    compare_requests(),
    breakdown_requests(),
    sweep_requests(),
    end_user_requests(),
    job_owner_requests(),
)


class TestRequestRoundTrips:
    @SETTINGS
    @given(request=any_request)
    def test_every_kind_survives_to_json_from_json(self, request):
        payload = request.to_json()
        assert payload["protocol"] == 2
        assert payload["kind"] == request.kind
        rebuilt = request_from_json(payload)
        assert rebuilt == request
        assert type(rebuilt) is type(request)

    @SETTINGS
    @given(request=any_request)
    def test_the_wire_form_is_real_json(self, request):
        # Through an actual byte encoding, exactly like the HTTP body path.
        over_the_wire = json.loads(json.dumps(request.to_json()))
        assert request_from_json(over_the_wire) == request

    @SETTINGS
    @given(request=any_request)
    def test_round_trips_are_idempotent(self, request):
        once = request_from_json(request.to_json())
        twice = request_from_json(once.to_json())
        assert twice == once == request


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    names,
)
json_payloads = st.dictionaries(
    names,
    st.one_of(json_scalars, st.lists(json_scalars, max_size=4)),
    max_size=5,
)


@st.composite
def service_results(draw):
    failed = draw(st.booleans())
    return ServiceResult(
        kind=draw(names),
        key=draw(names),
        payload={} if failed else draw(json_payloads),
        cached=draw(st.booleans()),
        elapsed_s=draw(st.floats(min_value=0, max_value=100, allow_nan=False)),
        store_stats=draw(st.none() | json_payloads),
        timings=draw(st.none() | json_payloads),
        error=(
            {"code": draw(names), "message": draw(names)} if failed else None
        ),
    )


class TestResultRoundTrips:
    @SETTINGS
    @given(result=service_results())
    def test_result_envelopes_survive_the_wire(self, result):
        rebuilt = ServiceResult.from_json(json.loads(json.dumps(result.to_json())))
        assert rebuilt == result
        assert rebuilt.canonical() == result.canonical()
        assert rebuilt.ok == result.ok


# -- catalog snapshots ---------------------------------------------------------


@st.composite
def datasets(draw):
    protected_names = draw(
        st.lists(names, min_size=1, max_size=2, unique=True)
    )
    observed_names = draw(
        st.lists(
            names.filter(lambda n: True), min_size=1, max_size=2, unique=True
        ).filter(lambda chosen: not set(chosen) & set(protected_names))
    )
    domains = {
        name: draw(st.lists(names, min_size=2, max_size=3, unique=True))
        for name in protected_names
    }
    schema = Schema(
        tuple(
            [protected(name, domain=tuple(domains[name])) for name in protected_names]
            + [observed(name) for name in observed_names]
        )
    )
    size = draw(st.integers(min_value=1, max_value=8))
    individuals = []
    for uid in range(size):
        values = {name: draw(st.sampled_from(domains[name])) for name in protected_names}
        for name in observed_names:
            values[name] = draw(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
            )
        individuals.append(Individual(uid=f"u{uid}", values=values))
    return Dataset(
        schema=schema,
        individuals=tuple(individuals),
        name=draw(names),
    )


@st.composite
def catalogs(draw):
    catalog = Catalog()
    drawn_datasets = draw(st.lists(datasets(), min_size=1, max_size=2))
    for index, dataset in enumerate(drawn_datasets):
        catalog.register(dataset, name=f"dataset-{index}", kind=ResourceKind.DATASET)
    functions = draw(st.lists(weights, min_size=1, max_size=2))
    for index, function_weights in enumerate(functions):
        catalog.register(
            LinearScoringFunction(function_weights, name=f"function-{index}"),
            kind=ResourceKind.FUNCTION,
        )
    if draw(st.booleans()):
        formulation = Formulation.from_names(
            objective=draw(formulation_fields["objective"]),
            aggregation=draw(formulation_fields["aggregation"]),
            distance=draw(formulation_fields["distance"]),
            bins=draw(formulation_fields["bins"]),
        )
        catalog.register(
            formulation, name="formulation-0", kind=ResourceKind.FORMULATION
        )
    return catalog


class TestCatalogSnapshotRoundTrips:
    @CATALOG_SETTINGS
    @given(catalog=catalogs())
    def test_random_catalogs_survive_save_load_with_fingerprints_intact(
        self, catalog
    ):
        with tempfile.TemporaryDirectory() as workdir:
            path = Path(workdir) / "snapshot.json"
            catalog.save(path)
            # load re-fingerprints every rebuilt resource and raises on
            # drift, so a successful load *is* the fingerprint property...
            reloaded = Catalog.load(path)
        # ... and the reloaded registry must agree entry by entry.
        original = {(r.kind.value, r.name): r.fingerprint for r in catalog.resources()}
        rebuilt = {(r.kind.value, r.name): r.fingerprint for r in reloaded.resources()}
        assert rebuilt == original

    @CATALOG_SETTINGS
    @given(catalog=catalogs())
    def test_snapshot_fingerprint_index_matches_the_registry(self, catalog):
        from repro.snapshot import snapshot_fingerprints

        with tempfile.TemporaryDirectory() as workdir:
            path = Path(workdir) / "snapshot.json"
            catalog.save(path)
            index = snapshot_fingerprints(path)
        assert index == {
            (r.kind.value, r.name): r.fingerprint for r in catalog.resources()
        }
