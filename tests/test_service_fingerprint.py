"""Fingerprint stability and sensitivity (cache-key correctness)."""

from __future__ import annotations


from repro.core.formulations import Aggregation, Formulation, Objective
from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.marketplace.generator import CrowdsourcingGenerator
from repro.scoring.base import ScoringFunction
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import OpaqueScoringFunction, RankDerivedScorer
from repro.service.fingerprint import (
    combine_fingerprints,
    fingerprint_dataset,
    fingerprint_formulation,
    fingerprint_function,
    fingerprint_value,
)


class ConstantScorer(ScoringFunction):
    """Module-level so instances are picklable (exercises the pickle fallback)."""

    name = "constant"

    def score_individual(self, individual):
        return 0.5


class TestDatasetFingerprint:
    def test_same_content_same_key(self):
        first = load_example_table1()
        second = load_example_table1()
        assert first is not second
        assert fingerprint_dataset(first) == fingerprint_dataset(second)

    def test_memoised_per_object(self):
        dataset = load_example_table1()
        assert fingerprint_dataset(dataset) == fingerprint_dataset(dataset)

    def test_different_rows_different_key(self):
        first = CrowdsourcingGenerator(seed=1).generate(50)
        second = CrowdsourcingGenerator(seed=2).generate(50)
        assert fingerprint_dataset(first) != fingerprint_dataset(second)

    def test_display_name_is_ignored(self):
        base = CrowdsourcingGenerator(seed=3).generate(30, name="one-name")
        renamed = CrowdsourcingGenerator(seed=3).generate(30, name="other-name")
        assert fingerprint_dataset(base) == fingerprint_dataset(renamed)

    def test_subset_differs_from_whole(self):
        dataset = load_example_table1()
        subset = dataset.select_uids(dataset.uids[:5])
        assert fingerprint_dataset(dataset) != fingerprint_dataset(subset)


class TestFunctionFingerprint:
    def test_same_weights_same_key(self):
        first = LinearScoringFunction(dict(TABLE1_WEIGHTS), name="f")
        second = LinearScoringFunction(dict(TABLE1_WEIGHTS), name="f")
        assert fingerprint_function(first) == fingerprint_function(second)

    def test_display_name_is_ignored(self):
        # Identical weights under different job names score identically, so
        # they must share cache entries (the request-level key re-adds the
        # requested name because payloads echo it).
        first = LinearScoringFunction(dict(TABLE1_WEIGHTS), name="Content writing")
        second = LinearScoringFunction(dict(TABLE1_WEIGHTS), name="Data labelling")
        assert fingerprint_function(first) == fingerprint_function(second)

    def test_one_changed_weight_changes_key(self):
        base = LinearScoringFunction({"Language Test": 0.7, "Rating": 0.3}, name="f")
        tweaked = LinearScoringFunction({"Language Test": 0.6, "Rating": 0.4}, name="f")
        assert fingerprint_function(base) != fingerprint_function(tweaked)

    def test_weight_order_is_irrelevant(self):
        first = LinearScoringFunction({"Language Test": 0.7, "Rating": 0.3}, name="f")
        second = LinearScoringFunction({"Rating": 0.3, "Language Test": 0.7}, name="f")
        assert fingerprint_function(first) == fingerprint_function(second)

    def test_rank_derived_scorer_fingerprints_by_ranking(self):
        dataset = load_example_table1()
        function = LinearScoringFunction(TABLE1_WEIGHTS, name="f")
        first = RankDerivedScorer(function.rank(dataset), name="g")
        second = RankDerivedScorer(function.rank(dataset), name="g")
        assert fingerprint_function(first) == fingerprint_function(second)
        exposure = RankDerivedScorer(function.rank(dataset), weighting="exposure", name="g")
        assert fingerprint_function(first) != fingerprint_function(exposure)

    def test_opaque_wrapper_distinct_from_hidden(self):
        hidden = LinearScoringFunction(TABLE1_WEIGHTS, name="f")
        opaque = OpaqueScoringFunction(hidden, name="f")
        assert fingerprint_function(opaque) != fingerprint_function(hidden)
        assert fingerprint_function(opaque) == fingerprint_function(
            OpaqueScoringFunction(LinearScoringFunction(TABLE1_WEIGHTS, name="f"), name="f")
        )

    def test_pickle_fallback_for_plain_functions(self):
        first, second = ConstantScorer(), ConstantScorer()
        # Picklable, structurally identical objects share a pickle-hash key.
        assert fingerprint_function(first) == fingerprint_function(second)

    def test_unpicklable_function_degrades_to_identity(self):
        class Closure(ScoringFunction):
            name = "closure"

            def __init__(self):
                self.fn = lambda individual: 0.5  # unpicklable payload

            def score_individual(self, individual):
                return self.fn(individual)

        first, second = Closure(), Closure()
        assert fingerprint_function(first) == fingerprint_function(first)
        assert fingerprint_function(first) != fingerprint_function(second)


class TestFormulationAndValues:
    def test_formulation_fields_feed_the_key(self):
        base = Formulation()
        assert fingerprint_formulation(base) == fingerprint_formulation(Formulation())
        assert fingerprint_formulation(base) != fingerprint_formulation(
            Formulation(objective=Objective.LEAST_UNFAIR)
        )
        assert fingerprint_formulation(base) != fingerprint_formulation(
            Formulation(aggregation=Aggregation.MAXIMUM)
        )
        assert fingerprint_formulation(base) != fingerprint_formulation(Formulation(bins=7))

    def test_value_encoding_distinguishes_types(self):
        assert fingerprint_value("1") != fingerprint_value(1)
        assert fingerprint_value(True) != fingerprint_value(1)
        assert fingerprint_value(None) != fingerprint_value("None")
        assert fingerprint_value([1, 2]) != fingerprint_value([2, 1])
        assert fingerprint_value({"a": 1, "b": 2}) == fingerprint_value({"b": 2, "a": 1})

    def test_combine_is_order_sensitive(self):
        assert combine_fingerprints("a", "b") != combine_fingerprints("b", "a")
        assert combine_fingerprints("a", None) != combine_fingerprints("a", "-")
