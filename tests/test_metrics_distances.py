"""Tests for repro.metrics.distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormulationError
from repro.metrics.distances import (
    EMDDistance,
    JensenShannonDistance,
    KolmogorovSmirnovDistance,
    MeanGapDistance,
    NormalizedEMDDistance,
    TotalVariationDistance,
    available_distances,
    get_distance,
)
from repro.metrics.histogram import Binning, build_histogram

BINNING = Binning.unit(5)


def _h(scores):
    return build_histogram(scores, binning=BINNING)


ALL_DISTANCES = [
    EMDDistance,
    NormalizedEMDDistance,
    TotalVariationDistance,
    KolmogorovSmirnovDistance,
    JensenShannonDistance,
    MeanGapDistance,
]


class TestRegistry:
    def test_available_names(self):
        names = available_distances()
        assert "emd" in names
        assert "total_variation" in names
        assert "mean_gap" in names

    def test_get_distance_roundtrip(self):
        for name in available_distances():
            assert get_distance(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(FormulationError):
            get_distance("no-such-distance")


class TestDistanceProperties:
    @pytest.mark.parametrize("distance", ALL_DISTANCES, ids=lambda d: d.name)
    def test_identity(self, distance):
        histogram = _h([0.1, 0.4, 0.4, 0.9])
        assert distance(histogram, histogram) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("distance", ALL_DISTANCES, ids=lambda d: d.name)
    def test_symmetry(self, distance):
        first = _h([0.1, 0.2, 0.3])
        second = _h([0.7, 0.8, 0.95])
        assert distance(first, second) == pytest.approx(distance(second, first))

    @pytest.mark.parametrize("distance", ALL_DISTANCES, ids=lambda d: d.name)
    def test_non_negative(self, distance):
        assert distance(_h([0.2]), _h([0.9])) >= 0.0

    @pytest.mark.parametrize("distance", ALL_DISTANCES, ids=lambda d: d.name)
    def test_binning_mismatch_rejected(self, distance):
        with pytest.raises(FormulationError):
            distance(build_histogram([0.5], bins=5), build_histogram([0.5], bins=7))

    @pytest.mark.parametrize(
        "distance",
        [NormalizedEMDDistance, TotalVariationDistance, KolmogorovSmirnovDistance,
         JensenShannonDistance, MeanGapDistance],
        ids=lambda d: d.name,
    )
    def test_bounded_by_one(self, distance):
        low = _h([0.0, 0.05])
        high = _h([0.95, 1.0])
        assert distance(low, high) <= 1.0 + 1e-9


class TestSpecificValues:
    def test_total_variation_of_disjoint_supports_is_one(self):
        assert TotalVariationDistance(_h([0.0]), _h([1.0])) == pytest.approx(1.0)

    def test_ks_distance_of_disjoint_supports_is_one(self):
        assert KolmogorovSmirnovDistance(_h([0.0]), _h([1.0])) == pytest.approx(1.0)

    def test_mean_gap_matches_difference_of_bin_centres(self):
        low = _h([0.05])   # bin centre 0.1
        high = _h([0.95])  # bin centre 0.9
        assert MeanGapDistance(low, high) == pytest.approx(0.8)

    def test_emd_sees_distance_that_tv_cannot(self):
        # TV treats "adjacent bin" and "opposite bin" the same; EMD does not.
        near = EMDDistance(_h([0.1]), _h([0.3]))
        far = EMDDistance(_h([0.1]), _h([0.9]))
        assert far > near
        assert TotalVariationDistance(_h([0.1]), _h([0.3])) == pytest.approx(
            TotalVariationDistance(_h([0.1]), _h([0.9]))
        )

    def test_jensen_shannon_is_finite_for_disjoint_supports(self):
        value = JensenShannonDistance(_h([0.0]), _h([1.0]))
        assert 0.0 < value <= 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50),
           st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_normalized_emd_always_in_unit_interval(self, first, second):
        value = NormalizedEMDDistance(_h(first), _h(second))
        assert 0.0 <= value <= 1.0 + 1e-9
