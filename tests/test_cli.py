"""Tests for the fairank command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quantify_defaults(self):
        args = build_parser().parse_args(["quantify"])
        assert args.command == "quantify"
        assert args.objective == "most_unfair"
        assert args.bins == 5
        assert not args.ranks_only

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestTable1Command:
    def test_prints_all_rows(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "w1" in output and "w10" in output
        assert "0.971" in output  # w7's published score


class TestQuantifyCommand:
    def test_default_runs_on_table1(self, capsys):
        assert main(["quantify", "--attributes", "Gender", "Language"]) == 0
        output = capsys.readouterr().out
        assert "unfairness:" in output
        assert "most favored:" in output
        assert "ALL" in output  # tree rendering

    def test_no_tree_flag(self, capsys):
        assert main(["quantify", "--attributes", "Gender", "--no-tree"]) == 0
        output = capsys.readouterr().out
        assert "unfairness:" in output
        assert "ALL (" not in output

    def test_least_unfair_objective_and_custom_weights(self, capsys):
        assert main([
            "quantify", "--objective", "least_unfair",
            "--weight", "Rating=1.0", "--attributes", "Gender", "Language",
        ]) == 0
        output = capsys.readouterr().out
        assert "minimise" in output

    def test_ranks_only(self, capsys):
        assert main(["quantify", "--ranks-only", "--attributes", "Gender"]) == 0
        assert "ranks only" in capsys.readouterr().out

    def test_invalid_weight_is_reported(self, capsys):
        assert main(["quantify", "--weight", "Rating"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_weight_attribute_is_reported(self, capsys):
        assert main(["quantify", "--weight", "NotAColumn=1.0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_csv_requires_column_lists(self, capsys):
        assert main(["quantify", "--csv", "whatever.csv"]) == 2
        assert "requires" in capsys.readouterr().err

    def test_csv_input(self, tmp_path, capsys):
        path = tmp_path / "workers.csv"
        rows = ["Gender,City,Skill"]
        rows += [f"F,NY,{0.2 + 0.01 * i}" for i in range(10)]
        rows += [f"M,SF,{0.7 + 0.01 * i}" for i in range(10)]
        path.write_text("\n".join(rows) + "\n", encoding="utf-8")
        assert main([
            "quantify", "--csv", str(path),
            "--protected", "Gender", "City", "--observed", "Skill",
        ]) == 0
        output = capsys.readouterr().out
        assert "unfairness:" in output
        # Gender and City are perfectly correlated in this toy file, so the
        # search may split on either; both isolate the low-scoring group.
        assert "City=" in output or "Gender=" in output


class TestAuditCommand:
    def test_audit_simulated_platform(self, capsys):
        assert main([
            "audit", "--platform", "taskrabbit-sim", "--workers", "120",
            "--min-partition-size", "5",
            "--attributes", "Gender", "Ethnicity",
        ]) == 0
        output = capsys.readouterr().out
        assert "Fairness report" in output
        assert "most unfair job" in output


class TestServeBatchPartialFailure:
    """Regression: a mixed batch exits 1 *and* reports every error in-slot."""

    def test_mixed_batch_exits_1_with_every_error_envelope(self, tmp_path, capsys):
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps([
            {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
            {"kind": "quantify", "dataset": "missing-data", "function": "table1-f"},
            {"kind": "compare", "dataset": "table1",
             "functions": ["table1-f", "balanced"]},
            {"kind": "audit", "marketplace": "missing-market"},
        ]))
        # Partial failure must be visible to scripts without parsing stdout.
        assert main(["serve-batch", str(path), "--market-size", "60"]) == 1
        output = capsys.readouterr().out
        # Every request still produced a row, in input order ...
        rows = [line for line in output.splitlines()
                if line.strip() and line.lstrip()[0].isdigit()]
        assert len(rows) == 4
        assert [row.split()[1] for row in rows] == [
            "quantify", "quantify", "compare", "audit",
        ]
        # ... the valid slots served, the invalid slots carry envelopes.
        assert "error" in rows[1] and "error" in rows[3]
        assert "! #2" in output and "unknown dataset 'missing-data'" in output
        assert "! #4" in output and "unknown marketplace 'missing-market'" in output
        assert "2 request(s) returned an error envelope" in output

    def test_mixed_batch_fails_in_serial_mode_too(self, tmp_path, capsys):
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps([
            {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
            {"kind": "quantify", "dataset": "missing-data", "function": "table1-f"},
        ]))
        assert main(["serve-batch", str(path), "--market-size", "60",
                     "--serial"]) == 1
        output = capsys.readouterr().out
        assert "! #2" in output and "unknown dataset 'missing-data'" in output

    def test_repeat_rounds_report_stable_per_request_errors(self, tmp_path, capsys):
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps([
            {"kind": "quantify", "dataset": "table1", "function": "table1-f"},
            {"kind": "quantify", "dataset": "missing-data", "function": "table1-f"},
        ]))
        assert main(["serve-batch", str(path), "--market-size", "60",
                     "--repeat", "2"]) == 1
        output = capsys.readouterr().out
        # Errors are never cached: both rounds fail the same single request,
        # and the summary counts per-request, not per-round.
        assert output.count("! #2") == 2
        assert "1 request(s) returned an error envelope" in output


class TestExperimentsCommand:
    def test_run_single_experiment(self, capsys):
        assert main(["experiments", "E1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "10/10 published scores reproduced" in output

    def test_run_two_experiments(self, capsys):
        assert main(["experiments", "E1", "E2"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E2" in output


class TestServeErrorPaths:
    """`fairank serve` must fail fast — exit 2 + a stderr message — for a
    registry it cannot boot, instead of binding a port it cannot serve."""

    def test_missing_snapshot_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nowhere.json"
        assert main(["serve", "--catalog", str(missing), "--port", "0"]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "cannot read catalog snapshot" in captured.err
        assert "serving fairness protocol v2" not in captured.out

    def test_missing_snapshot_file_exits_2_in_sharded_mode(self, tmp_path, capsys):
        missing = tmp_path / "nowhere.json"
        assert main(["serve", "--catalog", str(missing),
                     "--workers", "3", "--port", "0"]) == 2
        captured = capsys.readouterr()
        assert "cannot read catalog snapshot" in captured.err
        assert "serving fairness protocol v2" not in captured.out

    def test_drifted_dataset_fingerprint_exits_2(self, tmp_path, capsys):
        from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
        from repro.scoring.linear import LinearScoringFunction
        from repro.service import FairnessService

        service = FairnessService()
        service.register_dataset(load_example_table1(), name="table1")
        service.register_function(
            LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f")
        )
        snapshot = tmp_path / "snap.json"
        service.catalog.save(snapshot)
        # Tamper with one individual's value but keep the recorded
        # fingerprint: the rebuilt content no longer matches it.
        document = json.loads(snapshot.read_text())
        for entry in document["resources"]:
            if entry["kind"] == "dataset":
                entry["dataset"]["individuals"][0]["values"]["Rating"] = 99.0
                break
        snapshot.write_text(json.dumps(document))
        assert main(["serve", "--catalog", str(snapshot), "--port", "0"]) == 2
        captured = capsys.readouterr()
        assert "drifted" in captured.err
        assert "serving fairness protocol v2" not in captured.out

    def test_truncated_snapshot_exits_2(self, tmp_path, capsys):
        snapshot = tmp_path / "snap.json"
        snapshot.write_text('{"format": "fairank-catalog", "version"')
        assert main(["serve", "--catalog", str(snapshot), "--port", "0"]) == 2
        assert "not valid JSON" in capsys.readouterr().err
