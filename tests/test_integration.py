"""End-to-end integration tests across the whole pipeline (Figure 1)."""

import pytest

from repro.anonymize.kanonymity import GlobalRecodingAnonymizer, is_k_anonymous
from repro.core.formulations import Formulation, Objective
from repro.core.quantify import quantify
from repro.data.filters import Equals
from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.marketplace.crawler import MarketplaceCrawler
from repro.roles.auditor import Auditor
from repro.roles.end_user import EndUser
from repro.roles.job_owner import JobOwner
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import RankDerivedScorer
from repro.session.config import SessionConfig
from repro.session.engine import FaiRankEngine


class TestPaperRunningExample:
    """The full Table 1 -> Figure 2 story as an end-to-end flow."""

    def test_table1_quantify_isolates_low_scoring_group(self):
        dataset = load_example_table1()
        function = LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f")
        result = quantify(
            dataset, function, attributes=["Gender", "Language", "Country", "Ethnicity"]
        )
        # The partitioning must separate groups with clearly different means.
        means = sorted(
            partition.scores(function).mean() for partition in result.partitioning
        )
        assert means[-1] - means[0] > 0.2
        assert result.unfairness > 0.5

    def test_most_vs_least_unfair_on_table1(self):
        dataset = load_example_table1()
        function = LinearScoringFunction(TABLE1_WEIGHTS)
        most = quantify(dataset, function, attributes=["Gender", "Language"])
        least = quantify(
            dataset, function, attributes=["Gender", "Language"],
            formulation=Formulation(objective=Objective.LEAST_UNFAIR),
        )
        assert least.unfairness <= most.unfairness


class TestFullPipeline:
    """Dataset -> filter -> anonymise -> score -> optimise -> panels."""

    def test_engine_pipeline_with_all_stages(self, medium_population):
        engine = FaiRankEngine()
        engine.register_dataset(medium_population, name="workers")
        engine.register_function(
            LinearScoringFunction({"Language Test": 0.6, "Rating": 0.4}, name="writing")
        )
        config = SessionConfig(
            "workers",
            "writing",
            attributes=("Gender", "Country", "Language", "Ethnicity"),
            row_filter=Equals("Language", "English"),
            anonymity_k=3,
            min_partition_size=2,
        )
        panel = engine.open_panel(config)
        assert len(panel.population) < len(medium_population)
        assert is_k_anonymous(
            panel.population, ("Gender", "Country", "Language", "Ethnicity"), 3
        )
        assert panel.unfairness >= 0.0
        assert panel.render()

    def test_transparency_settings_change_measurement_not_crash(self, medium_population):
        engine = FaiRankEngine()
        engine.register_dataset(medium_population, name="workers")
        engine.register_function(
            LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
        )
        kwargs = {"attributes": ("Gender", "Country", "Language", "Ethnicity"),
                  "min_partition_size": 2}
        panels = [
            engine.open_panel(SessionConfig("workers", "balanced", **kwargs)),
            engine.open_panel(SessionConfig("workers", "balanced", anonymity_k=10, **kwargs)),
            engine.open_panel(SessionConfig("workers", "balanced", use_ranks_only=True, **kwargs)),
        ]
        table = engine.compare([p.panel_id for p in panels])
        values = table.column("unfairness")
        assert len(values) == 3
        assert all(v >= 0 for v in values)
        # Anonymisation coarsens groups, so it cannot reveal more unfairness.
        assert values[1] <= values[0] + 1e-9


class TestThreeScenarios:
    """The three demonstration scenarios run against a simulated crawl."""

    @pytest.fixture(scope="class")
    def marketplaces(self):
        crawler = MarketplaceCrawler(seed=19)
        return {
            name: crawler.crawl(name, workers=150)
            for name in ("qapa-sim", "mistertemp-sim")
        }

    def test_auditor_scenario(self, marketplaces):
        report = Auditor(min_partition_size=3).audit_marketplace(marketplaces["qapa-sim"])
        assert report.most_unfair_job is not None
        assert report.most_unfair_job.unfairness >= report.least_unfair_job.unfairness
        rendered = report.render()
        assert "Fairness report" in rendered

    def test_job_owner_scenario(self, marketplaces):
        owner = JobOwner(min_partition_size=3)
        report = owner.explore_job(marketplaces["qapa-sim"], "Warehouse operator", sweep_steps=3)
        assert report.fairest is not None
        assert report.fairest.unfairness <= report.most_unfair.unfairness

    def test_end_user_scenario(self, marketplaces):
        user = EndUser({"Gender": "Female", "Age Band": "18-29"})
        table = user.compare_marketplaces(list(marketplaces.values()), "Installing wood panels")
        assert 1 <= len(table) <= 2
        assert any("best option" in note for note in table.notes)

    def test_opaque_function_audited_through_ranking(self, marketplaces):
        marketplace = marketplaces["qapa-sim"]
        opaque_jobs = [job for job in marketplace if not job.is_transparent]
        assert opaque_jobs
        job = opaque_jobs[0]
        candidates = job.candidates(marketplace.workers)
        scorer = RankDerivedScorer(job.function.reveal_ranking(candidates))
        result = quantify(candidates, scorer, min_partition_size=3)
        assert result.unfairness >= 0.0


class TestAnonymizationIntegration:
    def test_anonymised_audit_blurs_planted_subgroup(self, medium_population):
        """k-anonymisation reduces the measured unfairness of a planted bias."""
        from repro.marketplace.bias import BiasSpec, apply_bias

        spec = BiasSpec(
            {"Gender": "Female", "Ethnicity": "African-American"},
            {"Language Test": -0.35, "Rating": -0.35},
        )
        biased = apply_bias(medium_population, [spec])
        function = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5})
        attributes = ["Gender", "Country", "Language", "Ethnicity"]

        raw = quantify(biased, function, attributes=attributes, min_partition_size=2)
        anonymized = GlobalRecodingAnonymizer().anonymize(
            biased, k=25, quasi_identifiers=attributes
        )
        blurred = quantify(anonymized.dataset, function, attributes=attributes,
                           min_partition_size=2)
        assert blurred.unfairness <= raw.unfairness + 1e-9
