"""Rank-derived scores for the function-opaque transparency setting.

"When the function is not available, FaiRank builds histograms using ranks of
individuals rather than actual function scores" (paper §1, Data and Function
Transparencies).  This module implements that substitution: given only a
:class:`~repro.scoring.base.Ranking` (the ordered list a marketplace actually
displays), it assigns each individual a pseudo-score derived from its
position, so that all downstream machinery (histograms, EMD, QUANTIFY) runs
unchanged.

Two position-to-score conventions are provided:

* ``linear`` — the best individual gets 1.0 and the worst gets 0.0, evenly
  spaced (equivalent to using normalised rank positions as scores);
* ``exposure`` — positions are weighted by the standard logarithmic discount
  ``1 / log2(position + 1)`` used in fairness-of-exposure work [9], giving
  more separation near the top of the ranking where attention concentrates.
"""

from __future__ import annotations

import math
from typing import Dict, Literal

from repro.data.dataset import Dataset, Individual
from repro.errors import ScoringError
from repro.scoring.base import Ranking, ScoringFunction

__all__ = ["RankDerivedScorer", "OpaqueScoringFunction"]

PositionWeighting = Literal["linear", "exposure"]


class RankDerivedScorer(ScoringFunction):
    """Scores reconstructed from an observed ranking (function not transparent)."""

    def __init__(
        self,
        ranking: Ranking,
        weighting: PositionWeighting = "linear",
        name: str = "rank-derived",
    ) -> None:
        if len(ranking) == 0:
            raise ScoringError("cannot derive scores from an empty ranking")
        if weighting not in ("linear", "exposure"):
            raise ScoringError(
                f"unknown position weighting {weighting!r}; use 'linear' or 'exposure'"
            )
        self.ranking = ranking
        self.weighting = weighting
        self.name = name
        self.transparent = False
        self._scores = self._derive_scores()

    def _derive_scores(self) -> Dict[str, float]:
        count = len(self.ranking)
        scores: Dict[str, float] = {}
        if self.weighting == "linear":
            for position, (uid, _) in enumerate(self.ranking, start=1):
                if count == 1:
                    scores[uid] = 1.0
                else:
                    scores[uid] = 1.0 - (position - 1) / (count - 1)
        else:  # exposure
            raw = {
                uid: 1.0 / math.log2(position + 1)
                for position, (uid, _) in enumerate(self.ranking, start=1)
            }
            max_exposure = max(raw.values())
            min_exposure = min(raw.values())
            span = max_exposure - min_exposure
            for uid, exposure in raw.items():
                scores[uid] = 1.0 if span == 0 else (exposure - min_exposure) / span
        return scores

    def score_individual(self, individual: Individual) -> float:
        try:
            return self._scores[individual.uid]
        except KeyError:
            raise ScoringError(
                f"individual {individual.uid!r} does not appear in the observed ranking"
            ) from None

    def describe(self) -> str:
        return f"{self.name}: scores derived from ranking positions ({self.weighting})"

    def fingerprint(self) -> str:
        """Content hash over the observed ranking order and the weighting.

        The display name is excluded (like all function fingerprints): the
        derived scores depend only on positions and the weighting scheme.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(b"rank-derived\x00")
        digest.update(self.weighting.encode("ascii") + b"\x00")
        for uid in self.ranking.uids:
            digest.update(uid.encode("utf-8") + b"\x00")
        return digest.hexdigest()


class OpaqueScoringFunction(ScoringFunction):
    """Wrap a true scoring function but only expose the ranking it induces.

    This models the black-box marketplace: internally the platform computes
    real scores with ``hidden``, but the auditor only ever sees positions.
    ``reveal_ranking`` returns the observable artefact; the auditor then
    analyses it through a :class:`RankDerivedScorer`.  Calling
    :meth:`score_individual` directly raises, which keeps experiments honest
    about what information each transparency setting uses.
    """

    def __init__(self, hidden: ScoringFunction, name: str = "opaque") -> None:
        self.hidden = hidden
        self.name = name
        self.transparent = False

    def score_individual(self, individual: Individual) -> float:
        raise ScoringError(
            f"scoring function {self.name!r} is opaque; use reveal_ranking() and a "
            "RankDerivedScorer instead of reading scores directly"
        )

    def reveal_ranking(self, dataset: Dataset) -> Ranking:
        """Return the ranking the marketplace displays (positions only are meaningful)."""
        return self.hidden.rank(dataset)

    def as_rank_scorer(
        self, dataset: Dataset, weighting: PositionWeighting = "linear"
    ) -> RankDerivedScorer:
        """Convenience: observable ranking -> rank-derived scorer in one step."""
        return RankDerivedScorer(
            self.reveal_ranking(dataset),
            weighting=weighting,
            name=f"{self.name}-from-ranks",
        )

    def describe(self) -> str:
        return f"{self.name}: opaque scoring function (only its ranking is observable)"

    def fingerprint(self) -> str:
        """Content hash derived from the hidden function's fingerprint.

        Raises ``NotImplementedError`` when the hidden function has no
        structured fingerprint, letting callers fall back to a pickle hash of
        the whole wrapper.
        """
        import hashlib

        inner = self.hidden.fingerprint()
        digest = hashlib.sha256()
        digest.update(b"opaque\x00")
        digest.update(inner.encode("ascii"))
        return digest.hexdigest()
