"""Weighted linear scoring functions over observed attributes.

Definition 1 of the paper: ``f(w) = Σᵢ αᵢ · bᵢ`` where the ``bᵢ`` are observed
(skill) attributes and the ``αᵢ`` are user-chosen weights; a zero weight means
the attribute is irrelevant for this job.  When the observed attributes are in
[0, 1] and the weights are non-negative and sum to 1, scores stay in [0, 1].
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset, Individual
from repro.data.schema import Schema
from repro.errors import ScoringError
from repro.scoring.base import ScoringFunction

__all__ = ["LinearScoringFunction"]


class LinearScoringFunction(ScoringFunction):
    """``f(w) = Σ αᵢ · bᵢ`` over named observed attributes.

    Parameters
    ----------
    weights:
        Mapping of observed attribute name to weight αᵢ.  Attributes missing
        from the mapping implicitly have weight zero.
    name:
        Display name (e.g. the job title the function ranks candidates for).
    normalize:
        When True (default) the weights are rescaled to sum to 1 so that
        scores of [0, 1]-valued attributes remain in [0, 1] — the convention
        used throughout the paper.  Set to False to keep raw weights.
    """

    def __init__(
        self,
        weights: Mapping[str, float],
        name: str = "linear",
        normalize: bool = True,
    ) -> None:
        if not weights:
            raise ScoringError("a linear scoring function needs at least one weight")
        cleaned: Dict[str, float] = {}
        for attribute, weight in weights.items():
            value = float(weight)
            if not np.isfinite(value):
                raise ScoringError(f"weight for {attribute!r} is not finite: {weight!r}")
            if value < 0:
                raise ScoringError(
                    f"weight for {attribute!r} is negative ({value}); scoring weights "
                    "must be non-negative"
                )
            cleaned[str(attribute)] = value
        total = sum(cleaned.values())
        if total <= 0:
            raise ScoringError("at least one weight must be positive")
        if normalize:
            cleaned = {attr: weight / total for attr, weight in cleaned.items()}
        self.weights: Dict[str, float] = cleaned
        self.name = name
        self.transparent = True

    # -- scoring -----------------------------------------------------------

    def score_individual(self, individual: Individual) -> float:
        total = 0.0
        for attribute, weight in self.weights.items():
            if weight == 0.0:
                continue
            try:
                value = float(individual[attribute])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ScoringError(
                    f"individual {individual.uid!r} has non-numeric value for "
                    f"{attribute!r}: {individual.get(attribute)!r}"
                ) from None
            total += weight * value
        return total

    def score_dataset(self, dataset: Dataset) -> np.ndarray:
        """Vectorised scoring of a whole dataset."""
        names = [attr for attr, weight in self.weights.items() if weight != 0.0]
        if not names:
            return np.zeros(len(dataset), dtype=float)
        matrix = dataset.observed_matrix(names)
        weight_vector = np.asarray([self.weights[name] for name in names], dtype=float)
        return matrix @ weight_vector

    # -- introspection / variants ------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attributes with a non-zero weight, in insertion order."""
        return tuple(attr for attr, weight in self.weights.items() if weight != 0.0)

    def fingerprint(self) -> str:
        """Content hash over the (normalised) weights.

        The display name is deliberately excluded: two jobs scoring with
        identical weights under different names produce identical results,
        so they should share service-cache entries.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(b"linear\x00")
        for attribute in sorted(self.weights):
            digest.update(attribute.encode("utf-8") + b"=")
            digest.update(float(self.weights[attribute]).hex().encode("ascii") + b"\x00")
        return digest.hexdigest()

    def describe(self) -> str:
        terms = " + ".join(
            f"{weight:.3g}*{attribute}" for attribute, weight in self.weights.items() if weight
        )
        return f"{self.name}: f(w) = {terms}"

    def validate_against(self, schema: Schema) -> None:
        """Raise :class:`ScoringError` if a weighted attribute is not observed in ``schema``."""
        for attribute in self.attributes:
            if attribute not in schema:
                raise ScoringError(
                    f"scoring function {self.name!r} uses unknown attribute {attribute!r}"
                )
            if not schema.attribute(attribute).is_observed:
                raise ScoringError(
                    f"scoring function {self.name!r} uses non-observed attribute {attribute!r}; "
                    "scoring functions may only use observed (skill) attributes"
                )

    def with_weights(self, name: Optional[str] = None, **updates: float) -> "LinearScoringFunction":
        """Return a variant of this function with some weights replaced.

        This is the "job owner explores variants of a scoring function"
        operation from the demo scenarios.
        """
        merged = dict(self.weights)
        merged.update({attr: float(weight) for attr, weight in updates.items()})
        return LinearScoringFunction(merged, name=name or f"{self.name}-variant", normalize=True)

    @classmethod
    def uniform(cls, attributes: Iterable[str], name: str = "uniform") -> "LinearScoringFunction":
        """Equal-weight combination of the given observed attributes."""
        attrs = list(attributes)
        if not attrs:
            raise ScoringError("uniform scoring function needs at least one attribute")
        return cls({attr: 1.0 for attr in attrs}, name=name)

    @classmethod
    def single(cls, attribute: str, name: Optional[str] = None) -> "LinearScoringFunction":
        """Score by a single observed attribute."""
        return cls({attribute: 1.0}, name=name or f"only-{attribute}")
