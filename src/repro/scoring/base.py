"""Scoring-function interface.

A scoring function maps every individual to a score in (ideally) [0, 1]; the
marketplace ranks candidates for a job by decreasing score.  FaiRank treats
the scoring function as the object under audit: it asks how differently the
function scores groups of individuals defined by protected attributes.

Two transparency regimes exist (paper §1/§2):

* *function transparent* — the function itself is known (a weighted linear
  combination of observed attributes, :mod:`repro.scoring.linear`);
* *function opaque* — only the produced ranking is visible, and scores must
  be reconstructed from ranks (:mod:`repro.scoring.rank`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset, Individual
from repro.errors import ScoringError

__all__ = ["ScoringFunction", "Ranking", "rank_by_score", "frozen_scores"]


def frozen_scores(function: "ScoringFunction", dataset: "Dataset") -> np.ndarray:
    """Score ``dataset`` and return a private, read-only float vector.

    The copy matters: a scorer may return (a view of) its own reusable
    buffer, which a cache must neither freeze nor alias.  Every score memo
    (``Partition.scores``, the score store) goes through this helper so the
    aliasing rule lives in one place.
    """
    values = np.array(function.score_dataset(dataset), dtype=float)
    values.setflags(write=False)
    return values


class ScoringFunction:
    """Abstract scoring function ``f: W -> [0, 1]``.

    Concrete subclasses implement :meth:`score_individual`; the convenience
    methods for scoring whole datasets and producing rankings are shared.
    """

    #: Human-readable name shown in panels and experiment tables.
    name: str = "scoring-function"

    #: Whether the functional form is visible to the auditor.  Opaque
    #: functions only expose the ranking they induce.
    transparent: bool = True

    def score_individual(self, individual: Individual) -> float:
        """Score one individual."""
        raise NotImplementedError

    def score_dataset(self, dataset: Dataset) -> np.ndarray:
        """Score every individual of ``dataset`` in row order."""
        return np.asarray(
            [self.score_individual(individual) for individual in dataset], dtype=float
        )

    def score_map(self, dataset: Dataset) -> Dict[str, float]:
        """Mapping of individual id -> score."""
        scores = self.score_dataset(dataset)
        return {individual.uid: float(score) for individual, score in zip(dataset, scores)}

    def rank(self, dataset: Dataset) -> "Ranking":
        """Rank the dataset by decreasing score (ties broken by id for determinism)."""
        return rank_by_score(dataset, self)

    def describe(self) -> str:
        """Human-readable description of the function (overridable)."""
        return self.name

    def fingerprint(self) -> str:
        """Stable content hash identifying this function for result caching.

        Subclasses with a structured representation (weights, rankings)
        override this so that semantically identical functions share cache
        entries.  The base implementation raises ``NotImplementedError``; the
        service layer falls back to a pickle hash in that case (see
        :func:`repro.service.fingerprint.fingerprint_function`).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


@dataclass(frozen=True)
class Ranking:
    """An ordered ranking of individuals with their (possibly hidden) scores.

    ``entries`` is a tuple of ``(uid, score)`` pairs ordered best-first.  When
    the scoring function is opaque the scores carried here are *not* shown to
    the auditor — only positions are (see :class:`repro.scoring.rank.RankDerivedScorer`).
    """

    entries: Tuple[Tuple[str, float], ...]
    function_name: str = "scoring-function"

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple((str(u), float(s)) for u, s in self.entries))
        uids = [uid for uid, _ in self.entries]
        if len(set(uids)) != len(uids):
            raise ScoringError("ranking contains duplicate individuals")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def uids(self) -> Tuple[str, ...]:
        """Individual ids, best first."""
        return tuple(uid for uid, _ in self.entries)

    @property
    def scores(self) -> Tuple[float, ...]:
        """Scores aligned with :attr:`uids`."""
        return tuple(score for _, score in self.entries)

    def position(self, uid: str) -> int:
        """1-based position of ``uid`` in the ranking."""
        for index, (candidate, _) in enumerate(self.entries, start=1):
            if candidate == uid:
                return index
        raise ScoringError(f"individual {uid!r} does not appear in the ranking")

    def top(self, k: int) -> Tuple[str, ...]:
        """Ids of the best ``k`` individuals."""
        if k < 0:
            raise ScoringError(f"top-k requires k >= 0, got {k}")
        return self.uids[:k]

    def score_of(self, uid: str) -> float:
        """Score of ``uid`` (raises if absent)."""
        for candidate, score in self.entries:
            if candidate == uid:
                return score
        raise ScoringError(f"individual {uid!r} does not appear in the ranking")

    def as_table(self) -> List[Dict[str, object]]:
        """Rows of (position, uid, score) for display/export."""
        return [
            {"position": index, "uid": uid, "score": score}
            for index, (uid, score) in enumerate(self.entries, start=1)
        ]


def rank_by_score(dataset: Dataset, function: ScoringFunction) -> Ranking:
    """Produce a best-first ranking of ``dataset`` under ``function``."""
    scores = function.score_dataset(dataset)
    order: Sequence[int] = sorted(
        range(len(dataset)),
        key=lambda i: (-scores[i], dataset[i].uid),
    )
    entries = tuple((dataset[i].uid, float(scores[i])) for i in order)
    return Ranking(entries=entries, function_name=function.name)
