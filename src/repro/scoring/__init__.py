"""Scoring substrate: linear, rank-derived and opaque scoring functions (S3)."""

from repro.scoring.base import Ranking, ScoringFunction, rank_by_score
from repro.scoring.library import ScoringLibrary, weight_sweep
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import OpaqueScoringFunction, RankDerivedScorer

__all__ = [
    "ScoringFunction",
    "Ranking",
    "rank_by_score",
    "LinearScoringFunction",
    "RankDerivedScorer",
    "OpaqueScoringFunction",
    "ScoringLibrary",
    "weight_sweep",
]
