"""A catalogue of named scoring functions and their variants.

The job-owner scenario of the demo is "define different scoring functions and
examine their impact on individuals" — in practice a job has one base scoring
function plus a family of re-weighted variants, and a marketplace has one such
family per job.  :class:`ScoringLibrary` is the registry the session layer and
the role workflows use to enumerate and look up those functions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ScoringError
from repro.scoring.base import ScoringFunction
from repro.scoring.linear import LinearScoringFunction

__all__ = ["ScoringLibrary", "weight_sweep"]


class ScoringLibrary:
    """A named registry of scoring functions."""

    def __init__(self, functions: Optional[Iterable[ScoringFunction]] = None) -> None:
        self._functions: Dict[str, ScoringFunction] = {}
        for function in functions or ():
            self.register(function)

    def register(self, function: ScoringFunction, replace: bool = False) -> ScoringFunction:
        """Add a function to the library, keyed by its ``name``."""
        if function.name in self._functions and not replace:
            raise ScoringError(
                f"a scoring function named {function.name!r} is already registered"
            )
        self._functions[function.name] = function
        return function

    def get(self, name: str) -> ScoringFunction:
        """Look up a function by name."""
        try:
            return self._functions[name]
        except KeyError:
            raise ScoringError(
                f"unknown scoring function {name!r}; "
                f"available: {', '.join(sorted(self._functions))}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._functions

    def __iter__(self) -> Iterator[ScoringFunction]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._functions)

    def variants_of(
        self,
        base_name: str,
        weight_grid: Sequence[Mapping[str, float]],
        register: bool = True,
    ) -> List[LinearScoringFunction]:
        """Create (and optionally register) re-weighted variants of a linear function.

        Each entry of ``weight_grid`` is a partial weight override applied to
        the base function; variants are named ``<base>#<i>``.
        """
        base = self.get(base_name)
        if not isinstance(base, LinearScoringFunction):
            raise ScoringError(
                f"variants can only be derived from linear functions, not {type(base).__name__}"
            )
        variants: List[LinearScoringFunction] = []
        for index, overrides in enumerate(weight_grid, start=1):
            variant = base.with_weights(name=f"{base_name}#{index}", **overrides)
            if register:
                self.register(variant, replace=True)
            variants.append(variant)
        return variants

    def describe(self) -> List[str]:
        """One description line per registered function."""
        return [function.describe() for function in self._functions.values()]


def weight_sweep(
    attribute_names: Sequence[str],
    steps: int = 5,
) -> List[Dict[str, float]]:
    """Generate a grid of weight assignments over two or more attributes.

    For two attributes this is the classic ``α, 1-α`` sweep with ``steps``
    points; for more attributes, each grid point puts weight ``α`` on one
    attribute and splits the remainder evenly across the others.  The job
    owner benchmark uses this to explore how fairness evolves as the job's
    emphasis shifts between skills.
    """
    names = list(attribute_names)
    if len(names) < 2:
        raise ScoringError("a weight sweep needs at least two attributes")
    if steps < 2:
        raise ScoringError(f"a weight sweep needs at least 2 steps, got {steps}")
    grid: List[Dict[str, float]] = []
    for emphasised in names:
        for step in range(steps):
            alpha = step / (steps - 1)
            remainder = (1.0 - alpha) / (len(names) - 1)
            weights = {name: remainder for name in names}
            weights[emphasised] = alpha
            grid.append(weights)
    # Remove duplicate grid points (the all-equal assignment appears once per
    # emphasised attribute).
    unique: List[Dict[str, float]] = []
    seen = set()
    for weights in grid:
        key = tuple(sorted((name, round(weight, 9)) for name, weight in weights.items()))
        if key not in seen:
            seen.add(key)
            unique.append(weights)
    return unique
