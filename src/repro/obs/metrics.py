"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

The serving stack (``FairnessService``, the HTTP front end, the shard
router and the worker pool) records everything it does into one
process-wide :class:`MetricsRegistry` — stdlib only, thread-safe, and
rendered in the Prometheus text exposition format so ``GET /v2/metrics``
can be scraped by any off-the-shelf collector:

* **counters** only go up (``fairank_requests_total{kind="quantify"}``);
* **gauges** snapshot a current value (cache entries, live workers);
* **histograms** bucket latencies against a fixed ``le`` boundary list,
  rendered as the conventional ``_bucket`` / ``_sum`` / ``_count`` series.

Every metric family supports labels; a (family, label-set) pair is one
time series.  :func:`parse_prometheus` is the inverse of
:meth:`MetricsRegistry.render` — the shard router uses it to aggregate
per-worker scrapes (summing samples series-by-series), and the CI gate
uses it to assert that the exposed text is actually parseable and that
the request counters match the requests it sent.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ParsedMetrics",
    "get_registry",
    "merge_parsed",
    "parse_prometheus",
    "render_parsed",
]

#: Latency bucket upper bounds in seconds (quantify searches span ~1ms cached
#: to multi-second cold sweeps; the +Inf bucket is implicit).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: One series key: sorted, hashable rendering of a label mapping.
LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_series(name: str, items: LabelItems) -> str:
    if not items:
        return name
    inner = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in items)
    return f"{name}{{{inner}}}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Base class: one family (name, kind, help) holding labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def _validate_labels(self, labels: Mapping[str, object]) -> LabelItems:
        return _label_items(labels)


class Counter(_Metric):
    """A monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: Dict[LabelItems, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (amount={amount})")
        items = self._validate_labels(labels)
        with self._lock:
            self._values[items] = self._values.get(items, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_items(labels), 0.0)

    def samples(self) -> List[Tuple[str, LabelItems, float]]:
        with self._lock:
            return [(self.name, items, value) for items, value in self._values.items()]


class Gauge(_Metric):
    """A point-in-time value per label set (may go up or down)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: Dict[LabelItems, float] = {}

    def set(self, value: float, **labels: object) -> None:
        items = self._validate_labels(labels)
        with self._lock:
            self._values[items] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        items = self._validate_labels(labels)
        with self._lock:
            self._values[items] = self._values.get(items, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_items(labels), 0.0)

    def samples(self) -> List[Tuple[str, LabelItems, float]]:
        with self._lock:
            return [(self.name, items, value) for items, value in self._values.items()]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, bucket_count: int) -> None:
        self.bucket_counts = [0] * bucket_count  # per-bucket (non-cumulative)
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket latency histogram per label set.

    Buckets are upper bounds in ascending order; the ``+Inf`` bucket is
    implicit.  Rendered cumulatively as Prometheus expects.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise ValueError(f"histogram {name} needs ascending, non-empty buckets")
        self.buckets = bounds
        self._series: Dict[LabelItems, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        items = self._validate_labels(labels)
        value = float(value)
        with self._lock:
            series = self._series.get(items)
            if series is None:
                series = self._series[items] = _HistogramSeries(len(self.buckets) + 1)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[index] += 1
                    break
            else:
                series.bucket_counts[-1] += 1  # +Inf
            series.total += value
            series.count += 1

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(_label_items(labels))
            return series.count if series is not None else 0

    def samples(self) -> List[Tuple[str, LabelItems, float]]:
        out: List[Tuple[str, LabelItems, float]] = []
        with self._lock:
            for items, series in self._series.items():
                cumulative = 0
                for bound, bucket in zip(self.buckets, series.bucket_counts):
                    cumulative += bucket
                    out.append(
                        (f"{self.name}_bucket",
                         items + (("le", _format_value(bound)),), float(cumulative))
                    )
                cumulative += series.bucket_counts[-1]
                out.append(
                    (f"{self.name}_bucket", items + (("le", "+Inf"),), float(cumulative))
                )
                out.append((f"{self.name}_sum", items, series.total))
                out.append((f"{self.name}_count", items, float(series.count)))
        return out


class MetricsRegistry:
    """A named collection of metric families with get-or-create semantics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing family when
    one with that name is already registered (and raise if it was registered
    as a different kind), so call sites can resolve their metrics at use
    time without import-order coupling.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}

    def _get_or_create(self, name: str, factory, kind: str) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, help_text), "counter")
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, help_text), "gauge")
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets), "histogram"
        )  # type: ignore[return-value]

    def families(self) -> List[_Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda metric: metric.name)

    def render(self) -> str:
        """The Prometheus text exposition of every registered family."""
        lines: List[str] = []
        for metric in self.families():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, items, value in metric.samples():
                lines.append(
                    f"{_format_series(sample_name, items)} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able dump of every family (benchmark artifacts)."""
        out: Dict[str, object] = {}
        for metric in self.families():
            out[metric.name] = {
                "kind": metric.kind,
                "samples": [
                    {"name": sample_name, "labels": dict(items), "value": value}
                    for sample_name, items, value in metric.samples()
                ],
            }
        return out

    def reset(self) -> None:
        """Drop every registered family (test isolation)."""
        with self._lock:
            self._metrics.clear()


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every layer records into."""
    return _DEFAULT_REGISTRY


# -- parsing / aggregation -----------------------------------------------------


class ParsedMetrics:
    """A parsed Prometheus text page: family types plus flat samples.

    ``samples`` keys are ``(sample_name, label_items)`` — histogram
    ``_bucket`` / ``_sum`` / ``_count`` series stay flat, which makes
    summing pages across workers a dict merge.
    """

    def __init__(self) -> None:
        self.types: Dict[str, str] = {}
        self.helps: Dict[str, str] = {}
        self.samples: Dict[Tuple[str, LabelItems], float] = {}

    def value(self, name: str, **labels: object) -> float:
        return self.samples.get((name, _label_items(labels)), 0.0)

    def sum_by_label(self, name: str, label: str) -> Dict[str, float]:
        """Sum a family's samples grouped by one label's value."""
        totals: Dict[str, float] = {}
        for (sample_name, items), value in self.samples.items():
            if sample_name != name:
                continue
            for key, label_value in items:
                if key == label:
                    totals[label_value] = totals.get(label_value, 0.0) + value
        return totals


def _parse_sample_line(line: str) -> Tuple[str, LabelItems, float]:
    if "{" in line:
        name, _, rest = line.partition("{")
        label_blob, _, value_part = rest.rpartition("}")
        items: List[Tuple[str, str]] = []
        blob = label_blob
        while blob:
            key, sep, blob = blob.partition("=")
            if not sep or not blob.startswith('"'):
                raise ValueError(f"malformed label set in {line!r}")
            # Scan the quoted value honouring backslash escapes.
            index, chars = 1, []
            while index < len(blob):
                char = blob[index]
                if char == "\\" and index + 1 < len(blob):
                    escaped = blob[index + 1]
                    chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(escaped, escaped))
                    index += 2
                    continue
                if char == '"':
                    break
                chars.append(char)
                index += 1
            else:
                raise ValueError(f"unterminated label value in {line!r}")
            items.append((key.strip(), "".join(chars)))
            blob = blob[index + 1:].lstrip(",")
        value_text = value_part.strip()
    else:
        name, _, value_text = line.partition(" ")
        items = []
        value_text = value_text.strip()
    name = name.strip()
    if not name or not value_text:
        raise ValueError(f"malformed sample line {line!r}")
    value = float("inf") if value_text == "+Inf" else float(value_text)
    return name, tuple(sorted(items)), value


def parse_prometheus(text: str) -> ParsedMetrics:
    """Parse a Prometheus text page (raises ``ValueError`` on malformed input)."""
    parsed = ParsedMetrics()
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            parsed.helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            parsed.types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        name, items, value = _parse_sample_line(line)
        key = (name, items)
        parsed.samples[key] = parsed.samples.get(key, 0.0) + value
    return parsed


def merge_parsed(pages: Iterable[ParsedMetrics]) -> ParsedMetrics:
    """Sum several parsed pages series-by-series (fleet aggregation).

    Counters and histogram series sum exactly; gauges sum too, which for a
    fleet reads as a total (e.g. cache entries across all workers).
    """
    merged = ParsedMetrics()
    for page in pages:
        merged.types.update(page.types)
        merged.helps.update(page.helps)
        for key, value in page.samples.items():
            merged.samples[key] = merged.samples.get(key, 0.0) + value
    return merged


def render_parsed(parsed: ParsedMetrics) -> str:
    """Render a parsed/merged page back to Prometheus text, grouped by family."""

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and parsed.types.get(base) == "histogram":
                return base
        return sample_name

    by_family: Dict[str, List[Tuple[str, LabelItems, float]]] = {}
    for (sample_name, items), value in parsed.samples.items():
        by_family.setdefault(family_of(sample_name), []).append(
            (sample_name, items, value)
        )
    def series_key(sample: Tuple[str, LabelItems, float]):
        # Histogram buckets must ascend by numeric ``le`` (with +Inf last),
        # not lexically; everything else sorts by its label items.
        sample_name, items, _ = sample
        le = dict(items).get("le")
        bound = float("inf") if le in (None, "+Inf") else float(le)
        others = tuple(pair for pair in items if pair[0] != "le")
        return (sample_name, others, bound)

    lines: List[str] = []
    for family in sorted(by_family):
        help_text = parsed.helps.get(family)
        if help_text:
            lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {parsed.types.get(family, 'untyped')}")
        for sample_name, items, value in sorted(by_family[family], key=series_key):
            lines.append(f"{_format_series(sample_name, items)} {_format_value(value)}")
    return "\n".join(lines) + "\n"
