"""Request tracing: trace ids, phase spans, contextvar propagation.

One user-visible request — whether it enters through
:class:`~repro.server.client.HTTPFairnessClient`, the shard router, or a
direct :meth:`FairnessService.execute <repro.service.service.FairnessService.execute>`
call — carries one **trace id** end to end:

* generated at ingress (client or server) when no trace is active;
* propagated router → worker in the ``X-Fairank-Trace`` HTTP header and
  across the batch executor's thread pool via a :mod:`contextvars` copy;
* echoed back in the response's ``X-Fairank-Trace`` header and inside the
  envelope's ``timings`` field, so a slow answer can be matched to the
  router's and the worker's structured log lines.

A :class:`Trace` also accumulates a per-request timing breakdown: named
phases (``key``, ``compute``, ``score``, ``queue``, ``route``) recorded via
:meth:`Trace.span` context managers, summed per phase in milliseconds.  The
module-level :func:`span` records into whatever trace is active and is a
no-op without one, so the score store can instrument itself without ever
importing the service layer.
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional

__all__ = [
    "TRACE_HEADER",
    "Trace",
    "activate",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "span",
]

#: The HTTP header a trace id travels in (request and response).
TRACE_HEADER = "X-Fairank-Trace"

#: Accepted inbound trace ids (anything else is ignored and replaced).
_TRACE_ID_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(value: object) -> Optional[str]:
    """``value`` as a trace id if it looks like one, else ``None``."""
    if isinstance(value, str) and _TRACE_ID_PATTERN.match(value):
        return value
    return None


class Trace:
    """One request's identity plus its accumulated phase timings (ms).

    Thread-safe: a batch request's executor threads all record into their
    own per-request traces, but a single request's compute path may itself
    fan out (the score store is shared), so ``add`` locks.
    """

    __slots__ = ("trace_id", "_timings", "_lock")

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self._timings: Dict[str, float] = {}
        self._lock = threading.Lock()

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the phase's total."""
        milliseconds = seconds * 1000.0
        with self._lock:
            self._timings[phase] = self._timings.get(phase, 0.0) + milliseconds

    @contextmanager
    def span(self, phase: str) -> Iterator[None]:
        """Time a block into ``phase`` (nested/repeated spans accumulate)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - started)

    def timings(self) -> Dict[str, object]:
        """The wire form: trace id plus ``<phase>_ms`` totals (rounded)."""
        with self._lock:
            out: Dict[str, object] = {"trace_id": self.trace_id}
            for phase in sorted(self._timings):
                out[f"{phase}_ms"] = round(self._timings[phase], 3)
            return out


_CURRENT: "ContextVar[Optional[Trace]]" = ContextVar("fairank_trace", default=None)


def current_trace() -> Optional[Trace]:
    """The trace active in this context, if any."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    """The active trace's id, if any."""
    trace = _CURRENT.get()
    return None if trace is None else trace.trace_id


@contextmanager
def activate(trace: Trace) -> Iterator[Trace]:
    """Make ``trace`` the active trace for the duration of the block."""
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


@contextmanager
def span(phase: str) -> Iterator[None]:
    """Record a span into the active trace; a silent no-op without one."""
    trace = _CURRENT.get()
    if trace is None:
        yield
        return
    with trace.span(phase):
        yield
