"""Structured JSON logging for the serving stack.

One line per event, one JSON object per line, written to stderr by default
(worker stderr is merged into the stdout the pool pumps, so worker events
surface in the pool's diagnostic tail).  Two classes of event:

* **lifecycle events** (:meth:`ObsLogger.event`) — worker crashes, boots,
  restarts, retried forwards — always emitted: they are rare and each one
  matters to an operator;
* **request events** (:meth:`ObsLogger.request`) — one per served request,
  emitted only when ``verbose`` is on *or* the request breached the
  ``slow_ms`` threshold (then stamped ``"slow": true``), so production
  serving stays quiet while every slow answer leaves evidence.

Every record carries a UTC timestamp and, inside a shard worker, the
worker's slot (from the ``FAIRANK_WORKER_SLOT`` environment the pool sets),
so a fleet's merged log stream stays attributable.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from datetime import datetime, timezone
from typing import IO, Dict, Optional

__all__ = ["ObsLogger", "WORKER_SLOT_ENV", "get_logger"]

#: Environment variable the worker pool sets to the worker's routing slot.
WORKER_SLOT_ENV = "FAIRANK_WORKER_SLOT"


class ObsLogger:
    """JSON-lines event logger with verbose and slow-request gating.

    Parameters
    ----------
    stream:
        Destination; ``None`` resolves to ``sys.stderr`` at emit time (so
        redirected/captured stderr is honoured).
    verbose:
        Emit every request event (lifecycle events are always emitted).
    slow_ms:
        When set, a request event whose duration meets the threshold is
        emitted even without ``verbose`` and marked ``"slow": true``.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        *,
        verbose: bool = False,
        slow_ms: Optional[float] = None,
    ) -> None:
        self.stream = stream
        self.verbose = verbose
        self.slow_ms = slow_ms
        self._lock = threading.Lock()

    def event(self, event: str, **fields: object) -> None:
        """Emit a lifecycle event (always)."""
        self._emit(event, fields)

    def request(self, event: str, duration_ms: float, **fields: object) -> None:
        """Emit a request event, honouring the verbose / slow-request gates."""
        slow = self.slow_ms is not None and duration_ms >= self.slow_ms
        if not (self.verbose or slow):
            return
        record: Dict[str, object] = dict(fields)
        record["duration_ms"] = round(duration_ms, 3)
        if slow:
            record["slow"] = True
        self._emit(event, record)

    def _emit(self, event: str, fields: Dict[str, object]) -> None:
        record: Dict[str, object] = {
            "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "event": event,
        }
        slot = os.environ.get(WORKER_SLOT_ENV)
        if slot is not None:
            record["worker"] = slot
        record.update(
            (key, value) for key, value in fields.items() if value is not None
        )
        line = json.dumps(record, default=str, separators=(",", ":"))
        stream = self.stream if self.stream is not None else sys.stderr
        with self._lock:
            print(line, file=stream, flush=True)


_DEFAULT_LOGGER = ObsLogger()


def get_logger() -> ObsLogger:
    """The process-wide default logger (lifecycle events only by default)."""
    return _DEFAULT_LOGGER
