"""Observability for the FaiRank serving stack (stdlib only).

Three small, dependency-free modules the whole serving stack records into:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket latency histograms, rendered in the
  Prometheus text format for ``GET /v2/metrics`` (plus a parser the shard
  router uses to aggregate per-worker scrapes);
* :mod:`repro.obs.trace` — trace ids and phase spans, propagated through
  HTTP (``X-Fairank-Trace``), the batch executor and the score store via
  :mod:`contextvars`, surfaced as the envelope's ``timings`` field;
* :mod:`repro.obs.log` — structured JSON-lines logging with verbose and
  ``--slow-ms`` gating.

``repro.obs`` deliberately imports nothing from the rest of ``repro``, so
any layer (including :mod:`repro.core`) can instrument itself without
creating import cycles.
"""

from repro.obs.log import ObsLogger, WORKER_SLOT_ENV, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    ParsedMetrics,
    get_registry,
    merge_parsed,
    parse_prometheus,
    render_parsed,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Trace,
    activate,
    current_trace,
    current_trace_id,
    new_trace_id,
    span,
    valid_trace_id,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "ObsLogger",
    "ParsedMetrics",
    "TRACE_HEADER",
    "Trace",
    "WORKER_SLOT_ENV",
    "activate",
    "current_trace",
    "current_trace_id",
    "get_logger",
    "get_registry",
    "merge_parsed",
    "new_trace_id",
    "parse_prometheus",
    "render_parsed",
    "span",
    "valid_trace_id",
]
