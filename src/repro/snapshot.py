"""Catalog snapshot persistence: save/load a deployment's resource registry.

A FaiRank deployment is its :class:`~repro.catalog.Catalog`: the datasets,
scoring functions, marketplaces and formulations a server resolves requests
against.  This module serialises that registry to a single JSON *snapshot*
file so a deployment can be rebuilt byte-identically in another process —
``fairank serve --catalog snapshot.json`` boots a server from one, and
:meth:`~repro.session.engine.FaiRankEngine.save_catalog` exports a live
session's registry.

Snapshot format (``{"format": "fairank-catalog", "version": 1}``):

* **datasets** travel *inline* (schema + rows) by default, or *by loader
  reference* (``{"source": {"loader": ...}}``) for populations that are
  cheaper to rebuild than to embed — the built-in Table 1 example, a CSV
  file on disk, a seeded synthetic population, or an on-disk *column
  sidecar* (``save_catalog(..., columnar_datasets=...)`` writes each
  dataset's raw column arrays under ``<snapshot>.columns/<fingerprint>/``
  and load re-opens them as read-only memory maps — the only practical
  shape for a million-row population);
* **scoring functions** travel by their normalised weights (only
  transparent :class:`~repro.scoring.linear.LinearScoringFunction` entries
  are snapshotable — an opaque or rank-derived function has no portable
  content representation);
* **marketplaces** embed their workers dataset plus every job's title,
  weights and candidate filter (the whole declarative filter algebra of
  :mod:`repro.data.filters` round-trips);
* **formulations** travel by name: objective / aggregation / distance
  strings plus the binning.

Every entry records the resource's content fingerprint at save time; load
recomputes fingerprints and refuses a snapshot whose reconstructed content
drifted, so a booted deployment serves exactly the cache keys the saving
deployment computed.  All failure modes (unreadable file, truncated JSON,
unknown version, unsupported resource) raise
:class:`~repro.errors.CatalogError` with a message naming the problem.
"""

from __future__ import annotations

import json
from dataclasses import replace as dataclass_replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import CatalogError, FaiRankError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.catalog import Catalog

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "save_catalog",
    "load_catalog",
    "snapshot_fingerprints",
    "function_to_portable_json",
    "function_from_portable_json",
]

#: Identifies a snapshot file (so arbitrary JSON is rejected loudly).
SNAPSHOT_FORMAT = "fairank-catalog"

#: The snapshot schema version this build writes (and the only one it reads).
SNAPSHOT_VERSION = 1


# -- datasets -----------------------------------------------------------------


def _schema_to_json(schema) -> List[Dict[str, object]]:
    return [
        {
            "name": attr.name,
            "kind": attr.kind.value,
            "atype": attr.atype.value,
            "domain": None if attr.domain is None else list(attr.domain),
            "description": attr.description,
        }
        for attr in schema
    ]


def _schema_from_json(entries):
    from repro.data.schema import Attribute, AttributeKind, AttributeType, Schema

    attributes = []
    for entry in entries:
        attributes.append(
            Attribute(
                name=str(entry["name"]),
                kind=AttributeKind(entry["kind"]),
                atype=AttributeType(entry["atype"]),
                domain=None if entry.get("domain") is None else tuple(entry["domain"]),
                description=str(entry.get("description", "")),
            )
        )
    return Schema(tuple(attributes))


def _dataset_to_json(dataset) -> Dict[str, object]:
    schema = _schema_to_json(dataset.schema)
    individuals = [
        {
            "uid": individual.uid,
            "values": {name: individual.values[name] for name in dataset.schema.names},
        }
        for individual in dataset
    ]
    return {"name": dataset.name, "schema": schema, "individuals": individuals}


def _dataset_from_json(payload: Mapping[str, object]):
    from repro.data.dataset import Dataset, Individual

    schema = _schema_from_json(payload["schema"])  # type: ignore[arg-type]
    individuals = tuple(
        Individual(uid=str(row["uid"]), values=dict(row["values"]))
        for row in payload["individuals"]  # type: ignore[union-attr]
    )
    return Dataset(
        schema=schema,
        individuals=individuals,
        name=str(payload.get("name", "dataset")),
        validate=False,
    )


#: Loader registry for datasets saved *by reference* instead of inline.  A
#: source spec is ``{"loader": <key>, ...loader-specific fields...}``.
#: ``base_dir`` anchors relative paths (the snapshot file's directory, so a
#: snapshot plus its column sidecars can be moved or shipped as a unit).
def _load_dataset_source(source: Mapping[str, object], base_dir: Optional[Path] = None):
    loader = source.get("loader")
    if loader == "columns":
        from repro.data.columns import ColumnStore
        from repro.data.dataset import Dataset

        try:
            directory = Path(str(source["dir"]))
            schema = _schema_from_json(source["schema"])  # type: ignore[arg-type]
        except KeyError as missing:
            raise CatalogError(
                f"columns dataset source is missing field {missing.args[0]!r} "
                "(needs dir, schema)"
            ) from None
        if not directory.is_absolute() and base_dir is not None:
            directory = base_dir / directory
        store = ColumnStore.load(directory, mmap=bool(source.get("mmap", True)))
        return Dataset.from_store(
            schema,
            store,
            name=str(source.get("name", "dataset")),
            validate=False,
        )
    if loader == "example_table1":
        from repro.data.loaders import load_example_table1

        return load_example_table1(name=str(source.get("name", "table1-example")))
    if loader == "csv":
        from repro.data.loaders import load_csv

        try:
            return load_csv(
                str(source["path"]),
                protected_names=[str(n) for n in source["protected"]],  # type: ignore[union-attr]
                observed_names=[str(n) for n in source["observed"]],  # type: ignore[union-attr]
                name=None if source.get("name") is None else str(source["name"]),
                uid_field=(
                    None if source.get("uid_field") is None else str(source["uid_field"])
                ),
            )
        except KeyError as missing:
            raise CatalogError(
                f"csv dataset source is missing field {missing.args[0]!r} "
                "(needs path, protected, observed)"
            ) from None
    if loader == "synthetic":
        from repro.experiments.workloads import synthetic_population

        return synthetic_population(
            size=int(source.get("size", 400)),  # type: ignore[arg-type]
            seed=int(source.get("seed", 7)),  # type: ignore[arg-type]
            columnar=bool(source.get("columnar", False)),
        )
    raise CatalogError(
        f"unknown dataset loader {loader!r} in catalog snapshot; "
        "known loaders: columns, csv, example_table1, synthetic"
    )


# -- scoring functions --------------------------------------------------------


def _function_to_json(function, context: str) -> Dict[str, object]:
    from repro.scoring.linear import LinearScoringFunction

    if not isinstance(function, LinearScoringFunction):
        raise CatalogError(
            f"cannot snapshot {context}: {type(function).__name__} has no portable "
            "content representation (only linear scoring functions can be saved)"
        )
    return {
        "type": "linear",
        "name": function.name,
        "weights": dict(function.weights),
    }


def _function_from_json(payload: Mapping[str, object]):
    from repro.scoring.linear import LinearScoringFunction

    if payload.get("type") != "linear":
        raise CatalogError(
            f"unknown scoring-function type {payload.get('type')!r} in catalog snapshot"
        )
    # The saved weights are already normalised; normalize=False preserves them
    # bit-for-bit so the reloaded function's fingerprint matches exactly.
    return LinearScoringFunction(
        dict(payload["weights"]),  # type: ignore[arg-type]
        name=str(payload.get("name", "linear")),
        normalize=False,
    )


def function_to_portable_json(function, context: str = "scoring function") -> Dict[str, object]:
    """Portable JSON for a scoring function (warm-start bundles, snapshots).

    Raises :class:`~repro.errors.CatalogError` for function types without a
    portable content representation — callers skip those, they don't crash.
    """
    return _function_to_json(function, context)


def function_from_portable_json(payload: Mapping[str, object]):
    """Rebuild a scoring function from :func:`function_to_portable_json` output.

    Weights are preserved bit-for-bit so the rebuilt function's content
    fingerprint matches the one recorded at save time.
    """
    return _function_from_json(payload)


# -- filters ------------------------------------------------------------------


def _filter_to_json(row_filter) -> Dict[str, object]:
    from repro.data.filters import And, Between, Equals, Not, OneOf, Or, TrueFilter

    if isinstance(row_filter, TrueFilter):
        return {"op": "true"}
    if isinstance(row_filter, Equals):
        return {"op": "equals", "attribute": row_filter.attribute, "value": row_filter.value}
    if isinstance(row_filter, OneOf):
        return {
            "op": "one_of",
            "attribute": row_filter.attribute,
            "values": list(row_filter.values),
        }
    if isinstance(row_filter, Between):
        return {
            "op": "between",
            "attribute": row_filter.attribute,
            "low": row_filter.low,
            "high": row_filter.high,
        }
    if isinstance(row_filter, Not):
        return {"op": "not", "inner": _filter_to_json(row_filter.inner)}
    if isinstance(row_filter, And):
        return {"op": "and", "parts": [_filter_to_json(part) for part in row_filter.parts]}
    if isinstance(row_filter, Or):
        return {"op": "or", "parts": [_filter_to_json(part) for part in row_filter.parts]}
    raise CatalogError(
        f"cannot snapshot candidate filter {type(row_filter).__name__}; "
        "only the declarative filter algebra of repro.data.filters round-trips"
    )


def _filter_from_json(payload: Mapping[str, object]):
    from repro.data.filters import And, Between, Equals, Not, OneOf, Or, TrueFilter

    op = payload.get("op")
    if op == "true":
        return TrueFilter()
    if op == "equals":
        return Equals(str(payload["attribute"]), payload["value"])
    if op == "one_of":
        return OneOf(str(payload["attribute"]), tuple(payload["values"]))  # type: ignore[arg-type]
    if op == "between":
        return Between(
            str(payload["attribute"]),
            float(payload["low"]),  # type: ignore[arg-type]
            float(payload["high"]),  # type: ignore[arg-type]
        )
    if op == "not":
        return Not(_filter_from_json(payload["inner"]))  # type: ignore[arg-type]
    if op == "and":
        parts = payload["parts"]
        return And(tuple(_filter_from_json(part) for part in parts))  # type: ignore[union-attr]
    if op == "or":
        parts = payload["parts"]
        return Or(tuple(_filter_from_json(part) for part in parts))  # type: ignore[union-attr]
    raise CatalogError(f"unknown filter op {op!r} in catalog snapshot")


# -- marketplaces -------------------------------------------------------------


def _marketplace_to_json(marketplace) -> Dict[str, object]:
    jobs = [
        {
            "title": job.title,
            "description": job.description,
            "function": _function_to_json(
                job.function, f"job {job.title!r} of marketplace {marketplace.name!r}"
            ),
            "candidate_filter": _filter_to_json(job.candidate_filter),
        }
        for job in marketplace
    ]
    return {
        "name": marketplace.name,
        "workers": _dataset_to_json(marketplace.workers),
        "jobs": jobs,
    }


def _marketplace_from_json(payload: Mapping[str, object]):
    from repro.marketplace.entities import Job, Marketplace

    workers = _dataset_from_json(payload["workers"])  # type: ignore[arg-type]
    jobs = [
        Job(
            title=str(entry["title"]),
            function=_function_from_json(entry["function"]),
            candidate_filter=_filter_from_json(entry["candidate_filter"]),
            description=str(entry.get("description", "")),
        )
        for entry in payload["jobs"]  # type: ignore[union-attr]
    ]
    return Marketplace(name=str(payload.get("name", "marketplace")), workers=workers, jobs=jobs)


# -- formulations -------------------------------------------------------------


def _formulation_to_json(formulation) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "objective": formulation.objective.value,
        "aggregation": formulation.aggregation.value,
        "distance": formulation.distance.name,
        "bins": formulation.bins,
    }
    if formulation.binning is not None:
        payload["binning"] = {
            "low": formulation.binning.low,
            "high": formulation.binning.high,
            "bins": formulation.binning.bins,
        }
    return payload


def _formulation_from_json(payload: Mapping[str, object]):
    from repro.core.formulations import Formulation
    from repro.metrics.histogram import Binning

    formulation = Formulation.from_names(
        objective=str(payload["objective"]),
        aggregation=str(payload["aggregation"]),
        distance=str(payload["distance"]),
        bins=int(payload["bins"]),  # type: ignore[arg-type]
    )
    binning = payload.get("binning")
    if binning is not None:
        formulation = dataclass_replace(
            formulation,
            binning=Binning(
                low=float(binning["low"]),  # type: ignore[index]
                high=float(binning["high"]),  # type: ignore[index]
                bins=int(binning["bins"]),  # type: ignore[index]
            ),
        )
    return formulation


# -- snapshot save/load -------------------------------------------------------


def _resource_body(resource, dataset_sources: Mapping[str, Mapping[str, object]]):
    """The kind-specific body of one snapshot entry."""
    from repro.catalog import ResourceKind

    if resource.kind is ResourceKind.DATASET:
        source = dataset_sources.get(resource.name)
        if source is not None:
            if "loader" not in source:
                raise CatalogError(
                    f"dataset source for {resource.name!r} needs a 'loader' field"
                )
            return {"source": dict(source)}
        return {"dataset": _dataset_to_json(resource.value)}
    if resource.kind is ResourceKind.FUNCTION:
        return {"function": _function_to_json(resource.value, f"function {resource.name!r}")}
    if resource.kind is ResourceKind.MARKETPLACE:
        return {"marketplace": _marketplace_to_json(resource.value)}
    if resource.kind is ResourceKind.FORMULATION:
        return {"formulation": _formulation_to_json(resource.value)}
    raise CatalogError(f"unhandled resource kind {resource.kind!r}")  # pragma: no cover


def save_catalog(
    catalog: "Catalog",
    path: Union[str, Path],
    *,
    dataset_sources: Optional[Mapping[str, Mapping[str, object]]] = None,
    columnar_datasets: Union[bool, Sequence[str], None] = None,
) -> Dict[str, object]:
    """Write ``catalog`` to a snapshot file; returns the snapshot document.

    ``dataset_sources`` maps a registered dataset name to a loader reference
    (e.g. ``{"loader": "csv", "path": ..., "protected": [...], "observed":
    [...]}``); named datasets are saved by that reference instead of inline.

    ``columnar_datasets`` names registered datasets to persist as on-disk
    *column sidecars*: each one's values are written as raw column files
    under ``<path>.columns/<fingerprint-prefix>/`` (see
    :meth:`repro.data.columns.ColumnStore.save`) and the snapshot entry
    records a ``{"loader": "columns"}`` reference, so
    :func:`load_catalog` re-opens the arrays as read-only memory maps
    instead of parsing embedded JSON rows — the only practical shape for a
    million-row population.  ``True`` selects every registered dataset.
    The sidecar directory travels with the snapshot file (the recorded path
    is relative), and a name may not appear in both ``dataset_sources`` and
    ``columnar_datasets``.
    """
    sources = dict(dataset_sources or {})
    path = Path(path)
    dataset_names = {
        resource.name
        for resource in catalog.resources()
        if resource.kind.value == "dataset"
    }
    if columnar_datasets is True:
        columnar = set(dataset_names)
    else:
        columnar = {str(name) for name in (columnar_datasets or ())}
        unknown_columnar = columnar - dataset_names
        if unknown_columnar:
            raise CatalogError(
                "columnar_datasets references unregistered datasets: "
                f"{sorted(unknown_columnar)}"
            )
    overlap = columnar & set(sources)
    if overlap:
        raise CatalogError(
            f"datasets named in both dataset_sources and columnar_datasets: "
            f"{sorted(overlap)}"
        )
    if columnar:
        sidecar_root = path.with_name(path.name + ".columns")
        for resource in catalog.resources():
            if resource.name not in columnar or resource.kind.value != "dataset":
                continue
            dataset = resource.value
            directory = sidecar_root / resource.fingerprint[:16]
            try:
                directory.mkdir(parents=True, exist_ok=True)
                dataset.to_store().save(directory)
            except OSError as error:
                raise CatalogError(
                    f"cannot write column sidecar for dataset {resource.name!r}: {error}"
                ) from None
            sources[resource.name] = {
                "loader": "columns",
                "dir": f"{sidecar_root.name}/{resource.fingerprint[:16]}",
                "name": dataset.name,
                "schema": _schema_to_json(dataset.schema),
            }
    entries: List[Dict[str, object]] = []
    for resource in catalog.resources():
        entry: Dict[str, object] = {
            "kind": resource.kind.value,
            "name": resource.name,
            "fingerprint": resource.fingerprint,
            "frozen": resource.frozen,
        }
        entry.update(_resource_body(resource, sources))
        entries.append(entry)
    unknown = set(sources) - {
        entry["name"] for entry in entries if entry["kind"] == "dataset"
    }
    if unknown:
        raise CatalogError(
            f"dataset_sources references unregistered datasets: {sorted(unknown)}"
        )
    document: Dict[str, object] = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "resources": entries,
    }
    try:
        Path(path).write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    except OSError as error:
        raise CatalogError(f"cannot write catalog snapshot: {error}") from None
    return document


def _rebuild_resource(entry: Mapping[str, object], base_dir: Optional[Path] = None):
    """(kind, value) for one snapshot entry."""
    from repro.catalog import ResourceKind

    try:
        kind = ResourceKind(entry["kind"])
    except (KeyError, ValueError):
        raise CatalogError(
            f"catalog snapshot entry has unknown kind {entry.get('kind')!r}"
        ) from None
    if kind is ResourceKind.DATASET:
        if "source" in entry:
            return kind, _load_dataset_source(entry["source"], base_dir)  # type: ignore[arg-type]
        return kind, _dataset_from_json(entry["dataset"])  # type: ignore[arg-type]
    if kind is ResourceKind.FUNCTION:
        return kind, _function_from_json(entry["function"])  # type: ignore[arg-type]
    if kind is ResourceKind.MARKETPLACE:
        return kind, _marketplace_from_json(entry["marketplace"])  # type: ignore[arg-type]
    return kind, _formulation_from_json(entry["formulation"])  # type: ignore[arg-type]


def _read_snapshot_document(path: Union[str, Path]) -> List[Mapping[str, object]]:
    """Read and validate a snapshot file; returns its ``resources`` entries."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise CatalogError(f"cannot read catalog snapshot: {error}") from None
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise CatalogError(
            f"catalog snapshot {path} is not valid JSON (truncated file?): {error}"
        ) from None
    if not isinstance(document, dict) or document.get("format") != SNAPSHOT_FORMAT:
        raise CatalogError(
            f"{path} is not a catalog snapshot (missing "
            f'"format": "{SNAPSHOT_FORMAT}")'
        )
    version = document.get("version")
    if version != SNAPSHOT_VERSION:
        raise CatalogError(
            f"unsupported catalog snapshot version {version!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    entries = document.get("resources")
    if not isinstance(entries, list):
        raise CatalogError(f"catalog snapshot {path} has no 'resources' list")
    return entries


def snapshot_fingerprints(path: Union[str, Path]) -> Dict[Tuple[str, str], str]:
    """The ``(kind, name) -> fingerprint`` index of a snapshot file.

    Reads only the snapshot's recorded metadata — no dataset, marketplace or
    function is rebuilt — so a *shared-nothing* process (the shard router)
    can route requests by content fingerprint without holding any resource
    in memory.  Validates the file exactly like :func:`load_catalog` (same
    :class:`~repro.errors.CatalogError` failure modes for a missing file,
    truncated JSON or an unknown version).
    """
    fingerprints: Dict[Tuple[str, str], str] = {}
    for index, entry in enumerate(_read_snapshot_document(path), start=1):
        if not isinstance(entry, Mapping) or "name" not in entry or "kind" not in entry:
            raise CatalogError(
                f"catalog snapshot entry #{index} is malformed (needs kind and name)"
            )
        fingerprint = entry.get("fingerprint")
        if fingerprint is not None:
            fingerprints[(str(entry["kind"]), str(entry["name"]))] = str(fingerprint)
    return fingerprints


def load_catalog(path: Union[str, Path]) -> "Catalog":
    """Rebuild a :class:`~repro.catalog.Catalog` from a snapshot file.

    Raises :class:`~repro.errors.CatalogError` for an unreadable or truncated
    file, an unknown snapshot version, an unsupported resource entry, or an
    entry whose reconstructed content fingerprint no longer matches the one
    recorded at save time (e.g. a CSV source file that changed on disk).
    """
    from repro.catalog import Catalog

    entries = _read_snapshot_document(path)
    # Relative loader paths (column sidecars) resolve against the snapshot's
    # own directory, so a snapshot + sidecar tree relocates as a unit.
    base_dir = Path(path).resolve().parent
    catalog = Catalog()
    for index, entry in enumerate(entries, start=1):
        if not isinstance(entry, Mapping) or "name" not in entry:
            raise CatalogError(
                f"catalog snapshot entry #{index} is malformed (needs kind and name)"
            )
        try:
            kind, value = _rebuild_resource(entry, base_dir)
        except CatalogError:
            raise
        except (FaiRankError, KeyError, TypeError, ValueError) as error:
            raise CatalogError(
                f"catalog snapshot entry #{index} ({entry.get('name')!r}) cannot be "
                f"rebuilt: {error}"
            ) from None
        resource = catalog.register(
            value, name=str(entry["name"]), kind=kind, freeze=bool(entry.get("frozen"))
        )
        saved_fingerprint = entry.get("fingerprint")
        if saved_fingerprint is not None and resource.fingerprint != saved_fingerprint:
            raise CatalogError(
                f"catalog snapshot entry {resource.name!r} ({kind.value}) drifted: "
                f"reconstructed content fingerprint {resource.fingerprint[:12]} does "
                f"not match the saved {str(saved_fingerprint)[:12]}"
            )
    return catalog
