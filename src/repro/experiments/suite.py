"""The experiment suite: one runner per table/figure of the paper (E1-E12).

See DESIGN.md section 2 for the experiment index.  Each runner returns one or
more :class:`~repro.roles.report.ReportTable` objects; benchmarks wrap the
same runners with pytest-benchmark, and ``examples/`` call a subset of them.
Default parameters are sized to finish within seconds on a laptop; pass
larger values through :func:`repro.experiments.harness.run_experiment` for
bigger runs.
"""

from __future__ import annotations

import time
from typing import List, Sequence


from repro.anonymize.kanonymity import GlobalRecodingAnonymizer, MondrianAnonymizer
from repro.anonymize.metrics import information_loss
from repro.baselines.predefined import single_attribute_baseline
from repro.core.exhaustive import count_partitionings, exhaustive_search
from repro.core.formulations import Formulation
from repro.core.partition import Partitioning
from repro.core.quantify import quantify
from repro.core.unfairness import unfairness, unfairness_breakdown
from repro.data.loaders import TABLE1_PUBLISHED_SCORES
from repro.experiments.harness import registry
from repro.experiments.workloads import (
    biased_population,
    crawled_marketplaces,
    crowdsourcing_marketplace,
    scaling_populations,
    synthetic_population,
    table1_workload,
)
from repro.roles.auditor import Auditor
from repro.roles.end_user import EndUser
from repro.roles.job_owner import JobOwner
from repro.roles.report import ReportTable
from repro.scoring.rank import RankDerivedScorer
from repro.session.config import SessionConfig
from repro.session.engine import FaiRankEngine

__all__ = ["registry"]


# ---------------------------------------------------------------------------
# E1 — Table 1: the example dataset and its scoring function
# ---------------------------------------------------------------------------


@registry.register("E1", "Table 1: example dataset, scoring function and published f(w)")
def run_table1_example() -> List[ReportTable]:
    dataset, function = table1_workload()
    scores = function.score_map(dataset)
    table = ReportTable(
        title="Table 1 — example dataset (reproduced)",
        headers=["individual", "Gender", "Country", "Year of Birth", "Language",
                 "Ethnicity", "Experience", "Language Test", "Rating",
                 "f(w) computed", "f(w) paper", "match"],
    )
    for individual in dataset:
        computed = scores[individual.uid]
        published = TABLE1_PUBLISHED_SCORES[individual.uid]
        table.add_row(
            individual.uid,
            individual["Gender"],
            individual["Country"],
            individual["Year of Birth"],
            individual["Language"],
            individual["Ethnicity"],
            individual["Experience"],
            individual["Language Test"],
            individual["Rating"],
            computed,
            published,
            "yes" if abs(computed - published) < 1e-9 else "no",
        )
    matches = sum(1 for row in table.rows if row[-1] == "yes")
    table.add_note(f"{matches}/{len(table.rows)} published scores reproduced exactly "
                   f"with weights 0.3*Language Test + 0.7*Rating")
    return [table]


# ---------------------------------------------------------------------------
# E2 — Figure 2: the worked-example partitioning
# ---------------------------------------------------------------------------


@registry.register(
    "E2", "Figure 2: partitioning of the example dataset with per-partition histograms"
)
def run_figure2_partitioning(bins: int = 5) -> List[ReportTable]:
    dataset, function = table1_workload()
    formulation = Formulation(bins=bins)

    # The partitioning shown in Figure 2: split on Gender, then split only the
    # Male partition on Language.
    from repro.core.partition import root_partition, split_partition

    root = root_partition(dataset)
    by_gender = {p.constraint_value("Gender"): p for p in split_partition(root, "Gender")}
    male_by_language = split_partition(by_gender["Male"], "Language")
    figure2 = Partitioning(dataset, tuple(male_by_language) + (by_gender["Female"],))

    table = ReportTable(
        title="Figure 2 — partitioning {Male-English, Male-Indian, Male-Other, Female}",
        headers=["partition", "members", "size", "score histogram", "mean score"],
    )
    binning = formulation.effective_binning
    for partition in figure2:
        histogram = partition.histogram(function, binning=binning)
        scores = partition.scores(function)
        table.add_row(
            partition.label,
            ", ".join(partition.uids),
            partition.size,
            histogram.describe(),
            float(scores.mean()),
        )
    value = unfairness(figure2, function, formulation)
    table.add_note(f"unfairness (average pairwise EMD, {bins} bins): {value:.4f}")

    greedy = quantify(dataset, function, formulation=formulation,
                      attributes=["Gender", "Language", "Country", "Ethnicity"])
    comparison = ReportTable(
        title="Figure 2 vs QUANTIFY output on the same dataset",
        headers=["partitioning", "#groups", "unfairness"],
    )
    comparison.add_row("Figure 2 (paper's illustration)", len(figure2), value)
    comparison.add_row("QUANTIFY (greedy search)", len(greedy.partitioning), greedy.unfairness)
    comparison.add_note("QUANTIFY is free to pick different attributes, so its unfairness "
                        "should be >= the illustrative partitioning's value")
    return [table, comparison]


# ---------------------------------------------------------------------------
# E3 — Figure 1: the end-to-end pipeline through the engine
# ---------------------------------------------------------------------------


@registry.register(
    "E3",
    "Figure 1: end-to-end pipeline (dataset -> filter -> scoring -> optimisation -> panels)",
)
def run_pipeline(size: int = 300, seed: int = 7) -> List[ReportTable]:
    from repro.data.filters import Equals

    dataset, _ = biased_population(size=size, seed=seed)
    engine = FaiRankEngine()
    engine.register_dataset(dataset, name="crowdsourcing")
    from repro.scoring.linear import LinearScoringFunction

    engine.register_function(
        LinearScoringFunction({"Language Test": 0.6, "Rating": 0.4}, name="writing-job")
    )
    engine.register_function(
        LinearScoringFunction({"Language Test": 0.2, "Rating": 0.8}, name="rating-heavy-job")
    )

    demographics = ("Gender", "Country", "Language", "Ethnicity")
    panels = [
        engine.open_panel(SessionConfig("crowdsourcing", "writing-job",
                                        attributes=demographics, min_partition_size=5)),
        engine.open_panel(SessionConfig("crowdsourcing", "rating-heavy-job",
                                        attributes=demographics, min_partition_size=5)),
        engine.open_panel(
            SessionConfig("crowdsourcing", "writing-job", attributes=demographics,
                          min_partition_size=5, row_filter=Equals("Language", "English"))
        ),
        engine.open_panel(SessionConfig("crowdsourcing", "writing-job",
                                        attributes=demographics, min_partition_size=5,
                                        anonymity_k=5)),
        engine.open_panel(SessionConfig("crowdsourcing", "writing-job",
                                        attributes=demographics, min_partition_size=5,
                                        use_ranks_only=True)),
    ]
    table = engine.compare([panel.panel_id for panel in panels])
    table.title = "Figure 1 — one engine run per pipeline stage variation"
    return [table]


# ---------------------------------------------------------------------------
# E4 — greedy QUANTIFY vs exhaustive optimum
# ---------------------------------------------------------------------------


@registry.register("E4", "Greedy QUANTIFY vs exhaustive optimum: quality and runtime")
def run_greedy_vs_exhaustive(
    sizes: Sequence[int] = (60, 120, 200),
    attribute_counts: Sequence[int] = (2, 3),
    seed: int = 7,
) -> List[ReportTable]:
    table = ReportTable(
        title="Greedy vs exhaustive (most-unfair / average EMD)",
        headers=["n", "#attributes", "search space", "greedy unfairness",
                 "exact unfairness", "ratio", "greedy time (s)", "exact time (s)", "speed-up"],
    )
    for size in sizes:
        population = synthetic_population(size=size, seed=seed)
        for count in attribute_counts:
            attributes = list(population.schema.protected_names[:count])
            # Keep cardinalities manageable for the exhaustive baseline.
            attributes = [a for a in attributes if a not in ("Year of Birth", "Experience")][:count]
            if len(attributes) < 2:
                continue
            from repro.scoring.linear import LinearScoringFunction

            function = LinearScoringFunction(
                {"Language Test": 0.5, "Rating": 0.5}, name="balanced"
            )
            space = count_partitionings(population, attributes=attributes, limit=500_000)

            start = time.perf_counter()
            greedy = quantify(population, function, attributes=attributes)
            greedy_time = time.perf_counter() - start

            start = time.perf_counter()
            exact = exhaustive_search(population, function, attributes=attributes, limit=500_000)
            exact_time = time.perf_counter() - start

            ratio = greedy.unfairness / exact.unfairness if exact.unfairness else 1.0
            table.add_row(
                size, len(attributes), space, greedy.unfairness, exact.unfairness,
                ratio, greedy_time, exact_time,
                exact_time / greedy_time if greedy_time > 0 else float("inf"),
            )
    table.add_note(
        "ratio = greedy unfairness / exact optimum (1.0 means the heuristic found the optimum)"
    )
    return [table]


# ---------------------------------------------------------------------------
# E5 — fairness formulations
# ---------------------------------------------------------------------------


@registry.register("E5", "Fairness formulations: objective x aggregation x distance")
def run_formulations(size: int = 300, seed: int = 7) -> List[ReportTable]:
    population, bias = biased_population(size=size, seed=seed)
    from repro.scoring.linear import LinearScoringFunction

    function = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    attributes = ["Gender", "Country", "Language", "Ethnicity"]

    table = ReportTable(
        title="Unfairness under different formulations (same population and function)",
        headers=["objective", "aggregation", "distance", "unfairness", "#groups", "least favored"],
    )
    # Formulations are resolved from plain name strings through the single
    # Formulation.from_names path shared with the CLI and the wire protocol.
    for objective in ("most_unfair", "least_unfair"):
        for aggregation in ("average", "maximum", "variance"):
            for distance_name in ("emd", "total_variation", "mean_gap"):
                formulation = Formulation.from_names(
                    objective=objective,
                    aggregation=aggregation,
                    distance=distance_name,
                )
                result = quantify(population, function, formulation=formulation,
                                  attributes=attributes)
                breakdown = unfairness_breakdown(result.partitioning, function, formulation)
                table.add_row(
                    objective,
                    aggregation,
                    distance_name,
                    result.unfairness,
                    len(result.partitioning),
                    breakdown.least_favored or "-",
                )
    table.add_note(f"planted bias: {bias.describe()}")
    return [table]


# ---------------------------------------------------------------------------
# E6 — data transparency (k-anonymisation)
# ---------------------------------------------------------------------------


@registry.register("E6", "Data transparency: k-anonymisation vs measured unfairness")
def run_anonymization(
    size: int = 300,
    seed: int = 7,
    k_values: Sequence[int] = (1, 2, 5, 10, 20),
) -> List[ReportTable]:
    population, bias = biased_population(size=size, seed=seed)
    from repro.scoring.linear import LinearScoringFunction

    function = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    quasi_identifiers = ["Gender", "Country", "Language", "Ethnicity"]

    global_table = ReportTable(
        title="Global-recoding k-anonymisation (ARX-style) vs unfairness",
        headers=["k", "unfairness", "#groups", "generalisation intensity",
                 "suppressed", "least favored"],
    )
    mondrian_table = ReportTable(
        title="Mondrian (local recoding) k-anonymisation vs unfairness",
        headers=["k", "unfairness", "#groups", "generalisation intensity", "least favored"],
    )
    anonymizer = GlobalRecodingAnonymizer()
    mondrian = MondrianAnonymizer()
    for k in k_values:
        if k <= 1:
            anonymized = population
            loss_intensity = 0.0
            suppressed = 0
            mond_dataset = population
            mond_intensity = 0.0
        else:
            result = anonymizer.anonymize(population, k=k, quasi_identifiers=quasi_identifiers)
            anonymized = result.dataset
            loss = information_loss(result)
            loss_intensity = loss.generalization_intensity
            suppressed = len(result.suppressed_uids)
            mond_result = mondrian.anonymize(population, k=k, quasi_identifiers=quasi_identifiers)
            mond_dataset = mond_result.dataset
            mond_intensity = information_loss(mond_result).generalization_intensity

        greedy = quantify(anonymized, function, attributes=quasi_identifiers)
        breakdown = unfairness_breakdown(greedy.partitioning, function, greedy.formulation)
        global_table.add_row(k, greedy.unfairness, len(greedy.partitioning),
                             loss_intensity, suppressed, breakdown.least_favored or "-")

        mond_greedy = quantify(mond_dataset, function, attributes=quasi_identifiers)
        mond_breakdown = unfairness_breakdown(
            mond_greedy.partitioning, function, mond_greedy.formulation
        )
        mondrian_table.add_row(k, mond_greedy.unfairness, len(mond_greedy.partitioning),
                               mond_intensity, mond_breakdown.least_favored or "-")
    global_table.add_note(f"planted bias: {bias.describe()}")
    global_table.add_note("expected shape: unfairness and group resolution decrease as k grows")
    return [global_table, mondrian_table]


# ---------------------------------------------------------------------------
# E7 — function transparency (true scores vs rank-derived scores)
# ---------------------------------------------------------------------------


@registry.register("E7", "Function transparency: true scores vs rank-only histograms")
def run_transparency(size: int = 300, seed: int = 7) -> List[ReportTable]:
    population, bias = biased_population(size=size, seed=seed)
    from repro.scoring.linear import LinearScoringFunction

    attributes = ["Gender", "Country", "Language", "Ethnicity"]
    table = ReportTable(
        title="Unfairness with the true function vs rank-derived scores",
        headers=["job (weights)", "true-score unfairness", "rank-linear unfairness",
                 "rank-exposure unfairness", "same least-favored group"],
    )
    weight_settings = [
        {"Language Test": 0.7, "Rating": 0.3},
        {"Language Test": 0.5, "Rating": 0.5},
        {"Language Test": 0.2, "Rating": 0.8},
    ]
    def _least_favored_constraints(result, function) -> frozenset:
        """Canonical (attribute, value) constraints of the least-favoured partition."""
        breakdown = unfairness_breakdown(result.partitioning, function, result.formulation)
        if breakdown.least_favored is None:
            return frozenset()
        partition = result.partitioning.find(breakdown.least_favored)
        return frozenset(partition.constraints)

    for weights in weight_settings:
        function = LinearScoringFunction(weights, name="hidden")
        true_result = quantify(population, function, attributes=attributes)

        ranking = function.rank(population)
        linear_scorer = RankDerivedScorer(ranking, weighting="linear", name="ranks-linear")
        exposure_scorer = RankDerivedScorer(ranking, weighting="exposure", name="ranks-exposure")
        linear_result = quantify(population, linear_scorer, attributes=attributes)
        exposure_result = quantify(population, exposure_scorer, attributes=attributes)

        true_constraints = _least_favored_constraints(true_result, function)
        rank_constraints = _least_favored_constraints(linear_result, linear_scorer)
        # "Same" means one identified subgroup refines or equals the other
        # (e.g. Gender=Female vs Gender=Female & Ethnicity=X): the rank-only
        # view may lose resolution but should not point somewhere disjoint.
        same_group = bool(true_constraints & rank_constraints) or (
            true_constraints == rank_constraints
        )

        label = ", ".join(f"{k}={v}" for k, v in weights.items())
        table.add_row(
            label,
            true_result.unfairness,
            linear_result.unfairness,
            exposure_result.unfairness,
            "yes" if same_group else "no",
        )
    table.add_note(f"planted bias: {bias.describe()}")
    table.add_note("expected shape: rank-only analysis preserves the ordering of jobs by "
                   "unfairness but changes the absolute values")
    return [table]


# ---------------------------------------------------------------------------
# E8 — AUDITOR scenario
# ---------------------------------------------------------------------------


@registry.register("E8", "AUDITOR scenario: marketplace-wide fairness report")
def run_auditor(size: int = 300, seed: int = 7) -> List[ReportTable]:
    marketplace = crowdsourcing_marketplace(size=size, seed=seed)
    # Audit over the demographic (categorical) protected attributes; the
    # near-continuous ones (year of birth, experience) would shatter the
    # population into readably meaningless micro-groups.
    auditor = Auditor(
        attributes=["Gender", "Country", "Language", "Ethnicity"], min_partition_size=5
    )
    report = auditor.audit_marketplace(marketplace)
    tables = [report.to_table()]
    tables.append(
        auditor.audit_with_anonymization(marketplace, marketplace.job_titles[0],
                                         k_values=(1, 2, 5, 10))
    )
    return tables


# ---------------------------------------------------------------------------
# E9 — JOB OWNER scenario
# ---------------------------------------------------------------------------


@registry.register("E9", "JOB OWNER scenario: scoring-function variants for one job")
def run_job_owner(size: int = 300, seed: int = 7, sweep_steps: int = 5) -> List[ReportTable]:
    marketplace = crowdsourcing_marketplace(size=size, seed=seed)
    owner = JobOwner(
        attributes=["Gender", "Country", "Language", "Ethnicity"], min_partition_size=5
    )
    report = owner.explore_job(marketplace, "Content writing", sweep_steps=sweep_steps)
    return [report.to_table()]


# ---------------------------------------------------------------------------
# E10 — END-USER scenario
# ---------------------------------------------------------------------------


@registry.register("E10", "END-USER scenario: how a group fares across jobs and marketplaces")
def run_end_user(workers: int = 250, seed: int = 11) -> List[ReportTable]:
    marketplaces = crawled_marketplaces(workers=workers, seed=seed)
    by_name = {marketplace.name: marketplace for marketplace in marketplaces}

    # A young female worker comparing manual-labour jobs on the two French
    # platforms (the paper's example: "Young professionals in Grenoble"
    # looking at "installing wood panels").
    end_user = EndUser({"Gender": "Female", "Age Band": "18-29"})
    tables = [end_user.compare_jobs(by_name["qapa-sim"])]
    french_platforms = [by_name["qapa-sim"], by_name["mistertemp-sim"]]
    wood_panel_table = None
    try:
        wood_panel_table = end_user.compare_marketplaces(french_platforms, "Installing wood panels")
    except Exception:  # pragma: no cover - depends on catalogue
        wood_panel_table = None
    if wood_panel_table is not None:
        tables.append(wood_panel_table)

    # A Black male worker on the US platforms.
    us_user = EndUser({"Gender": "Male", "Ethnicity": "Black"})
    tables.append(us_user.compare_jobs(by_name["taskrabbit-sim"]))
    return tables


# ---------------------------------------------------------------------------
# E11 — scalability / interactive response time
# ---------------------------------------------------------------------------


@registry.register("E11", "Scalability: QUANTIFY runtime vs population size and #attributes")
def run_scalability(
    sizes: Sequence[int] = (100, 300, 1_000, 3_000),
    seed: int = 7,
) -> List[ReportTable]:
    populations = scaling_populations(sizes=sizes, seed=seed)
    from repro.scoring.linear import LinearScoringFunction

    function = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    table = ReportTable(
        title="QUANTIFY runtime (seconds) vs population size and number of protected attributes",
        headers=["n", "#attributes", "runtime (s)", "#groups", "splits evaluated", "unfairness"],
    )
    for size, population in populations.items():
        for count in (2, 4, 6):
            attributes = list(population.schema.protected_names[:count])
            start = time.perf_counter()
            result = quantify(population, function, attributes=attributes, min_partition_size=2)
            elapsed = time.perf_counter() - start
            table.add_row(size, len(attributes), elapsed, len(result.partitioning),
                          result.splits_evaluated, result.unfairness)
    table.add_note(
        "the paper's claim under test: the greedy heuristic keeps response time interactive"
    )
    return [table]


# ---------------------------------------------------------------------------
# E12 — subgroup fairness vs single-attribute baseline
# ---------------------------------------------------------------------------


@registry.register(
    "E12", "Subgroup search vs single-attribute baseline on planted intersectional bias"
)
def run_subgroup_vs_predefined(
    size: int = 400,
    seed: int = 7,
    penalties: Sequence[float] = (-0.1, -0.2, -0.3),
) -> List[ReportTable]:
    from repro.scoring.linear import LinearScoringFunction

    function = LinearScoringFunction({"Language Test": 0.5, "Rating": 0.5}, name="balanced")
    attributes = ["Gender", "Country", "Language", "Ethnicity"]
    table = ReportTable(
        title="Planted intersectional bias: what each method measures",
        headers=["penalty", "best single attribute", "single-attr unfairness",
                 "QUANTIFY unfairness", "gain", "bias attrs in QUANTIFY splits"],
    )
    for penalty in penalties:
        population, bias = biased_population(size=size, seed=seed, penalty=penalty)
        singles = single_attribute_baseline(population, function, attributes=attributes)
        best_single = singles[0]
        greedy = quantify(population, function, attributes=attributes, min_partition_size=2)
        used = set(greedy.tree.split_attributes_used())
        planted = set(bias.condition_attributes)
        table.add_row(
            penalty,
            best_single.attribute,
            best_single.unfairness,
            greedy.unfairness,
            greedy.unfairness / best_single.unfairness if best_single.unfairness else float("inf"),
            "yes" if planted & used else "no",
        )
    table.add_note("expected shape: the subgroup search measures strictly more unfairness than "
                   "any single-attribute view, and the gap grows with the planted penalty")
    return [table]
