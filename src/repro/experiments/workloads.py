"""Workload builders shared by the experiments and benchmarks.

Every experiment in DESIGN.md's index names a workload; the builders here
construct those workloads deterministically (fixed seeds) so that the
benchmark harness, the tests and EXPERIMENTS.md all talk about the same data.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.data.dataset import Dataset
from repro.data.loaders import TABLE1_WEIGHTS, load_example_table1
from repro.errors import ExperimentError
from repro.marketplace.bias import BiasSpec
from repro.marketplace.crawler import MarketplaceCrawler
from repro.marketplace.entities import Job, Marketplace
from repro.marketplace.generator import CrowdsourcingGenerator
from repro.scoring.linear import LinearScoringFunction

__all__ = [
    "table1_workload",
    "synthetic_population",
    "biased_population",
    "crowdsourcing_marketplace",
    "crawled_marketplaces",
    "scaling_populations",
]


def table1_workload() -> Tuple[Dataset, LinearScoringFunction]:
    """The paper's running example: Table 1 dataset plus its scoring function."""
    dataset = load_example_table1()
    function = LinearScoringFunction(TABLE1_WEIGHTS, name="table1-f")
    return dataset, function


def synthetic_population(size: int = 400, seed: int = 7, columnar: bool = False) -> Dataset:
    """An unbiased synthetic crowdsourcing population.

    ``columnar=True`` packages the population as a column-backed dataset
    (same values and content fingerprint, contiguous arrays instead of
    per-row dicts — the only sane choice beyond ~100k rows).
    """
    return CrowdsourcingGenerator(seed=seed).generate(
        size, name=f"synthetic-{size}", columnar=columnar
    )


def biased_population(
    size: int = 400,
    seed: int = 7,
    subgroup: Optional[Mapping[str, object]] = None,
    penalty: float = -0.25,
) -> Tuple[Dataset, BiasSpec]:
    """A synthetic population with a planted intersectional bias.

    The default planted subgroup is ``Gender=Female AND Ethnicity=African-
    American`` (an intersection no single protected attribute captures),
    penalised on every skill by ``penalty``.
    """
    generator = CrowdsourcingGenerator(seed=seed)
    target = dict(subgroup) if subgroup is not None else {
        "Gender": "Female",
        "Ethnicity": "African-American",
    }
    return generator.generate_with_intersectional_bias(
        size, subgroup=target, penalty=penalty, name=f"biased-{size}"
    )


def crowdsourcing_marketplace(size: int = 400, seed: int = 7) -> Marketplace:
    """A synthetic crowdsourcing marketplace with a small catalogue of jobs.

    Jobs exercise different mixes of the two default skills, including one
    job whose candidates are filtered (English speakers only), mirroring the
    filtering feature of the demo.
    """
    from repro.data.filters import Equals

    dataset, _ = biased_population(size=size, seed=seed)
    marketplace = Marketplace(name="crowdsourcing-sim", workers=dataset)
    marketplace.add_job(
        Job(
            title="Content writing",
            function=LinearScoringFunction(
                {"Language Test": 0.7, "Rating": 0.3}, name="Content writing"
            ),
        )
    )
    marketplace.add_job(
        Job(
            title="Data labelling",
            function=LinearScoringFunction(
                {"Language Test": 0.2, "Rating": 0.8}, name="Data labelling"
            ),
        )
    )
    marketplace.add_job(
        Job(
            title="Balanced microtasks",
            function=LinearScoringFunction(
                {"Language Test": 0.5, "Rating": 0.5}, name="Balanced microtasks"
            ),
        )
    )
    marketplace.add_job(
        Job(
            title="English transcription",
            function=LinearScoringFunction(
                {"Language Test": 0.8, "Rating": 0.2}, name="English transcription"
            ),
            candidate_filter=Equals("Language", "English"),
        )
    )
    return marketplace


def crawled_marketplaces(workers: int = 300, seed: int = 11) -> List[Marketplace]:
    """Simulated crawls of every supported freelancing platform."""
    return MarketplaceCrawler(seed=seed).crawl_all(workers=workers)


def scaling_populations(
    sizes: Sequence[int] = (100, 300, 1_000, 3_000, 10_000),
    seed: int = 7,
) -> Dict[int, Dataset]:
    """Populations of increasing size for the scalability experiment (E11)."""
    if not sizes:
        raise ExperimentError("scaling_populations needs at least one size")
    generator = CrowdsourcingGenerator(seed=seed)
    return {size: generator.generate(size, name=f"scale-{size}") for size in sizes}
