"""Experiment harness: run the DESIGN.md experiment index and collect tables.

Each experiment function returns a :class:`~repro.roles.report.ReportTable`
(or a dict of tables); :func:`run_experiment` dispatches by experiment id and
:func:`run_all` regenerates every table the reproduction reports in
EXPERIMENTS.md.  The ``benchmarks/`` directory wraps these same functions in
pytest-benchmark so runtimes are measured alongside the outputs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.errors import ExperimentError
from repro.roles.report import ReportTable

__all__ = ["ExperimentOutcome", "ExperimentRegistry", "registry", "run_experiment", "run_all"]


@dataclass
class ExperimentOutcome:
    """One experiment's output tables plus wall-clock time."""

    experiment_id: str
    description: str
    tables: List[ReportTable]
    elapsed_seconds: float

    def render(self) -> str:
        header = f"== {self.experiment_id}: {self.description} ({self.elapsed_seconds:.2f}s) =="
        parts = [header]
        parts.extend(table.render() for table in self.tables)
        return "\n\n".join(parts)


class ExperimentRegistry:
    """Registry mapping experiment ids (E1..E12) to runner callables."""

    def __init__(self) -> None:
        self._runners: Dict[str, Callable[..., List[ReportTable]]] = {}
        self._descriptions: Dict[str, str] = {}

    def register(self, experiment_id: str, description: str):
        """Decorator registering an experiment runner under an id."""

        def decorator(func: Callable[..., List[ReportTable]]):
            if experiment_id in self._runners:
                raise ExperimentError(f"experiment {experiment_id!r} is already registered")
            self._runners[experiment_id] = func
            self._descriptions[experiment_id] = description
            return func

        return decorator

    @property
    def experiment_ids(self) -> List[str]:
        return sorted(self._runners, key=_experiment_sort_key)

    def description(self, experiment_id: str) -> str:
        self._require(experiment_id)
        return self._descriptions[experiment_id]

    def _require(self, experiment_id: str) -> None:
        if experiment_id not in self._runners:
            raise ExperimentError(
                f"unknown experiment {experiment_id!r}; known: {', '.join(self.experiment_ids)}"
            )

    def run(self, experiment_id: str, **kwargs) -> ExperimentOutcome:
        """Run one experiment and time it."""
        self._require(experiment_id)
        start = time.perf_counter()
        tables = self._runners[experiment_id](**kwargs)
        elapsed = time.perf_counter() - start
        if isinstance(tables, ReportTable):
            tables = [tables]
        return ExperimentOutcome(
            experiment_id=experiment_id,
            description=self._descriptions[experiment_id],
            tables=list(tables),
            elapsed_seconds=elapsed,
        )

    def run_all(self, skip: Sequence[str] = (), **kwargs) -> List[ExperimentOutcome]:
        """Run every registered experiment (optionally skipping some ids)."""
        outcomes = []
        for experiment_id in self.experiment_ids:
            if experiment_id in skip:
                continue
            outcomes.append(self.run(experiment_id, **kwargs.get(experiment_id, {})))
        return outcomes


def _experiment_sort_key(experiment_id: str):
    digits = "".join(ch for ch in experiment_id if ch.isdigit())
    return (int(digits) if digits else 0, experiment_id)


#: The module-level registry used by :mod:`repro.experiments.suite`.
registry = ExperimentRegistry()


def run_experiment(experiment_id: str, **kwargs) -> ExperimentOutcome:
    """Run one experiment from the global registry."""
    # Importing the suite registers every experiment exactly once.
    from repro.experiments import suite  # noqa: F401  (import for side effect)

    return registry.run(experiment_id, **kwargs)


def run_all(skip: Sequence[str] = ()) -> List[ExperimentOutcome]:
    """Run every experiment from the global registry."""
    from repro.experiments import suite  # noqa: F401  (import for side effect)

    return registry.run_all(skip=skip)
