"""Experiment harness regenerating every table/figure of the paper (S13)."""

from repro.experiments.harness import (
    ExperimentOutcome,
    ExperimentRegistry,
    registry,
    run_all,
    run_experiment,
)
from repro.experiments.workloads import (
    biased_population,
    crawled_marketplaces,
    crowdsourcing_marketplace,
    scaling_populations,
    synthetic_population,
    table1_workload,
)

__all__ = [
    "ExperimentOutcome",
    "ExperimentRegistry",
    "registry",
    "run_experiment",
    "run_all",
    "table1_workload",
    "synthetic_population",
    "biased_population",
    "crowdsourcing_marketplace",
    "crawled_marketplaces",
    "scaling_populations",
]
