"""Ablation studies over the design choices DESIGN.md calls out.

Three knobs of the reproduction materially affect what FaiRank measures, and
none of them is pinned down by the paper beyond a default:

* **histogram resolution** (`bins`) — the paper builds "equal bins over the
  range of f" without fixing their number; the EMD (in bin units) grows with
  resolution, so the ablation checks how the *ranking of partitionings* and
  the recovered least-favoured subgroup react to the bin count;
* **minimum partition size** — Algorithm 1 as published can isolate single
  individuals; the ablation measures how unfairness and group counts change
  as singleton/micro groups are disallowed;
* **split selection criterion** — Algorithm 1 picks the "most unfair
  attribute" locally; the ablation compares that greedy choice against a
  cheaper mean-gap criterion and a random-attribute baseline to quantify how
  much the informed choice actually buys.

Each ablation returns a :class:`~repro.roles.report.ReportTable` so it plugs
into the same harness as the main experiments.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.formulations import Formulation
from repro.core.partition import Partitioning, root_partition, split_partition
from repro.core.quantify import quantify
from repro.core.unfairness import unfairness, unfairness_breakdown
from repro.data.dataset import Dataset
from repro.errors import ExperimentError
from repro.roles.report import ReportTable
from repro.scoring.base import ScoringFunction

__all__ = [
    "ablate_bins",
    "ablate_min_partition_size",
    "ablate_split_criterion",
]

_DEFAULT_ATTRIBUTES = ("Gender", "Country", "Language", "Ethnicity")


def ablate_bins(
    dataset: Dataset,
    function: ScoringFunction,
    bin_counts: Sequence[int] = (3, 5, 10, 20),
    attributes: Sequence[str] = _DEFAULT_ATTRIBUTES,
    min_partition_size: int = 2,
) -> ReportTable:
    """How does histogram resolution affect the measured unfairness?"""
    if not bin_counts:
        raise ExperimentError("ablate_bins needs at least one bin count")
    table = ReportTable(
        title="Ablation: histogram bins vs measured unfairness",
        headers=["bins", "unfairness (bin units)", "unfairness (normalised)",
                 "#groups", "least favored"],
    )
    for bins in bin_counts:
        formulation = Formulation(bins=bins)
        result = quantify(dataset, function, formulation=formulation,
                          attributes=list(attributes), min_partition_size=min_partition_size)
        breakdown = unfairness_breakdown(result.partitioning, function, formulation)
        normalised = result.unfairness / (bins - 1) if bins > 1 else 0.0
        table.add_row(bins, result.unfairness, normalised,
                      len(result.partitioning), breakdown.least_favored or "-")
    table.add_note("EMD in bin units grows with resolution; the normalised column divides by "
                   "the maximum possible EMD (bins-1) and should stay roughly stable")
    return table


def ablate_min_partition_size(
    dataset: Dataset,
    function: ScoringFunction,
    sizes: Sequence[int] = (1, 2, 5, 10, 25),
    attributes: Sequence[str] = _DEFAULT_ATTRIBUTES,
) -> ReportTable:
    """How does forbidding micro-groups change the result?"""
    if not sizes:
        raise ExperimentError("ablate_min_partition_size needs at least one size")
    table = ReportTable(
        title="Ablation: minimum partition size",
        headers=["min size", "unfairness", "#groups", "smallest group", "least favored"],
    )
    for size in sizes:
        result = quantify(dataset, function, attributes=list(attributes),
                          min_partition_size=size)
        breakdown = unfairness_breakdown(result.partitioning, function, result.formulation)
        table.add_row(size, result.unfairness, len(result.partitioning),
                      min(result.partitioning.sizes), breakdown.least_favored or "-")
    table.add_note("larger minimum sizes trade measured unfairness for statistically "
                   "sturdier (larger) groups")
    return table


def _greedy_like_partitioning(
    dataset: Dataset,
    function: ScoringFunction,
    attributes: Sequence[str],
    chooser: str,
    formulation: Formulation,
    min_partition_size: int,
    rng: np.random.Generator,
) -> Partitioning:
    """One-level-at-a-time splitting with a pluggable attribute chooser.

    This mirrors the structure of Algorithm 1 but replaces the "most unfair
    attribute" selection with either a mean-gap criterion or a random pick,
    splitting the whole frontier once per chosen attribute (global recoding
    of the tree), which is enough to compare selection criteria.
    """
    remaining = list(attributes)
    partitions = [root_partition(dataset)]
    while remaining:
        scored = []
        for attribute in remaining:
            candidate: List = []
            ok = True
            for partition in partitions:
                if attribute in partition.constrained_attributes:
                    candidate.append([partition])
                    continue
                children = split_partition(partition, attribute)
                if len(children) < 2 or any(c.size < min_partition_size for c in children):
                    candidate.append([partition])
                else:
                    candidate.append(list(children))
            flattened = [p for group in candidate for p in group]
            if len(flattened) == len(partitions):
                ok = False
            if not ok:
                continue
            partitioning = Partitioning(dataset, flattened, validate=False)
            if chooser == "mean_gap":
                means = [p.scores(function).mean() for p in partitioning if p.size]
                score = float(max(means) - min(means)) if len(means) > 1 else 0.0
            elif chooser == "random":
                score = float(rng.random())
            else:  # "emd" — the paper's criterion
                score = unfairness(partitioning, function, formulation)
            scored.append((score, attribute, flattened))
        if not scored:
            break
        scored.sort(key=lambda item: (-item[0], item[1]))
        best_score, best_attribute, best_partitions = scored[0]
        current_value = unfairness(Partitioning(dataset, partitions, validate=False),
                                   function, formulation)
        new_value = unfairness(Partitioning(dataset, best_partitions, validate=False),
                               function, formulation)
        if new_value <= current_value + 1e-12:
            break
        partitions = best_partitions
        remaining.remove(best_attribute)
    return Partitioning(dataset, partitions, validate=False)


def ablate_split_criterion(
    dataset: Dataset,
    function: ScoringFunction,
    attributes: Sequence[str] = _DEFAULT_ATTRIBUTES,
    min_partition_size: int = 2,
    random_trials: int = 5,
    seed: int = 7,
) -> ReportTable:
    """Compare the paper's EMD-driven attribute choice against cheaper ones."""
    formulation = Formulation()
    table = ReportTable(
        title="Ablation: split-selection criterion",
        headers=["criterion", "unfairness", "#groups"],
    )

    reference = quantify(dataset, function, formulation=formulation,
                         attributes=list(attributes), min_partition_size=min_partition_size)
    table.add_row("Algorithm 1 (local most-unfair attribute)", reference.unfairness,
                  len(reference.partitioning))

    rng = np.random.default_rng(seed)
    for chooser, label in (("emd", "level-wise EMD"), ("mean_gap", "level-wise mean gap")):
        partitioning = _greedy_like_partitioning(
            dataset, function, attributes, chooser, formulation, min_partition_size, rng
        )
        table.add_row(label, unfairness(partitioning, function, formulation), len(partitioning))

    random_values = []
    for _ in range(random_trials):
        partitioning = _greedy_like_partitioning(
            dataset, function, attributes, "random", formulation, min_partition_size, rng
        )
        random_values.append(unfairness(partitioning, function, formulation))
    table.add_row(f"random attribute order (mean of {random_trials})",
                  float(np.mean(random_values)), "-")
    table.add_note("the informed criteria should dominate the random order; Algorithm 1's "
                   "per-node choice should be at least as good as level-wise splitting")
    return table
