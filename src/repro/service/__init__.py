"""Service layer: fingerprint-keyed caching and parallel batch execution.

This package turns the FaiRank library into a servable engine (the thin
data-management-application pattern: a service facade over analysis
kernels).  See :mod:`repro.service.service` for the facade,
:mod:`repro.service.jobs` for the wire protocol, and
:mod:`repro.service.executor` for the parallel batch executor.
"""

from repro.service.cache import CacheStats, LRUCache
from repro.service.executor import BatchExecutor, default_max_workers
from repro.service.fingerprint import (
    combine_fingerprints,
    fingerprint_dataset,
    fingerprint_formulation,
    fingerprint_function,
    fingerprint_value,
)
from repro.service.jobs import (
    AuditRequest,
    CompareRequest,
    QuantifyRequest,
    ServiceRequest,
    ServiceResult,
    request_from_json,
)
from repro.service.service import CachedQuantify, FairnessService, StorePoolStats

__all__ = [
    "AuditRequest",
    "BatchExecutor",
    "CacheStats",
    "CachedQuantify",
    "CompareRequest",
    "FairnessService",
    "LRUCache",
    "StorePoolStats",
    "QuantifyRequest",
    "ServiceRequest",
    "ServiceResult",
    "combine_fingerprints",
    "default_max_workers",
    "fingerprint_dataset",
    "fingerprint_formulation",
    "fingerprint_function",
    "fingerprint_value",
    "request_from_json",
]
