"""Service layer: one catalog, fingerprint-keyed caching, batch execution.

This package turns the FaiRank library into a servable engine (the thin
data-management-application pattern: a service facade over analysis
kernels).  See :mod:`repro.service.service` for the facade (which owns the
system's single :class:`~repro.catalog.Catalog`), :mod:`repro.service.jobs`
for wire protocol v2, :mod:`repro.service.client` for the in-process client
facade, and :mod:`repro.service.executor` for the parallel batch executor.
"""

from repro.service.cache import CacheStats, LRUCache
from repro.service.client import FairnessClient, FairnessClientBase
from repro.service.executor import BatchExecutor, default_max_workers
from repro.service.fingerprint import (
    combine_fingerprints,
    fingerprint_dataset,
    fingerprint_formulation,
    fingerprint_function,
    fingerprint_marketplace,
    fingerprint_value,
)
from repro.service.jobs import (
    PROTOCOL_VERSION,
    AuditRequest,
    BreakdownRequest,
    CompareRequest,
    EndUserRequest,
    JobOwnerRequest,
    QuantifyRequest,
    ServiceRequest,
    ServiceResult,
    SweepRequest,
    request_from_json,
)
from repro.service.service import CachedQuantify, FairnessService, StorePoolStats

__all__ = [
    "AuditRequest",
    "BatchExecutor",
    "BreakdownRequest",
    "CacheStats",
    "CachedQuantify",
    "CompareRequest",
    "EndUserRequest",
    "FairnessClient",
    "FairnessClientBase",
    "FairnessService",
    "JobOwnerRequest",
    "LRUCache",
    "PROTOCOL_VERSION",
    "StorePoolStats",
    "QuantifyRequest",
    "ServiceRequest",
    "ServiceResult",
    "SweepRequest",
    "combine_fingerprints",
    "default_max_workers",
    "fingerprint_dataset",
    "fingerprint_formulation",
    "fingerprint_function",
    "fingerprint_marketplace",
    "fingerprint_value",
    "request_from_json",
]
