"""The :class:`FairnessService` facade: registry + cache + request execution.

FaiRank is interactive: users re-run the partitioning search over the same
population while varying the scoring function and the formulation, and
auditors fan the same analysis out across jobs and platforms.  The service
layer turns the library's pure functions into a servable engine:

* a **registry** of named datasets, scoring functions and marketplaces (the
  catalogue a deployment exposes to clients);
* a **fingerprint-keyed result cache** so semantically identical requests
  are computed once (:mod:`repro.service.fingerprint`,
  :mod:`repro.service.cache`);
* **request execution** for the typed wire protocol of
  :mod:`repro.service.jobs`, returning JSON-ready
  :class:`~repro.service.jobs.ServiceResult` envelopes;
* cached wrappers around the role workflows (``Auditor``, ``JobOwner``,
  ``EndUser``) and the core kernels (``quantify``, ``exhaustive_search``,
  ``unfairness_breakdown``) for programmatic callers such as
  :class:`~repro.session.engine.FaiRankEngine`.
"""

from __future__ import annotations

import marshal
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.exhaustive import ExhaustiveResult, exhaustive_search
from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD
from repro.core.quantify import QuantifyResult, quantify
from repro.core.scorestore import ScoreStore
from repro.core.unfairness import UnfairnessBreakdown, unfairness_breakdown
from repro.data.dataset import Dataset
from repro.errors import ServiceError
from repro.marketplace.entities import Marketplace
from repro.roles.auditor import AuditReport, Auditor
from repro.roles.end_user import EndUser
from repro.roles.job_owner import JobOwner, JobOwnerReport
from repro.roles.report import ReportTable
from repro.scoring.base import ScoringFunction
from repro.scoring.library import ScoringLibrary
from repro.scoring.rank import OpaqueScoringFunction, RankDerivedScorer
from repro.service.cache import CacheStats, LRUCache
from repro.service.fingerprint import (
    combine_fingerprints,
    fingerprint_dataset,
    fingerprint_formulation,
    fingerprint_function,
    fingerprint_value,
)
from repro.service.jobs import (
    AuditRequest,
    CompareRequest,
    QuantifyRequest,
    ServiceRequest,
    ServiceResult,
)

__all__ = ["CachedQuantify", "FairnessService", "StorePoolStats"]


def _copy_json(value):
    """Deep copy of a plain-JSON tree (dict/list/scalars only).

    Payloads are JSON-safe by construction, so this replaces
    ``copy.deepcopy`` on the warm serving path — same privacy guarantee
    (mutating a served payload never corrupts the cached value) without
    deepcopy's per-object memo bookkeeping, which dominated warm latency.
    ``marshal`` round-trips plain containers at C speed; anything it cannot
    handle (it raises ``ValueError``) falls back to a recursive copy.
    """
    try:
        return marshal.loads(marshal.dumps(value))
    except ValueError:
        pass
    if isinstance(value, dict):
        return {key: _copy_json(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_copy_json(item) for item in value]
    return value


@dataclass(frozen=True)
class CachedQuantify:
    """A QUANTIFY search plus its breakdown, as served from the cache."""

    result: QuantifyResult
    breakdown: UnfairnessBreakdown
    key: str
    cached: bool


@dataclass(frozen=True)
class StorePoolStats:
    """Snapshot of the service's score-store pool effectiveness.

    ``hits``/``misses`` count store *lookups* (a hit means a later request
    over the same (dataset, function) fingerprints reused an existing
    materialized score vector); the scoring/histogram counters aggregate over
    the live stores (evicted stores take their counters with them).
    """

    stores: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    scoring_passes: int = 0
    sliced_partitions: int = 0
    fallback_scorings: int = 0
    histogram_hits: int = 0
    histogram_misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of store lookups that reused a materialized vector."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "stores": self.stores,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "scoring_passes": self.scoring_passes,
            "sliced_partitions": self.sliced_partitions,
            "fallback_scorings": self.fallback_scorings,
            "histogram_hits": self.histogram_hits,
            "histogram_misses": self.histogram_misses,
            "hit_rate": round(self.hit_rate, 4),
        }

    def describe(self) -> str:
        return (
            f"{self.stores} store(s), {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} reuse), {self.scoring_passes} scoring pass(es), "
            f"histograms {self.histogram_hits} hits / {self.histogram_misses} misses, "
            f"{self.evictions} evictions"
        )


class FairnessService:
    """Servable fairness engine: named catalogues, memoisation, requests.

    Parameters
    ----------
    cache_size:
        Maximum number of memoised results (ignored when ``cache`` is given).
    max_cost:
        Optional total-cost bound for the cache; the cost of a quantify
        result is the number of candidate splits its search evaluated.
    cache:
        An externally owned :class:`~repro.service.cache.LRUCache`, e.g. to
        share one cache between several services or sessions.
    max_stores:
        Bound on the number of per-(dataset, function) score stores the
        service keeps for cross-request reuse (LRU-evicted beyond it).
    """

    def __init__(
        self,
        cache_size: int = 256,
        max_cost: Optional[float] = None,
        cache: Optional[LRUCache] = None,
        max_stores: int = 32,
    ) -> None:
        if max_stores < 1:
            raise ServiceError(f"max_stores must be >= 1, got {max_stores}")
        self._datasets: Dict[str, Dataset] = {}
        self._functions = ScoringLibrary()
        self._marketplaces: Dict[str, Marketplace] = {}
        self.cache = cache if cache is not None else LRUCache(cache_size, max_cost=max_cost)
        self.max_stores = max_stores
        # The store pool is itself an LRUCache: thread-safe LRU with
        # hit/miss/eviction stats and single-flight store construction.
        self._store_pool = LRUCache(max_stores)

    # -- registry -------------------------------------------------------------

    def register_dataset(self, dataset: Dataset, name: Optional[str] = None) -> str:
        """Add a dataset to the catalogue; returns its registered name."""
        key = name or dataset.name
        if not key:
            raise ServiceError("a dataset needs a non-empty name to be registered")
        self._datasets[key] = dataset
        return key

    def register_function(self, function: ScoringFunction, replace: bool = True) -> str:
        """Add a scoring function to the catalogue; returns its name."""
        self._functions.register(function, replace=replace)
        return function.name

    def register_marketplace(self, marketplace: Marketplace) -> str:
        """Register a marketplace plus its workers dataset and job functions."""
        if not marketplace.name:
            raise ServiceError("a marketplace needs a non-empty name to be registered")
        self._marketplaces[marketplace.name] = marketplace
        self.register_dataset(marketplace.workers, name=marketplace.name)
        for job in marketplace:
            self.register_function(job.function, replace=True)
        return marketplace.name

    @property
    def dataset_names(self) -> Tuple[str, ...]:
        return tuple(self._datasets)

    @property
    def function_names(self) -> Tuple[str, ...]:
        return self._functions.names

    @property
    def marketplace_names(self) -> Tuple[str, ...]:
        return tuple(self._marketplaces)

    def dataset(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise ServiceError(
                f"unknown dataset {name!r}; registered: "
                f"{', '.join(sorted(self._datasets)) or '(none)'}"
            ) from None

    def function(self, name: str) -> ScoringFunction:
        if name not in self._functions:
            raise ServiceError(
                f"unknown scoring function {name!r}; registered: "
                f"{', '.join(sorted(self._functions.names)) or '(none)'}"
            )
        return self._functions.get(name)

    def marketplace(self, name: str) -> Marketplace:
        try:
            return self._marketplaces[name]
        except KeyError:
            raise ServiceError(
                f"unknown marketplace {name!r}; registered: "
                f"{', '.join(sorted(self._marketplaces)) or '(none)'}"
            ) from None

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    # -- score materialization (cross-request reuse) ---------------------------

    def score_store(self, dataset: Dataset, function: ScoringFunction) -> ScoreStore:
        """The shared :class:`~repro.core.scorestore.ScoreStore` for a pair.

        Stores are keyed by *content* fingerprints, so an AUDIT or COMPARE
        fan-out that re-runs searches over the same population and scoring
        function — even via rebuilt, content-identical objects — shares one
        materialized scoring pass.  The pool is LRU-bounded by ``max_stores``.
        """
        key = combine_fingerprints(
            "score-store", fingerprint_dataset(dataset), fingerprint_function(function)
        )
        store, _ = self._store_pool.get_or_compute(
            # Content-keyed, so uid-based slicing is safe for rebuilt copies.
            key,
            lambda: ScoreStore(dataset, function, trust_uids=True),
        )
        return store

    @property
    def store_stats(self) -> StorePoolStats:
        """Aggregate effectiveness of the score-store pool (for monitoring)."""
        pool = self._store_pool.stats
        per_store = [store.stats for store in self._store_pool.values()]
        return StorePoolStats(
            stores=pool.entries,
            hits=pool.hits,
            misses=pool.misses,
            evictions=pool.evictions,
            scoring_passes=sum(s.scoring_passes for s in per_store),
            sliced_partitions=sum(s.sliced_partitions for s in per_store),
            fallback_scorings=sum(s.fallback_scorings for s in per_store),
            histogram_hits=sum(s.histogram_hits for s in per_store),
            histogram_misses=sum(s.histogram_misses for s in per_store),
        )

    # -- cached kernels (object-level API) ------------------------------------

    def quantify_cached(
        self,
        dataset: Dataset,
        function: ScoringFunction,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        attributes: Optional[Sequence[str]] = None,
        max_depth: Optional[int] = None,
        min_partition_size: int = 1,
    ) -> CachedQuantify:
        """Memoised ``quantify`` + ``unfairness_breakdown`` over live objects.

        The key is built from content fingerprints, so re-filtered copies of
        the same population and freshly re-built but identical scoring
        functions still hit the cache.
        """
        key = combine_fingerprints(
            "quantify",
            fingerprint_dataset(dataset),
            fingerprint_function(function),
            fingerprint_formulation(formulation),
            fingerprint_value(
                {
                    "attributes": None if attributes is None else list(attributes),
                    "max_depth": max_depth,
                    "min_partition_size": min_partition_size,
                }
            ),
        )

        def produce() -> Tuple[QuantifyResult, UnfairnessBreakdown]:
            store = self.score_store(dataset, function)
            result = quantify(
                dataset,
                function,
                formulation=formulation,
                attributes=attributes,
                max_depth=max_depth,
                min_partition_size=min_partition_size,
                store=store,
            )
            breakdown = unfairness_breakdown(
                result.partitioning, function, formulation, store=store
            )
            return result, breakdown

        (result, breakdown), hit = self.cache.get_or_compute(
            key, produce, cost=lambda pair: float(pair[0].splits_evaluated + 1)
        )
        return CachedQuantify(result=result, breakdown=breakdown, key=key, cached=hit)

    def exhaustive_cached(
        self,
        dataset: Dataset,
        function: ScoringFunction,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        attributes: Optional[Sequence[str]] = None,
        limit: Optional[int] = 200_000,
    ) -> ExhaustiveResult:
        """Memoised :func:`~repro.core.exhaustive.exhaustive_search`."""
        key = combine_fingerprints(
            "exhaustive",
            fingerprint_dataset(dataset),
            fingerprint_function(function),
            fingerprint_formulation(formulation),
            fingerprint_value(
                {
                    "attributes": None if attributes is None else list(attributes),
                    "limit": limit,
                }
            ),
        )
        result, _ = self.cache.get_or_compute(
            key,
            lambda: exhaustive_search(
                dataset,
                function,
                formulation=formulation,
                attributes=attributes,
                limit=limit,
                store=self.score_store(dataset, function),
            ),
            cost=lambda outcome: float(outcome.explored + 1),
        )
        return result

    def breakdown_cached(
        self,
        dataset: Dataset,
        function: ScoringFunction,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        attributes: Optional[Sequence[str]] = None,
        max_depth: Optional[int] = None,
        min_partition_size: int = 1,
    ) -> UnfairnessBreakdown:
        """The breakdown of the quantified partitioning (shares the cache)."""
        return self.quantify_cached(
            dataset,
            function,
            formulation,
            attributes=attributes,
            max_depth=max_depth,
            min_partition_size=min_partition_size,
        ).breakdown

    # -- cached role workflows -------------------------------------------------

    def _marketplace_fingerprint(self, marketplace: Marketplace) -> str:
        parts = [fingerprint_dataset(marketplace.workers)]
        for job in marketplace:
            parts.append(
                combine_fingerprints(
                    "job",
                    fingerprint_value(job.title),
                    fingerprint_function(job.function),
                    fingerprint_value(job.candidate_filter.describe()),
                )
            )
        return combine_fingerprints("marketplace", *parts)

    def _resolve_marketplace(self, marketplace: Union[str, Marketplace]) -> Marketplace:
        if isinstance(marketplace, str):
            return self.marketplace(marketplace)
        return marketplace

    def audit_marketplace(
        self,
        marketplace: Union[str, Marketplace],
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        attributes: Optional[Sequence[str]] = None,
        min_partition_size: int = 1,
    ) -> AuditReport:
        """Memoised AUDITOR workflow over a (named or live) marketplace."""
        market = self._resolve_marketplace(marketplace)
        key = combine_fingerprints(
            "audit-report",
            self._marketplace_fingerprint(market),
            fingerprint_formulation(formulation),
            fingerprint_value(
                {
                    "attributes": None if attributes is None else list(attributes),
                    "min_partition_size": min_partition_size,
                }
            ),
        )
        auditor = Auditor(
            formulation=formulation,
            attributes=attributes,
            min_partition_size=min_partition_size,
            store_provider=self.score_store,
        )
        report, _ = self.cache.get_or_compute(
            key,
            lambda: auditor.audit_marketplace(market),
            cost=lambda rep: float(
                sum(audit.result.splits_evaluated for audit in rep.audits) + 1
            ),
        )
        return report

    def explore_job(
        self,
        marketplace: Union[str, Marketplace],
        job_title: str,
        sweep_steps: int = 5,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        min_partition_size: int = 1,
    ) -> JobOwnerReport:
        """Memoised JOB OWNER workflow (weight sweep over one job)."""
        market = self._resolve_marketplace(marketplace)
        key = combine_fingerprints(
            "job-owner",
            self._marketplace_fingerprint(market),
            fingerprint_formulation(formulation),
            fingerprint_value(
                {
                    "job_title": job_title,
                    "sweep_steps": sweep_steps,
                    "min_partition_size": min_partition_size,
                }
            ),
        )
        owner = JobOwner(formulation=formulation, min_partition_size=min_partition_size)
        report, _ = self.cache.get_or_compute(
            key, lambda: owner.explore_job(market, job_title, sweep_steps=sweep_steps)
        )
        return report

    def end_user_view(
        self,
        group: Mapping[str, object],
        marketplaces: Sequence[Union[str, Marketplace]],
        job_title: str,
    ) -> ReportTable:
        """Memoised END USER workflow: one group, one job, several platforms."""
        markets = [self._resolve_marketplace(market) for market in marketplaces]
        key = combine_fingerprints(
            "end-user",
            fingerprint_value(dict(group)),
            fingerprint_value(job_title),
            *[self._marketplace_fingerprint(market) for market in markets],
        )
        table, _ = self.cache.get_or_compute(
            key, lambda: EndUser(dict(group)).compare_marketplaces(markets, job_title)
        )
        return table

    # -- request execution (the wire protocol) --------------------------------

    def request_key(self, request: ServiceRequest) -> str:
        """The cache key a request resolves to (content-based, not name-based).

        Names are resolved through the registry first, so two services that
        register *different* data under the same name produce different keys,
        and renaming identical data produces identical keys.
        """
        if isinstance(request, QuantifyRequest):
            function = self._effective_function(
                self.dataset(request.dataset), request.function, request.use_ranks_only
            )
            return combine_fingerprints(
                "request-quantify",
                fingerprint_dataset(self.dataset(request.dataset)),
                fingerprint_function(function),
                fingerprint_formulation(request.formulation()),
                fingerprint_value(
                    {
                        # Function fingerprints ignore display names, but the
                        # payload echoes the requested name, so it keys too.
                        "function_name": request.function,
                        "attributes": None
                        if request.attributes is None
                        else list(request.attributes),
                        "max_depth": request.max_depth,
                        "min_partition_size": request.min_partition_size,
                    }
                ),
            )
        if isinstance(request, AuditRequest):
            return combine_fingerprints(
                "request-audit",
                self._marketplace_fingerprint(self.marketplace(request.marketplace)),
                fingerprint_formulation(request.formulation()),
                fingerprint_value(
                    {
                        "job": request.job,
                        "attributes": None
                        if request.attributes is None
                        else list(request.attributes),
                        "min_partition_size": request.min_partition_size,
                    }
                ),
            )
        if isinstance(request, CompareRequest):
            return combine_fingerprints(
                "request-compare",
                fingerprint_dataset(self.dataset(request.dataset)),
                *[
                    fingerprint_function(self.function(name))
                    for name in request.functions
                ],
                fingerprint_formulation(request.formulation()),
                fingerprint_value(
                    {
                        "function_names": list(request.functions),
                        "attributes": None
                        if request.attributes is None
                        else list(request.attributes),
                        "max_depth": request.max_depth,
                        "min_partition_size": request.min_partition_size,
                    }
                ),
            )
        raise ServiceError(f"unsupported request type {type(request).__name__}")

    def execute(self, request: ServiceRequest, key: Optional[str] = None) -> ServiceResult:
        """Execute one request, serving from the cache when possible.

        ``key`` lets callers that already computed :meth:`request_key` (the
        batch executor does, for deduplication) skip recomputing it — for
        rank-only requests the key itself involves ranking the population.

        Note on statistics: a cold quantify/compare request records a miss
        both for its request-level payload entry and for the underlying
        kernel entry of :meth:`quantify_cached` (the layer shared with
        :class:`~repro.session.engine.FaiRankEngine`); ``cache_stats``
        therefore counts both layers.  The returned payload is a private
        deep copy — mutating it never corrupts the cached value.
        """
        started = time.perf_counter()
        if key is None:
            key = self.request_key(request)
        payload, hit = self.cache.get_or_compute(key, lambda: self._build_payload(request))
        elapsed = time.perf_counter() - started
        return ServiceResult(
            kind=request.kind,
            key=key,
            payload=_copy_json(payload),
            cached=hit,
            elapsed_s=elapsed,
            store_stats=self.store_stats.as_dict(),
        )

    def execute_many(
        self,
        requests: Sequence[ServiceRequest],
        max_workers: Optional[int] = None,
    ) -> List[ServiceResult]:
        """Run a batch of requests concurrently (see ``BatchExecutor``)."""
        from repro.service.executor import BatchExecutor

        return BatchExecutor(self, max_workers=max_workers).run(requests)

    # -- payload builders ------------------------------------------------------

    def _effective_function(
        self, dataset: Dataset, function_name: str, use_ranks_only: bool
    ) -> ScoringFunction:
        """Resolve a function honouring the transparency settings."""
        function = self.function(function_name)
        if isinstance(function, OpaqueScoringFunction):
            return RankDerivedScorer(
                function.reveal_ranking(dataset), name=f"{function_name}-from-ranks"
            )
        if use_ranks_only:
            return RankDerivedScorer(
                function.rank(dataset), name=f"{function_name}-from-ranks"
            )
        return function

    def _build_payload(self, request: ServiceRequest) -> Dict[str, object]:
        if isinstance(request, QuantifyRequest):
            return self._quantify_payload(request)
        if isinstance(request, AuditRequest):
            return self._audit_payload(request)
        if isinstance(request, CompareRequest):
            return self._compare_payload(request)
        raise ServiceError(f"unsupported request type {type(request).__name__}")

    def _quantify_payload(self, request: QuantifyRequest) -> Dict[str, object]:
        dataset = self.dataset(request.dataset)
        function = self._effective_function(
            dataset, request.function, request.use_ranks_only
        )
        formulation = request.formulation()
        served = self.quantify_cached(
            dataset,
            function,
            formulation,
            attributes=request.attributes,
            max_depth=request.max_depth,
            min_partition_size=request.min_partition_size,
        )
        result, breakdown = served.result, served.breakdown
        return {
            "dataset": request.dataset,
            "function": request.function,
            "formulation": formulation.name,
            "population": len(dataset),
            "unfairness": result.unfairness,
            "partitions": [
                {"label": label, "size": size}
                for label, size in zip(result.partitioning.labels, result.partitioning.sizes)
            ],
            "splits_evaluated": result.splits_evaluated,
            "most_favored": breakdown.most_favored,
            "least_favored": breakdown.least_favored,
            "pairwise": [
                [first, second, value]
                for (first, second), value in breakdown.pairwise.items()
            ],
        }

    def _audit_payload(self, request: AuditRequest) -> Dict[str, object]:
        market = self.marketplace(request.marketplace)
        formulation = request.formulation()
        auditor = Auditor(
            formulation=formulation,
            attributes=request.attributes,
            min_partition_size=request.min_partition_size,
            store_provider=self.score_store,
        )
        if request.job is not None:
            audits = [auditor.audit_job(market, market.job(request.job))]
        else:
            audits = list(
                self.audit_marketplace(
                    market,
                    formulation,
                    attributes=request.attributes,
                    min_partition_size=request.min_partition_size,
                ).audits
            )
        jobs_payload = [
            {
                "job": audit.job_title,
                "transparent_function": audit.transparent_function,
                "unfairness": audit.unfairness,
                "groups": list(audit.partitions),
                "most_favored": audit.most_favored,
                "least_favored": audit.least_favored,
            }
            for audit in audits
        ]
        most_unfair = max(audits, key=lambda audit: audit.unfairness)
        least_unfair = min(audits, key=lambda audit: audit.unfairness)
        return {
            "marketplace": request.marketplace,
            "formulation": formulation.name,
            "jobs": jobs_payload,
            "most_unfair_job": most_unfair.job_title,
            "least_unfair_job": least_unfair.job_title,
        }

    def _compare_payload(self, request: CompareRequest) -> Dict[str, object]:
        dataset = self.dataset(request.dataset)
        formulation = request.formulation()
        rows: List[Dict[str, object]] = []
        for name in request.functions:
            served = self.quantify_cached(
                dataset,
                self._effective_function(dataset, name, use_ranks_only=False),
                formulation,
                attributes=request.attributes,
                max_depth=request.max_depth,
                min_partition_size=request.min_partition_size,
            )
            rows.append(
                {
                    "function": name,
                    "unfairness": served.result.unfairness,
                    "groups": len(served.result.partitioning),
                    "most_favored": served.breakdown.most_favored,
                    "least_favored": served.breakdown.least_favored,
                }
            )
        by_unfairness = sorted(rows, key=lambda row: (row["unfairness"], row["function"]))
        return {
            "dataset": request.dataset,
            "formulation": formulation.name,
            "functions": rows,
            "fairest": by_unfairness[0]["function"],
            "most_unfair": by_unfairness[-1]["function"],
        }
