"""The :class:`FairnessService` facade: catalog + cache + request execution.

FaiRank is interactive: users re-run the partitioning search over the same
population while varying the scoring function and the formulation, and
auditors fan the same analysis out across jobs and platforms.  The service
layer turns the library's pure functions into a servable engine:

* a single :class:`~repro.catalog.Catalog` of named datasets, scoring
  functions, marketplaces and formulations — the one registry the session
  engine, the role workflows, the batch executor and the CLI all resolve
  resources through (fingerprint-aware, with replace/freeze semantics);
* a **fingerprint-keyed result cache** so semantically identical requests
  are computed once (:mod:`repro.service.fingerprint`,
  :mod:`repro.service.cache`);
* **request execution** for the typed wire protocol v2 of
  :mod:`repro.service.jobs` — all seven request kinds — returning JSON-ready
  :class:`~repro.service.jobs.ServiceResult` envelopes, with failures
  reported as structured error payloads instead of raised-only exceptions;
* cached wrappers around the role workflows (``Auditor``, ``JobOwner``,
  ``EndUser``) and the core kernels (``quantify``, ``exhaustive_search``,
  ``unfairness_breakdown``) for programmatic callers such as
  :class:`~repro.session.engine.FaiRankEngine`.
"""

from __future__ import annotations

import marshal
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.catalog import Catalog, ResourceKind
from repro.core.exhaustive import ExhaustiveResult, exhaustive_search
from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD, resolve_binning
from repro.core.partition import root_partition, split_partition
from repro.core.quantify import QuantifyResult, quantify
from repro.core.scorestore import ScoreStore
from repro.core.unfairness import (
    UnfairnessBreakdown,
    pairwise_distances,
    unfairness_breakdown,
)
from repro.data.dataset import Dataset
from repro.errors import CatalogError, FaiRankError, ServiceError
from repro.marketplace.entities import Marketplace
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Trace, activate, current_trace_id
from repro.roles.auditor import AuditReport, Auditor
from repro.roles.end_user import EndUser
from repro.roles.job_owner import JobOwner, JobOwnerReport
from repro.roles.report import ReportTable
from repro.scoring.base import ScoringFunction
from repro.scoring.library import weight_sweep
from repro.scoring.linear import LinearScoringFunction
from repro.scoring.rank import OpaqueScoringFunction, RankDerivedScorer
from repro.service.cache import CacheStats, LRUCache
from repro.service.fingerprint import (
    combine_fingerprints,
    fingerprint_dataset,
    fingerprint_formulation,
    fingerprint_function,
    fingerprint_marketplace,
    fingerprint_value,
)
from repro.service.jobs import (
    AuditRequest,
    BreakdownRequest,
    CompareRequest,
    EndUserRequest,
    JobOwnerRequest,
    QuantifyRequest,
    ServiceRequest,
    ServiceResult,
    SweepRequest,
)

__all__ = ["CachedQuantify", "FairnessService", "StorePoolStats"]


def _copy_json(value):
    """Deep copy of a plain-JSON tree (dict/list/scalars only).

    Payloads are JSON-safe by construction, so this replaces
    ``copy.deepcopy`` on the warm serving path — same privacy guarantee
    (mutating a served payload never corrupts the cached value) without
    deepcopy's per-object memo bookkeeping, which dominated warm latency.
    ``marshal`` round-trips plain containers at C speed; anything it cannot
    handle (it raises ``ValueError``) falls back to a recursive copy.
    """
    try:
        return marshal.loads(marshal.dumps(value))
    # marshal cannot serialise this tree: the recursive copy below handles it.
    # fairlint: disable=FL007 -- documented fallback chain
    except ValueError:
        pass
    if isinstance(value, dict):
        return {key: _copy_json(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_copy_json(item) for item in value]
    return value


def _error_code(error: BaseException) -> str:
    """Stable wire code for an exception class (``ServiceError`` -> ``service``)."""
    name = type(error).__name__
    if name.endswith("Error"):
        name = name[: -len("Error")]
    code = re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()
    return code or "error"


@dataclass(frozen=True)
class CachedQuantify:
    """A QUANTIFY search plus its breakdown, as served from the cache."""

    result: QuantifyResult
    breakdown: UnfairnessBreakdown
    key: str
    cached: bool


@dataclass(frozen=True)
class StorePoolStats:
    """Snapshot of the service's score-store pool effectiveness.

    ``hits``/``misses`` count store *lookups* (a hit means a later request
    over the same (dataset, function) fingerprints reused an existing
    materialized score vector); the scoring/histogram counters aggregate over
    the live stores (evicted stores take their counters with them).
    """

    stores: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    scoring_passes: int = 0
    sliced_partitions: int = 0
    fallback_scorings: int = 0
    histogram_hits: int = 0
    histogram_misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of store lookups that reused a materialized vector."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "stores": self.stores,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "scoring_passes": self.scoring_passes,
            "sliced_partitions": self.sliced_partitions,
            "fallback_scorings": self.fallback_scorings,
            "histogram_hits": self.histogram_hits,
            "histogram_misses": self.histogram_misses,
            "hit_rate": round(self.hit_rate, 4),
        }

    def describe(self) -> str:
        return (
            f"{self.stores} store(s), {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} reuse), {self.scoring_passes} scoring pass(es), "
            f"histograms {self.histogram_hits} hits / {self.histogram_misses} misses, "
            f"{self.evictions} evictions"
        )


class FairnessService:
    """Servable fairness engine: one catalogue, memoisation, requests.

    Parameters
    ----------
    cache_size:
        Maximum number of memoised results (ignored when ``cache`` is given).
    max_cost:
        Optional total-cost bound for the cache; the cost of a quantify
        result is the number of candidate splits its search evaluated.
    cache:
        An externally owned :class:`~repro.service.cache.LRUCache`, e.g. to
        share one cache between several services or sessions.
    max_stores:
        Bound on the number of per-(dataset, function) score stores the
        service keeps for cross-request reuse (LRU-evicted beyond it).
    catalog:
        An externally owned :class:`~repro.catalog.Catalog`, e.g. to share
        one resource registry between several services.  By default the
        service owns a fresh catalog — the *only* catalogue in the system;
        session engines delegate to it rather than keeping their own.
    """

    def __init__(
        self,
        cache_size: int = 256,
        max_cost: Optional[float] = None,
        cache: Optional[LRUCache] = None,
        max_stores: int = 32,
        catalog: Optional[Catalog] = None,
        warm_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_stores < 1:
            raise ServiceError(f"max_stores must be >= 1, got {max_stores}")
        self.catalog = catalog if catalog is not None else Catalog()
        self.cache = cache if cache is not None else LRUCache(cache_size, max_cost=max_cost)
        self.max_stores = max_stores
        # The store pool is itself an LRUCache: thread-safe LRU with
        # hit/miss/eviction stats and single-flight store construction.
        self._store_pool = LRUCache(max_stores)
        # Where warm-start bundles live; the constructor only records the
        # path — callers invoke load_warm_state() once the catalogue is
        # populated (fingerprint verification needs the live resources).
        self.warm_dir = Path(warm_dir) if warm_dir is not None else None

    # -- warm-start persistence ------------------------------------------------

    def load_warm_state(
        self, directory: Optional[Union[str, Path]] = None
    ) -> Optional[Dict[str, int]]:
        """Reload warm state from ``directory`` (default: ``warm_dir``).

        A no-op returning ``None`` when no directory is configured.  Load
        failures never propagate: each component is individually verified and
        skipped on mismatch (see :mod:`repro.service.warmstart`), so a stale
        or corrupted bundle degrades to a cold boot, never a crashed one.
        """
        target = Path(directory) if directory is not None else self.warm_dir
        if target is None:
            return None
        from repro.service.warmstart import load_warm_state

        return load_warm_state(self, target)

    def save_warm_state(
        self, directory: Optional[Union[str, Path]] = None
    ) -> Optional[Dict[str, object]]:
        """Persist warm state to ``directory`` (default: ``warm_dir``).

        A no-op returning ``None`` when no directory is configured.  Save
        errors are reported as a structured event rather than raised — a
        shutdown must always complete, warm bundle or not.
        """
        target = Path(directory) if directory is not None else self.warm_dir
        if target is None:
            return None
        from repro.obs.log import get_logger
        from repro.service.warmstart import save_warm_state

        try:
            return save_warm_state(self, target)
        # Shutdown must finish even when the disk is full or read-only; the
        # next boot simply comes up cold.
        except OSError as error:
            get_logger().event(
                "warmstart_save_failed", directory=str(target), error=str(error)
            )
            return None

    # -- the catalogue ---------------------------------------------------------

    def register_dataset(
        self,
        dataset: Dataset,
        name: Optional[str] = None,
        *,
        replace: bool = True,
        freeze: bool = False,
    ) -> str:
        """Add a dataset to the catalogue; returns its registered name."""
        try:
            return self.catalog.register(
                dataset, name=name, kind=ResourceKind.DATASET,
                replace=replace, freeze=freeze,
            ).name
        except CatalogError as error:
            raise ServiceError(str(error)) from None

    def register_function(
        self,
        function: ScoringFunction,
        replace: bool = True,
        *,
        freeze: bool = False,
    ) -> str:
        """Add a scoring function to the catalogue; returns its name."""
        try:
            return self.catalog.register(
                function, kind=ResourceKind.FUNCTION, replace=replace, freeze=freeze
            ).name
        except CatalogError as error:
            raise ServiceError(str(error)) from None

    def register_marketplace(
        self, marketplace: Marketplace, *, replace: bool = True, freeze: bool = False
    ) -> str:
        """Register a marketplace plus its workers dataset and job functions.

        ``replace`` governs the satellite registrations too: with
        ``replace=False`` a job function whose name is already taken by
        *different* content raises (after the marketplace and workers entries
        have landed — registration is not transactional).  ``freeze`` pins
        only the marketplace entry itself; job functions may be shared with
        other marketplaces, so they are never frozen implicitly.
        """
        try:
            name = self.catalog.register(
                marketplace, kind=ResourceKind.MARKETPLACE,
                replace=replace, freeze=freeze,
            ).name
        except CatalogError as error:
            raise ServiceError(str(error)) from None
        self.register_dataset(marketplace.workers, name=name, replace=replace)
        for job in marketplace:
            self.register_function(job.function, replace=replace)
        return name

    def register_formulation(
        self,
        formulation: Formulation,
        name: Optional[str] = None,
        *,
        replace: bool = True,
        freeze: bool = False,
    ) -> str:
        """Add a named formulation to the catalogue; returns its name."""
        try:
            return self.catalog.register(
                formulation, name=name or formulation.name,
                kind=ResourceKind.FORMULATION, replace=replace, freeze=freeze,
            ).name
        except CatalogError as error:
            raise ServiceError(str(error)) from None

    @property
    def dataset_names(self) -> Tuple[str, ...]:
        return self.catalog.names(ResourceKind.DATASET)

    @property
    def function_names(self) -> Tuple[str, ...]:
        return self.catalog.names(ResourceKind.FUNCTION)

    @property
    def marketplace_names(self) -> Tuple[str, ...]:
        return self.catalog.names(ResourceKind.MARKETPLACE)

    @property
    def formulation_names(self) -> Tuple[str, ...]:
        return self.catalog.names(ResourceKind.FORMULATION)

    def dataset(self, ref: str) -> Dataset:
        """Resolve a dataset by name or content-fingerprint prefix."""
        try:
            return self.catalog.resolve(ResourceKind.DATASET, ref)  # type: ignore[return-value]
        except CatalogError as error:
            raise ServiceError(str(error)) from None

    def function(self, ref: str) -> ScoringFunction:
        """Resolve a scoring function by name or content-fingerprint prefix."""
        try:
            return self.catalog.resolve(ResourceKind.FUNCTION, ref)  # type: ignore[return-value]
        except CatalogError as error:
            raise ServiceError(str(error)) from None

    def marketplace(self, ref: str) -> Marketplace:
        """Resolve a marketplace by name or content-fingerprint prefix."""
        try:
            return self.catalog.resolve(ResourceKind.MARKETPLACE, ref)  # type: ignore[return-value]
        except CatalogError as error:
            raise ServiceError(str(error)) from None

    def formulation(self, ref: str) -> Formulation:
        """Resolve a registered formulation by name or fingerprint prefix."""
        try:
            return self.catalog.resolve(ResourceKind.FORMULATION, ref)  # type: ignore[return-value]
        except CatalogError as error:
            raise ServiceError(str(error)) from None

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    # -- score materialization (cross-request reuse) ---------------------------

    def score_store(self, dataset: Dataset, function: ScoringFunction) -> ScoreStore:
        """The shared :class:`~repro.core.scorestore.ScoreStore` for a pair.

        Stores are keyed by *content* fingerprints, so an AUDIT or COMPARE
        fan-out that re-runs searches over the same population and scoring
        function — even via rebuilt, content-identical objects — shares one
        materialized scoring pass.  The pool is LRU-bounded by ``max_stores``.
        """
        key = combine_fingerprints(
            "score-store", fingerprint_dataset(dataset), fingerprint_function(function)
        )
        store, _ = self._store_pool.get_or_compute(
            # Content-keyed, so uid-based slicing is safe for rebuilt copies.
            key,
            lambda: ScoreStore(dataset, function, trust_uids=True),
        )
        return store

    @property
    def store_stats(self) -> StorePoolStats:
        """Aggregate effectiveness of the score-store pool (for monitoring)."""
        pool = self._store_pool.stats
        per_store = [store.stats for store in self._store_pool.values()]
        return StorePoolStats(
            stores=pool.entries,
            hits=pool.hits,
            misses=pool.misses,
            evictions=pool.evictions,
            scoring_passes=sum(s.scoring_passes for s in per_store),
            sliced_partitions=sum(s.sliced_partitions for s in per_store),
            fallback_scorings=sum(s.fallback_scorings for s in per_store),
            histogram_hits=sum(s.histogram_hits for s in per_store),
            histogram_misses=sum(s.histogram_misses for s in per_store),
        )

    # -- cached kernels (object-level API) ------------------------------------

    def quantify_cached(
        self,
        dataset: Dataset,
        function: ScoringFunction,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        attributes: Optional[Sequence[str]] = None,
        max_depth: Optional[int] = None,
        min_partition_size: int = 1,
    ) -> CachedQuantify:
        """Memoised ``quantify`` + ``unfairness_breakdown`` over live objects.

        The key is built from content fingerprints, so re-filtered copies of
        the same population and freshly re-built but identical scoring
        functions still hit the cache.
        """
        key = combine_fingerprints(
            "quantify",
            fingerprint_dataset(dataset),
            fingerprint_function(function),
            fingerprint_formulation(formulation),
            fingerprint_value(
                {
                    "attributes": None if attributes is None else list(attributes),
                    "max_depth": max_depth,
                    "min_partition_size": min_partition_size,
                }
            ),
        )

        def produce() -> Tuple[QuantifyResult, UnfairnessBreakdown]:
            store = self.score_store(dataset, function)
            result = quantify(
                dataset,
                function,
                formulation=formulation,
                attributes=attributes,
                max_depth=max_depth,
                min_partition_size=min_partition_size,
                store=store,
            )
            breakdown = unfairness_breakdown(
                result.partitioning, function, formulation, store=store
            )
            return result, breakdown

        (result, breakdown), hit = self.cache.get_or_compute(
            key, produce, cost=lambda pair: float(pair[0].splits_evaluated + 1)
        )
        return CachedQuantify(result=result, breakdown=breakdown, key=key, cached=hit)

    def exhaustive_cached(
        self,
        dataset: Dataset,
        function: ScoringFunction,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        attributes: Optional[Sequence[str]] = None,
        limit: Optional[int] = 200_000,
    ) -> ExhaustiveResult:
        """Memoised :func:`~repro.core.exhaustive.exhaustive_search`."""
        key = combine_fingerprints(
            "exhaustive",
            fingerprint_dataset(dataset),
            fingerprint_function(function),
            fingerprint_formulation(formulation),
            fingerprint_value(
                {
                    "attributes": None if attributes is None else list(attributes),
                    "limit": limit,
                }
            ),
        )
        result, _ = self.cache.get_or_compute(
            key,
            lambda: exhaustive_search(
                dataset,
                function,
                formulation=formulation,
                attributes=attributes,
                limit=limit,
                store=self.score_store(dataset, function),
            ),
            cost=lambda outcome: float(outcome.explored + 1),
        )
        return result

    def breakdown_cached(
        self,
        dataset: Dataset,
        function: ScoringFunction,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        attributes: Optional[Sequence[str]] = None,
        max_depth: Optional[int] = None,
        min_partition_size: int = 1,
    ) -> UnfairnessBreakdown:
        """The breakdown of the quantified partitioning (shares the cache)."""
        return self.quantify_cached(
            dataset,
            function,
            formulation,
            attributes=attributes,
            max_depth=max_depth,
            min_partition_size=min_partition_size,
        ).breakdown

    # -- cached role workflows -------------------------------------------------

    def _resolve_marketplace(self, marketplace: Union[str, Marketplace]) -> Marketplace:
        if isinstance(marketplace, str):
            return self.marketplace(marketplace)
        return marketplace

    def audit_marketplace(
        self,
        marketplace: Union[str, Marketplace],
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        attributes: Optional[Sequence[str]] = None,
        min_partition_size: int = 1,
    ) -> AuditReport:
        """Memoised AUDITOR workflow over a (named or live) marketplace."""
        market = self._resolve_marketplace(marketplace)
        key = combine_fingerprints(
            "audit-report",
            fingerprint_marketplace(market),
            fingerprint_formulation(formulation),
            fingerprint_value(
                {
                    "attributes": None if attributes is None else list(attributes),
                    "min_partition_size": min_partition_size,
                }
            ),
        )
        auditor = Auditor(
            formulation=formulation,
            attributes=attributes,
            min_partition_size=min_partition_size,
            store_provider=self.score_store,
        )
        report, _ = self.cache.get_or_compute(
            key,
            lambda: auditor.audit_marketplace(market),
            cost=lambda rep: float(
                sum(audit.result.splits_evaluated for audit in rep.audits) + 1
            ),
        )
        return report

    def explore_job(
        self,
        marketplace: Union[str, Marketplace],
        job_title: str,
        sweep_steps: int = 5,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
        *,
        attributes: Optional[Sequence[str]] = None,
        min_partition_size: int = 1,
    ) -> JobOwnerReport:
        """Memoised JOB OWNER workflow (weight sweep over one job)."""
        market = self._resolve_marketplace(marketplace)
        key = combine_fingerprints(
            "job-owner",
            fingerprint_marketplace(market),
            fingerprint_formulation(formulation),
            fingerprint_value(
                {
                    "job_title": job_title,
                    "sweep_steps": sweep_steps,
                    "attributes": None if attributes is None else list(attributes),
                    "min_partition_size": min_partition_size,
                }
            ),
        )
        owner = JobOwner(
            formulation=formulation,
            attributes=attributes,
            min_partition_size=min_partition_size,
        )
        report, _ = self.cache.get_or_compute(
            key, lambda: owner.explore_job(market, job_title, sweep_steps=sweep_steps)
        )
        return report

    def end_user_view(
        self,
        group: Mapping[str, object],
        marketplaces: Sequence[Union[str, Marketplace]],
        job_title: str,
        formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    ) -> ReportTable:
        """Memoised END USER workflow: one group, one job, several platforms."""
        markets = [self._resolve_marketplace(market) for market in marketplaces]
        key = combine_fingerprints(
            "end-user",
            fingerprint_value(dict(group)),
            fingerprint_value(job_title),
            fingerprint_formulation(formulation),
            *[fingerprint_marketplace(market) for market in markets],
        )
        table, _ = self.cache.get_or_compute(
            key,
            lambda: EndUser(dict(group), formulation=formulation).compare_marketplaces(
                markets, job_title
            ),
        )
        return table

    # -- request execution (the wire protocol) --------------------------------

    def request_key(self, request: ServiceRequest) -> str:
        """The cache key a request resolves to (content-based, not name-based).

        Names are resolved through the catalog first, so two services that
        register *different* data under the same name produce different keys,
        and renaming identical data produces identical keys.
        """
        if isinstance(request, QuantifyRequest):
            function = self._effective_function(
                self.dataset(request.dataset), request.function, request.use_ranks_only
            )
            return combine_fingerprints(
                "request-quantify",
                fingerprint_dataset(self.dataset(request.dataset)),
                fingerprint_function(function),
                fingerprint_formulation(request.formulation()),
                fingerprint_value(
                    {
                        # Function fingerprints ignore display names, but the
                        # payload echoes the requested name, so it keys too.
                        "function_name": request.function,
                        "attributes": None
                        if request.attributes is None
                        else list(request.attributes),
                        "max_depth": request.max_depth,
                        "min_partition_size": request.min_partition_size,
                    }
                ),
            )
        if isinstance(request, AuditRequest):
            return combine_fingerprints(
                "request-audit",
                fingerprint_marketplace(self.marketplace(request.marketplace)),
                fingerprint_formulation(request.formulation()),
                fingerprint_value(
                    {
                        "job": request.job,
                        "attributes": None
                        if request.attributes is None
                        else list(request.attributes),
                        "min_partition_size": request.min_partition_size,
                    }
                ),
            )
        if isinstance(request, CompareRequest):
            return combine_fingerprints(
                "request-compare",
                fingerprint_dataset(self.dataset(request.dataset)),
                *[
                    fingerprint_function(self.function(name))
                    for name in request.functions
                ],
                fingerprint_formulation(request.formulation()),
                fingerprint_value(
                    {
                        "function_names": list(request.functions),
                        "attributes": None
                        if request.attributes is None
                        else list(request.attributes),
                        "max_depth": request.max_depth,
                        "min_partition_size": request.min_partition_size,
                    }
                ),
            )
        if isinstance(request, BreakdownRequest):
            function = self._effective_function(
                self.dataset(request.dataset), request.function, request.use_ranks_only
            )
            return combine_fingerprints(
                "request-breakdown",
                fingerprint_dataset(self.dataset(request.dataset)),
                fingerprint_function(function),
                fingerprint_formulation(request.formulation()),
                fingerprint_value(
                    {
                        "function_name": request.function,
                        "attributes": None
                        if request.attributes is None
                        else list(request.attributes),
                        "min_partition_size": request.min_partition_size,
                    }
                ),
            )
        if isinstance(request, SweepRequest):
            return combine_fingerprints(
                "request-sweep",
                fingerprint_dataset(self.dataset(request.dataset)),
                fingerprint_function(self.function(request.function)),
                fingerprint_formulation(request.formulation()),
                fingerprint_value(
                    {
                        "function_name": request.function,
                        # steps is ignored whenever explicit weights are given,
                        # so it must not split semantically identical requests.
                        "steps": request.steps if request.weights is None else None,
                        "weights": None if request.weights is None
                        else [list(vector) for vector in request.weights],
                        "attributes": None
                        if request.attributes is None
                        else list(request.attributes),
                        "max_depth": request.max_depth,
                        "min_partition_size": request.min_partition_size,
                    }
                ),
            )
        if isinstance(request, EndUserRequest):
            return combine_fingerprints(
                "request-end-user",
                fingerprint_value(dict(request.group)),
                fingerprint_value(request.job),
                fingerprint_formulation(request.formulation()),
                fingerprint_value(list(request.marketplaces)),
                *[
                    fingerprint_marketplace(self.marketplace(name))
                    for name in request.marketplaces
                ],
            )
        if isinstance(request, JobOwnerRequest):
            return combine_fingerprints(
                "request-job-owner",
                fingerprint_marketplace(self.marketplace(request.marketplace)),
                fingerprint_formulation(request.formulation()),
                fingerprint_value(
                    {
                        "job": request.job,
                        "sweep_steps": request.sweep_steps,
                        "min_partition_size": request.min_partition_size,
                    }
                ),
            )
        raise ServiceError(f"unsupported request type {type(request).__name__}")

    def error_result(
        self,
        request: ServiceRequest,
        error: BaseException,
        key: str = "",
        elapsed_s: float = 0.0,
        timings: Optional[Dict[str, object]] = None,
    ) -> ServiceResult:
        """The protocol-v2 error envelope for a failed request."""
        return ServiceResult(
            kind=request.kind,
            key=key,
            payload={},
            cached=False,
            elapsed_s=elapsed_s,
            store_stats=self.store_stats.as_dict(),
            timings=timings,
            error={"code": _error_code(error), "message": str(error)},
        )

    @staticmethod
    def _finish_timings(trace: Trace, elapsed: float) -> Dict[str, object]:
        """The envelope's ``timings`` field: recorded spans + derived totals.

        ``cache_ms`` is what is left of the wall clock after fingerprinting
        and payload computation — cache lookup, single-flight waiting and
        envelope assembly.  ``score_ms`` (when present) is *inside*
        ``compute_ms``: it times the score store's materialization pass.
        """
        timings = trace.timings()
        total_ms = round(elapsed * 1000.0, 3)
        key_ms = float(timings.get("key_ms", 0.0))  # type: ignore[arg-type]
        compute_ms = float(timings.get("compute_ms", 0.0))  # type: ignore[arg-type]
        timings["cache_ms"] = round(max(total_ms - key_ms - compute_ms, 0.0), 3)
        timings["total_ms"] = total_ms
        return timings

    @staticmethod
    def _record_request(
        kind: str, status: str, cached: bool, elapsed: float,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        registry = registry if registry is not None else get_registry()
        registry.counter(
            "fairank_requests_total",
            "Executed service requests by kind, outcome and cache hit",
        ).inc(kind=kind, status=status, cached="true" if cached else "false")
        registry.histogram(
            "fairank_request_seconds", "Service request latency by kind"
        ).observe(elapsed, kind=kind)

    def execute(
        self,
        request: ServiceRequest,
        key: Optional[str] = None,
        *,
        queue_s: Optional[float] = None,
    ) -> ServiceResult:
        """Execute one request, serving from the cache when possible.

        ``key`` lets callers that already computed :meth:`request_key` (the
        batch executor does, for deduplication) skip recomputing it — for
        rank-only requests the key itself involves ranking the population.
        ``queue_s`` is how long the request waited before execution started
        (the batch executor measures it); it lands in the envelope's
        ``timings`` as ``queue_ms``.

        A request that fails with a library error (unknown resource, invalid
        formulation, empty candidate pool, ...) returns an **error envelope**
        — :class:`~repro.service.jobs.ServiceResult` with ``error`` set and
        an empty payload — rather than raising, so batch and remote callers
        always get one result per request.  Error results are never cached:
        registering the missing resource makes the same request succeed.

        Note on statistics: a cold quantify/compare request records a miss
        both for its request-level payload entry and for the underlying
        kernel entry of :meth:`quantify_cached` (the layer shared with
        :class:`~repro.session.engine.FaiRankEngine`); ``cache_stats``
        therefore counts both layers.  The returned payload is a private
        deep copy — mutating it never corrupts the cached value.
        """
        started = time.perf_counter()
        # A fresh trace per request, inheriting any active trace id (HTTP
        # ingress, batch parent): batched requests share one trace id while
        # keeping per-request timings.
        trace = Trace(trace_id=current_trace_id())
        if queue_s:
            trace.add("queue", queue_s)
        registry = get_registry()
        with activate(trace):
            try:
                if key is None:
                    with trace.span("key"):
                        key = self.request_key(request)

                def produce() -> Dict[str, object]:
                    with trace.span("compute"):
                        return self._build_payload(request)

                payload, hit = self.cache.get_or_compute(key, produce)
            except FaiRankError as error:
                elapsed = time.perf_counter() - started
                self._record_request(request.kind, "error", False, elapsed, registry)
                return self.error_result(
                    request, error, key=key or "", elapsed_s=elapsed,
                    timings=self._finish_timings(trace, elapsed),
                )
        elapsed = time.perf_counter() - started
        self._record_request(request.kind, "ok", hit, elapsed, registry)
        return ServiceResult(
            kind=request.kind,
            key=key,
            payload=_copy_json(payload),
            cached=hit,
            elapsed_s=elapsed,
            store_stats=self.store_stats.as_dict(),
            timings=self._finish_timings(trace, elapsed),
        )

    def execute_many(
        self,
        requests: Sequence[ServiceRequest],
        max_workers: Optional[int] = None,
    ) -> List[ServiceResult]:
        """Run a batch of requests concurrently (see ``BatchExecutor``)."""
        from repro.service.executor import BatchExecutor

        return BatchExecutor(self, max_workers=max_workers).run(requests)

    # -- payload builders ------------------------------------------------------

    def _effective_function(
        self, dataset: Dataset, function_name: str, use_ranks_only: bool
    ) -> ScoringFunction:
        """Resolve a function honouring the transparency settings."""
        function = self.function(function_name)
        if isinstance(function, OpaqueScoringFunction):
            return RankDerivedScorer(
                function.reveal_ranking(dataset), name=f"{function_name}-from-ranks"
            )
        if use_ranks_only:
            return RankDerivedScorer(
                function.rank(dataset), name=f"{function_name}-from-ranks"
            )
        return function

    def _build_payload(self, request: ServiceRequest) -> Dict[str, object]:
        if isinstance(request, QuantifyRequest):
            return self._quantify_payload(request)
        if isinstance(request, AuditRequest):
            return self._audit_payload(request)
        if isinstance(request, CompareRequest):
            return self._compare_payload(request)
        if isinstance(request, BreakdownRequest):
            return self._breakdown_payload(request)
        if isinstance(request, SweepRequest):
            return self._sweep_payload(request)
        if isinstance(request, EndUserRequest):
            return self._end_user_payload(request)
        if isinstance(request, JobOwnerRequest):
            return self._job_owner_payload(request)
        raise ServiceError(f"unsupported request type {type(request).__name__}")

    def _quantify_payload(self, request: QuantifyRequest) -> Dict[str, object]:
        dataset = self.dataset(request.dataset)
        function = self._effective_function(
            dataset, request.function, request.use_ranks_only
        )
        formulation = request.formulation()
        served = self.quantify_cached(
            dataset,
            function,
            formulation,
            attributes=request.attributes,
            max_depth=request.max_depth,
            min_partition_size=request.min_partition_size,
        )
        result, breakdown = served.result, served.breakdown
        return {
            "dataset": request.dataset,
            "function": request.function,
            "formulation": formulation.name,
            "population": len(dataset),
            "unfairness": result.unfairness,
            "partitions": [
                {"label": label, "size": size}
                for label, size in zip(result.partitioning.labels, result.partitioning.sizes)
            ],
            "splits_evaluated": result.splits_evaluated,
            "most_favored": breakdown.most_favored,
            "least_favored": breakdown.least_favored,
            "pairwise": [
                [first, second, value]
                for (first, second), value in breakdown.pairwise.items()
            ],
        }

    def _audit_payload(self, request: AuditRequest) -> Dict[str, object]:
        market = self.marketplace(request.marketplace)
        formulation = request.formulation()
        auditor = Auditor(
            formulation=formulation,
            attributes=request.attributes,
            min_partition_size=request.min_partition_size,
            store_provider=self.score_store,
        )
        if request.job is not None:
            audits = [auditor.audit_job(market, market.job(request.job))]
        else:
            audits = list(
                self.audit_marketplace(
                    market,
                    formulation,
                    attributes=request.attributes,
                    min_partition_size=request.min_partition_size,
                ).audits
            )
        jobs_payload = [
            {
                "job": audit.job_title,
                "transparent_function": audit.transparent_function,
                "unfairness": audit.unfairness,
                "groups": list(audit.partitions),
                "most_favored": audit.most_favored,
                "least_favored": audit.least_favored,
            }
            for audit in audits
        ]
        most_unfair = max(audits, key=lambda audit: audit.unfairness)
        least_unfair = min(audits, key=lambda audit: audit.unfairness)
        return {
            "marketplace": request.marketplace,
            "formulation": formulation.name,
            "jobs": jobs_payload,
            "most_unfair_job": most_unfair.job_title,
            "least_unfair_job": least_unfair.job_title,
        }

    def _compare_payload(self, request: CompareRequest) -> Dict[str, object]:
        dataset = self.dataset(request.dataset)
        formulation = request.formulation()
        rows: List[Dict[str, object]] = []
        for name in request.functions:
            served = self.quantify_cached(
                dataset,
                self._effective_function(dataset, name, use_ranks_only=False),
                formulation,
                attributes=request.attributes,
                max_depth=request.max_depth,
                min_partition_size=request.min_partition_size,
            )
            rows.append(
                {
                    "function": name,
                    "unfairness": served.result.unfairness,
                    "groups": len(served.result.partitioning),
                    "most_favored": served.breakdown.most_favored,
                    "least_favored": served.breakdown.least_favored,
                }
            )
        by_unfairness = sorted(rows, key=lambda row: (row["unfairness"], row["function"]))
        return {
            "dataset": request.dataset,
            "formulation": formulation.name,
            "functions": rows,
            "fairest": by_unfairness[0]["function"],
            "most_unfair": by_unfairness[-1]["function"],
        }

    def _breakdown_payload(self, request: BreakdownRequest) -> Dict[str, object]:
        """Per-attribute unfairness of the first-level single-attribute splits."""
        dataset = self.dataset(request.dataset)
        function = self._effective_function(
            dataset, request.function, request.use_ranks_only
        )
        formulation = request.formulation()
        binning = resolve_binning(formulation)
        attributes = (
            request.attributes
            if request.attributes is not None
            else dataset.schema.protected_names
        )
        if not attributes:
            raise ServiceError(
                "a breakdown request needs at least one protected attribute "
                f"(dataset {request.dataset!r} declares none)"
            )
        for attribute in attributes:
            dataset.schema.require_protected(attribute)
        # One materialized scoring pass serves every attribute's split.
        store = self.score_store(dataset, function)
        root = root_partition(dataset)
        rows: List[Dict[str, object]] = []
        for attribute in attributes:
            children = split_partition(root, attribute, store=store)
            admissible = len(children) >= 2 and all(
                child.size >= request.min_partition_size for child in children
            )
            if len(children) >= 2:
                histograms = [
                    child.histogram(function, binning=binning, store=store)
                    for child in children
                ]
                value = formulation.aggregate(
                    pairwise_distances(histograms, formulation)
                )
            else:
                value = 0.0
            groups = []
            for child in children:
                scores = child.scores(function, store=store)
                groups.append(
                    {
                        "label": child.label,
                        "size": child.size,
                        "mean_score": float(scores.mean()) if scores.size else 0.0,
                    }
                )
            rows.append(
                {
                    "attribute": attribute,
                    "unfairness": value,
                    "admissible": admissible,
                    "groups": groups,
                }
            )
        ranked = [row for row in rows if row["admissible"]] or rows
        most = max(ranked, key=lambda row: row["unfairness"])
        least = min(ranked, key=lambda row: row["unfairness"])
        return {
            "dataset": request.dataset,
            "function": request.function,
            "formulation": formulation.name,
            "population": len(dataset),
            "attributes": rows,
            "most_unfair_attribute": most["attribute"],
            "least_unfair_attribute": least["attribute"],
        }

    def _sweep_payload(self, request: SweepRequest) -> Dict[str, object]:
        """Weight sweep over a linear function, one shared scoring pass per point.

        Every sweep point resolves its :class:`~repro.core.scorestore.ScoreStore`
        through the pool *before* running the search, so the summary statistics
        and the (quantify + breakdown) kernel share one materialized vector —
        the pool records a hit per point, visible in ``store_stats``.
        """
        dataset = self.dataset(request.dataset)
        base = self.function(request.function)
        if not isinstance(base, LinearScoringFunction):
            raise ServiceError(
                f"sweep requests need a transparent linear scoring function; "
                f"{request.function!r} is a {type(base).__name__}"
            )
        formulation = request.formulation()
        vectors = request.weight_maps
        if vectors is None:
            vectors = tuple(weight_sweep(base.attributes, steps=request.steps))
        points: List[Dict[str, object]] = []
        for index, weights in enumerate(vectors):
            # An explicit vector fully specifies the variant's weights
            # (normalized; attributes it omits get weight 0) — it is NOT
            # merged into the base function's weights, so the client always
            # gets exactly the function it asked for.
            variant = LinearScoringFunction(
                dict(weights), name=f"{base.name}@sweep{index}"
            )
            store = self.score_store(dataset, variant)
            vector = store.vector()
            served = self.quantify_cached(
                dataset,
                variant,
                formulation,
                attributes=request.attributes,
                max_depth=request.max_depth,
                min_partition_size=request.min_partition_size,
            )
            points.append(
                {
                    "weights": dict(variant.weights),
                    "unfairness": served.result.unfairness,
                    "groups": len(served.result.partitioning),
                    "most_favored": served.breakdown.most_favored,
                    "least_favored": served.breakdown.least_favored,
                    "mean_score": float(vector.mean()),
                    "splits_evaluated": served.result.splits_evaluated,
                }
            )
        fairest = min(range(len(points)), key=lambda i: points[i]["unfairness"])
        most_unfair = max(range(len(points)), key=lambda i: points[i]["unfairness"])
        return {
            "dataset": request.dataset,
            "function": request.function,
            "formulation": formulation.name,
            "population": len(dataset),
            "points": points,
            "fairest_index": fairest,
            "fairest_weights": points[fairest]["weights"],
            "most_unfair_index": most_unfair,
        }

    def _end_user_payload(self, request: EndUserRequest) -> Dict[str, object]:
        group = request.group_map
        formulation = request.formulation()
        user = EndUser(group, formulation=formulation)
        outcomes: List[Dict[str, object]] = []
        for name in request.marketplaces:
            market = self.marketplace(name)
            if request.job not in market:
                continue
            outcome = user.assess_job(market, request.job)
            outcomes.append(
                {
                    "marketplace": name,
                    "job": outcome.job_title,
                    "group_size": outcome.group_size,
                    "population_size": outcome.population_size,
                    "mean_score": outcome.mean_score,
                    "population_mean_score": outcome.population_mean_score,
                    "score_gap": outcome.score_gap,
                    "mean_rank": outcome.mean_rank,
                    "exposure_share": outcome.exposure_share,
                    "emd_vs_rest": outcome.emd_vs_rest,
                    "flagged_unfair": outcome.flagged_unfair,
                }
            )
        if not outcomes:
            raise ServiceError(
                f"none of the marketplaces ({', '.join(request.marketplaces)}) "
                f"offers a job titled {request.job!r}"
            )
        best = max(outcomes, key=lambda row: row["score_gap"])
        worst = min(outcomes, key=lambda row: row["score_gap"])
        return {
            "group": dict(group),
            "job": request.job,
            "formulation": formulation.name,
            "marketplaces": list(request.marketplaces),
            "outcomes": outcomes,
            "best_marketplace": best["marketplace"],
            "worst_marketplace": worst["marketplace"],
        }

    def _job_owner_payload(self, request: JobOwnerRequest) -> Dict[str, object]:
        formulation = request.formulation()
        report = self.explore_job(
            request.marketplace,
            request.job,
            sweep_steps=request.sweep_steps,
            formulation=formulation,
            min_partition_size=request.min_partition_size,
        )
        variants = [
            {
                "variant": evaluation.name,
                "weights": dict(evaluation.function.weights),
                "unfairness": evaluation.unfairness,
                "groups": len(evaluation.partitions),
                "most_favored": evaluation.most_favored,
                "least_favored": evaluation.least_favored,
            }
            for evaluation in report.evaluations
        ]
        recommended = report.fairest
        most_unfair = report.most_unfair
        return {
            "marketplace": request.marketplace,
            "job": request.job,
            "formulation": formulation.name,
            "sweep_steps": request.sweep_steps,
            "variants": variants,
            "recommended": None if recommended is None else recommended.name,
            "most_unfair": None if most_unfair is None else most_unfair.name,
        }
