"""An in-process client facade over the wire protocol.

Programmatic callers of the service used to hand-assemble request
dataclasses, call :meth:`~repro.service.service.FairnessService.execute` and
unpack the envelope themselves.  :class:`FairnessClient` is the ergonomic
front door: one method per request kind (``quantify``, ``audit``,
``compare``, ``breakdown``, ``sweep``, ``end_user``, ``job_owner``) that
builds the request, executes it through the service — so every call shares
the service's fingerprint-keyed cache and score-store pool with raw-request
and batch traffic — and returns the :class:`~repro.service.jobs.ServiceResult`.

By default an error envelope is raised as a
:class:`~repro.errors.ServiceError` (``raise_errors=False`` hands envelopes
back untouched, the behaviour a remote client would implement).

The seven-method surface lives on :class:`FairnessClientBase`, which is
transport-agnostic: subclasses only implement ``_run`` (how a built request
reaches a service).  :class:`FairnessClient` executes in-process;
:class:`repro.server.client.HTTPFairnessClient` POSTs the same requests to a
``fairank serve`` process — caller code is identical against either.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.metrics.histogram import DEFAULT_BINS
from repro.service.jobs import (
    AuditRequest,
    BreakdownRequest,
    CompareRequest,
    EndUserRequest,
    JobOwnerRequest,
    QuantifyRequest,
    ServiceRequest,
    ServiceResult,
    SweepRequest,
)
from repro.service.service import FairnessService

__all__ = ["FairnessClient", "FairnessClientBase"]


class FairnessClientBase:
    """The shared per-kind client surface over wire protocol v2.

    Subclasses implement :meth:`_run`, which carries a built request to a
    :class:`FairnessService` (in-process, over HTTP, ...) and returns its
    :class:`~repro.service.jobs.ServiceResult`.  Request *construction* —
    and therefore request validation — always happens client-side, so every
    transport raises the same errors for malformed parameters.
    """

    #: When True (subclasses set it in their constructor) an error envelope
    #: raises :class:`~repro.errors.ServiceError` instead of being returned.
    raise_errors: bool = True

    def _run(self, request: ServiceRequest) -> ServiceResult:
        raise NotImplementedError("client subclasses implement _run")

    # -- one method per protocol-v2 request kind -------------------------------

    def quantify(
        self,
        dataset: str,
        function: str,
        *,
        objective: str = "most_unfair",
        aggregation: str = "average",
        distance: str = "emd",
        bins: int = DEFAULT_BINS,
        attributes: Optional[Sequence[str]] = None,
        max_depth: Optional[int] = None,
        min_partition_size: int = 1,
        use_ranks_only: bool = False,
    ) -> ServiceResult:
        """One QUANTIFY search plus its unfairness breakdown."""
        return self._run(
            QuantifyRequest(
                dataset=dataset,
                function=function,
                objective=objective,
                aggregation=aggregation,
                distance=distance,
                bins=bins,
                attributes=None if attributes is None else tuple(attributes),
                max_depth=max_depth,
                min_partition_size=min_partition_size,
                use_ranks_only=use_ranks_only,
            )
        )

    def audit(
        self,
        marketplace: str,
        job: Optional[str] = None,
        *,
        objective: str = "most_unfair",
        aggregation: str = "average",
        distance: str = "emd",
        bins: int = DEFAULT_BINS,
        attributes: Optional[Sequence[str]] = None,
        min_partition_size: int = 1,
    ) -> ServiceResult:
        """The AUDITOR scenario over a marketplace (or one of its jobs)."""
        return self._run(
            AuditRequest(
                marketplace=marketplace,
                job=job,
                objective=objective,
                aggregation=aggregation,
                distance=distance,
                bins=bins,
                attributes=None if attributes is None else tuple(attributes),
                min_partition_size=min_partition_size,
            )
        )

    def compare(
        self,
        dataset: str,
        functions: Sequence[str],
        *,
        objective: str = "most_unfair",
        aggregation: str = "average",
        distance: str = "emd",
        bins: int = DEFAULT_BINS,
        attributes: Optional[Sequence[str]] = None,
        max_depth: Optional[int] = None,
        min_partition_size: int = 1,
    ) -> ServiceResult:
        """Quantify several scoring functions over one dataset and rank them."""
        return self._run(
            CompareRequest(
                dataset=dataset,
                functions=tuple(functions),
                objective=objective,
                aggregation=aggregation,
                distance=distance,
                bins=bins,
                attributes=None if attributes is None else tuple(attributes),
                max_depth=max_depth,
                min_partition_size=min_partition_size,
            )
        )

    def breakdown(
        self,
        dataset: str,
        function: str,
        *,
        objective: str = "most_unfair",
        aggregation: str = "average",
        distance: str = "emd",
        bins: int = DEFAULT_BINS,
        attributes: Optional[Sequence[str]] = None,
        min_partition_size: int = 1,
        use_ranks_only: bool = False,
    ) -> ServiceResult:
        """Per-attribute unfairness of the first-level splits."""
        return self._run(
            BreakdownRequest(
                dataset=dataset,
                function=function,
                objective=objective,
                aggregation=aggregation,
                distance=distance,
                bins=bins,
                attributes=None if attributes is None else tuple(attributes),
                min_partition_size=min_partition_size,
                use_ranks_only=use_ranks_only,
            )
        )

    def sweep(
        self,
        dataset: str,
        function: str,
        *,
        steps: int = 5,
        weights: Optional[Sequence[Mapping[str, float]]] = None,
        objective: str = "most_unfair",
        aggregation: str = "average",
        distance: str = "emd",
        bins: int = DEFAULT_BINS,
        attributes: Optional[Sequence[str]] = None,
        max_depth: Optional[int] = None,
        min_partition_size: int = 1,
    ) -> ServiceResult:
        """Weight sweep over a linear function (explicit vectors or auto grid)."""
        return self._run(
            SweepRequest(
                dataset=dataset,
                function=function,
                steps=steps,
                weights=None if weights is None else tuple(weights),  # type: ignore[arg-type]
                objective=objective,
                aggregation=aggregation,
                distance=distance,
                bins=bins,
                attributes=None if attributes is None else tuple(attributes),
                max_depth=max_depth,
                min_partition_size=min_partition_size,
            )
        )

    def end_user(
        self,
        group: Mapping[str, object],
        marketplaces: Sequence[str],
        job: str,
        *,
        objective: str = "most_unfair",
        aggregation: str = "average",
        distance: str = "emd",
        bins: int = DEFAULT_BINS,
    ) -> ServiceResult:
        """The END-USER scenario: one group, one job, several marketplaces."""
        return self._run(
            EndUserRequest(
                group=tuple(group.items()),
                marketplaces=tuple(marketplaces),
                job=job,
                objective=objective,
                aggregation=aggregation,
                distance=distance,
                bins=bins,
            )
        )

    def job_owner(
        self,
        marketplace: str,
        job: str,
        *,
        sweep_steps: int = 5,
        objective: str = "most_unfair",
        aggregation: str = "average",
        distance: str = "emd",
        bins: int = DEFAULT_BINS,
        min_partition_size: int = 1,
    ) -> ServiceResult:
        """The JOB-OWNER scenario: sweep a job's weights, recommend a variant."""
        return self._run(
            JobOwnerRequest(
                marketplace=marketplace,
                job=job,
                sweep_steps=sweep_steps,
                objective=objective,
                aggregation=aggregation,
                distance=distance,
                bins=bins,
                min_partition_size=min_partition_size,
            )
        )


class FairnessClient(FairnessClientBase):
    """Typed, per-kind entry points over an in-process :class:`FairnessService`.

    Parameters
    ----------
    service:
        The service every call executes against.
    raise_errors:
        When True (default) an error envelope raises
        :class:`~repro.errors.ServiceError`; when False the envelope is
        returned as-is and the caller inspects ``result.ok`` / ``result.error``.
    """

    def __init__(self, service: FairnessService, *, raise_errors: bool = True) -> None:
        self.service = service
        self.raise_errors = raise_errors

    def _run(self, request: ServiceRequest) -> ServiceResult:
        result = self.service.execute(request)
        if self.raise_errors:
            result.raise_for_error()
        return result
