"""Thread-safe LRU result cache with cost accounting.

The service memoises expensive fairness computations (QUANTIFY searches,
audits, comparisons) keyed by content fingerprints.  The cache is a classic
LRU bounded by entry count and, optionally, by total *cost* — an arbitrary
per-entry weight the caller supplies (the service uses the number of
candidate splits a search evaluated, so one huge search can evict many cheap
ones).

``get_or_compute`` is single-flight: when several threads request the same
missing key concurrently (the batch executor does exactly this), only one
runs the producer; the others block until the value lands and then read it
as a hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, TypeVar

__all__ = ["CacheStats", "LRUCache"]

T = TypeVar("T")


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    total_cost: float = 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when untouched)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "total_cost": self.total_cost,
            "hit_rate": round(self.hit_rate, 4),
        }

    def describe(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.entries} entries "
            f"(cost {self.total_cost:g}), {self.evictions} evictions"
        )


_ABSENT = object()


class LRUCache:
    """A thread-safe least-recently-used cache with per-entry costs.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept (must be >= 1).
    max_cost:
        Optional bound on the sum of entry costs; when exceeded the least
        recently used entries are evicted until the total fits.  A single
        entry costlier than ``max_cost`` is refused at insert time (counted
        as an eviction) — the cache stays within budget even with one entry,
        and a pathological request can never pin the budget forever or wipe
        every cheaper entry to make room for itself.
    """

    def __init__(self, capacity: int = 256, max_cost: Optional[float] = None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if max_cost is not None and max_cost <= 0:
            raise ValueError(f"max_cost must be positive, got {max_cost}")
        self.capacity = capacity
        self.max_cost = max_cost
        self._entries: "OrderedDict[str, Tuple[object, float]]" = OrderedDict()
        self._lock = threading.RLock()
        self._inflight: Dict[str, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._total_cost = 0.0

    # -- primitive operations -------------------------------------------------

    def get(self, key: str, default: object = None) -> object:
        """Return the cached value for ``key`` (counting a hit or a miss)."""
        with self._lock:
            entry = self._entries.get(key, _ABSENT)
            if entry is _ABSENT:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def put(self, key: str, value: object, cost: float = 1.0) -> None:
        """Insert (or refresh) an entry and evict LRU entries over budget."""
        cost = max(float(cost), 0.0)
        with self._lock:
            if key in self._entries:
                _, old_cost = self._entries.pop(key)
                self._total_cost -= old_cost
            if self.max_cost is not None and cost > self.max_cost:
                # An entry that alone busts the cost budget is evicted right
                # at insert: admitting it would either pin it forever (it can
                # never be the one evicted back under budget) or flush every
                # cheaper entry to make room for it.
                self._evictions += 1
                return
            self._entries[key] = (value, cost)
            self._total_cost += cost
            self._evict_over_budget_locked()

    def _evict_over_budget_locked(self) -> None:
        while len(self._entries) > self.capacity:
            self._evict_lru_locked()
        if self.max_cost is not None:
            while self._total_cost > self.max_cost and self._entries:
                self._evict_lru_locked()

    def _evict_lru_locked(self) -> None:
        _, (_, cost) = self._entries.popitem(last=False)
        self._total_cost -= cost
        self._evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns True when it existed."""
        with self._lock:
            entry = self._entries.pop(key, _ABSENT)
            if entry is _ABSENT:
                return False
            # Exact recompute instead of `-=`: repeated float add/subtract
            # drifts over a long-lived service, and a drifted total either
            # over-evicts or lets the budget leak.
            self._total_cost = float(sum(cost for _, cost in self._entries.values()))
            return True

    def clear(self) -> None:
        """Drop every entry (statistics counters are kept)."""
        with self._lock:
            self._entries.clear()
            # Exact by construction: an empty cache carries zero cost.
            self._total_cost = 0.0

    def values(self) -> Tuple[object, ...]:
        """Snapshot of the cached values, least recently used first."""
        with self._lock:
            return tuple(value for value, _ in self._entries.values())

    def items(self) -> Tuple[Tuple[str, object, float], ...]:
        """Snapshot of ``(key, value, cost)`` triples, least recently used first.

        Re-inserting the triples in this order into an empty cache (the
        warm-start reload path) reproduces the recency order exactly.
        """
        with self._lock:
            return tuple(
                (key, value, cost) for key, (value, cost) in self._entries.items()
            )

    # -- memoisation ----------------------------------------------------------

    def get_or_compute(
        self,
        key: str,
        producer: Callable[[], T],
        cost: Optional[Callable[[T], float]] = None,
    ) -> Tuple[T, bool]:
        """Return ``(value, was_hit)``, computing and caching on a miss.

        Concurrent callers for the same missing key are deduplicated: one
        thread runs ``producer`` while the rest wait and then read the cached
        value.  ``cost`` maps the produced value to its cache cost (default
        1.0).  If the producer raises, waiters retry the computation.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key, _ABSENT)
                if entry is not _ABSENT:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry[0], True  # type: ignore[return-value]
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    self._misses += 1
                    break
            # Another thread is computing this key: wait, then loop to re-read.
            event.wait()
        try:
            value = producer()
        except BaseException:
            self._release_inflight(key)
            raise
        # Publish before releasing waiters so they observe the value as a hit.
        self.put(key, value, cost=cost(value) if cost is not None else 1.0)
        self._release_inflight(key)
        return value, False

    def _release_inflight(self, key: str) -> None:
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    # -- introspection --------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                total_cost=self._total_cost,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LRUCache(capacity={self.capacity}, {self.stats.describe()})"
