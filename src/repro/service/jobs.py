"""Typed request/response objects — wire protocol v2 of the service.

A request references datasets, scoring functions and marketplaces *by the
name they are registered under* in the service's
:class:`~repro.catalog.Catalog`, so every request is a small,
JSON-serialisable value object.  ``to_json`` / ``from_json`` round-trip
losslessly (``from_json(to_json(r)) == r``), which is what lets a batch of
requests live in a file, a queue or an HTTP body.

**Protocol v2** adds a versioned envelope and three things v1 lacked:

* every ``to_json`` payload carries ``"protocol": 2``; ingestion is
  graceful — a payload without the field (or with ``protocol: 1``) is a v1
  request and parses identically, while versions this server does not speak
  are rejected with a clear error;
* :class:`ServiceResult` gains a structured ``error`` payload
  (``{"code", "message"}``) so a failed request travels the same envelope as
  a successful one instead of only raising server-side;
* three paper scenarios that v1 could not express over the wire:

  ==================  =====================================================
  kind                workload
  ==================  =====================================================
  ``quantify``        one QUANTIFY search plus its unfairness breakdown
  ``audit``           the AUDITOR scenario over a marketplace (or one job)
  ``compare``         one dataset, several scoring functions, ranked
  ``breakdown``       per-attribute unfairness of first-level splits
  ``sweep``           weight sweep over a linear function (JOB-OWNER core)
  ``end_user``        one group, one job, several marketplaces (END-USER)
  ``job_owner``       full job-owner variant exploration with a verdict
  ==================  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    ClassVar,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.core.formulations import Formulation
from repro.errors import ServiceError
from repro.metrics.histogram import DEFAULT_BINS

__all__ = [
    "PROTOCOL_VERSION",
    "QuantifyRequest",
    "AuditRequest",
    "CompareRequest",
    "BreakdownRequest",
    "SweepRequest",
    "EndUserRequest",
    "JobOwnerRequest",
    "ServiceRequest",
    "ServiceResult",
    "request_from_json",
]

#: The protocol version this build speaks (and stamps on outgoing payloads).
PROTOCOL_VERSION = 2

#: Versions this server ingests.  v1 payloads simply lack the new request
#: kinds and the ``protocol`` field; their fields are a strict subset of v2.
_SUPPORTED_PROTOCOLS = (1, 2)

#: Weight vectors travel as ``{attribute: weight}`` JSON objects but are
#: normalised to sorted ``((attribute, weight), ...)`` pairs internally so
#: frozen requests stay comparable regardless of key order.
WeightVector = Tuple[Tuple[str, float], ...]


def _optional_str_tuple(value: Optional[Sequence[str]]) -> Optional[Tuple[str, ...]]:
    if value is None:
        return None
    return tuple(str(item) for item in value)


def _normalise_weight_vectors(
    value: Optional[Sequence[Union[Mapping[str, float], Sequence[Tuple[str, float]]]]],
) -> Optional[Tuple[WeightVector, ...]]:
    """Canonicalise a sequence of weight maps to sorted pair tuples."""
    if value is None:
        return None
    vectors = []
    for entry in value:
        items = entry.items() if isinstance(entry, Mapping) else entry
        try:
            vectors.append(
                tuple(sorted((str(name), float(weight)) for name, weight in items))
            )
        except (TypeError, ValueError):
            raise ServiceError(
                "each weight vector must map attribute names to numeric weights, "
                f"got {entry!r}"
            ) from None
    return tuple(vectors)


def _normalise_group(
    value: Union[Mapping[str, object], Sequence[Tuple[str, object]]],
) -> Tuple[Tuple[str, object], ...]:
    """Canonicalise an end-user group to sorted (attribute, value) pairs."""
    items = value.items() if isinstance(value, Mapping) else value
    return tuple(sorted(((str(name), v) for name, v in items), key=lambda p: p[0]))


@dataclass(frozen=True)
class _FormulationMixin:
    """Shared formulation fields (kept as plain strings for the wire).

    String validation is *not* duplicated here: ``formulation()`` is the one
    resolution path — :meth:`repro.core.formulations.Formulation.from_names`
    — shared with the CLI and the experiments harness, so every layer raises
    the same error message for a bad objective/aggregation/distance name.
    """

    objective: str = "most_unfair"
    aggregation: str = "average"
    distance: str = "emd"
    bins: int = DEFAULT_BINS

    def formulation(self) -> Formulation:
        """Materialise the formulation (validates the string fields)."""
        return Formulation.from_names(
            objective=self.objective,
            aggregation=self.aggregation,
            distance=self.distance,
            bins=self.bins,
        )

    def _formulation_json(self) -> Dict[str, object]:
        return {
            "objective": self.objective,
            "aggregation": self.aggregation,
            "distance": self.distance,
            "bins": self.bins,
        }

    @classmethod
    def _formulation_kwargs(cls, payload: Mapping[str, object]) -> Dict[str, object]:
        return {
            "objective": str(payload.get("objective", "most_unfair")),
            "aggregation": str(payload.get("aggregation", "average")),
            "distance": str(payload.get("distance", "emd")),
            "bins": int(payload.get("bins", DEFAULT_BINS)),  # type: ignore[arg-type]
        }

    def _envelope(self) -> Dict[str, object]:
        return {"protocol": PROTOCOL_VERSION, "kind": self.kind}  # type: ignore[attr-defined]


@dataclass(frozen=True)
class QuantifyRequest(_FormulationMixin):
    """Run the QUANTIFY search for one (dataset, function) configuration."""

    kind: ClassVar[str] = "quantify"

    dataset: str = ""
    function: str = ""
    attributes: Optional[Tuple[str, ...]] = None
    max_depth: Optional[int] = None
    min_partition_size: int = 1
    use_ranks_only: bool = False

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ServiceError("a quantify request needs a dataset name")
        if not self.function:
            raise ServiceError("a quantify request needs a scoring-function name")
        object.__setattr__(self, "attributes", _optional_str_tuple(self.attributes))

    def to_json(self) -> Dict[str, object]:
        payload = self._envelope()
        payload.update({"dataset": self.dataset, "function": self.function})
        payload.update(self._formulation_json())
        payload.update(
            {
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "max_depth": self.max_depth,
                "min_partition_size": self.min_partition_size,
                "use_ranks_only": self.use_ranks_only,
            }
        )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "QuantifyRequest":
        return cls(
            dataset=str(payload["dataset"]),
            function=str(payload["function"]),
            attributes=_optional_str_tuple(payload.get("attributes")),  # type: ignore[arg-type]
            max_depth=(
                None if payload.get("max_depth") is None
                else int(payload["max_depth"])  # type: ignore[arg-type]
            ),
            min_partition_size=int(payload.get("min_partition_size", 1)),  # type: ignore[arg-type]
            use_ranks_only=bool(payload.get("use_ranks_only", False)),
            **cls._formulation_kwargs(payload),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class AuditRequest(_FormulationMixin):
    """Audit a whole marketplace (or one of its jobs): the AUDITOR scenario."""

    kind: ClassVar[str] = "audit"

    marketplace: str = ""
    job: Optional[str] = None
    attributes: Optional[Tuple[str, ...]] = None
    min_partition_size: int = 1

    def __post_init__(self) -> None:
        if not self.marketplace:
            raise ServiceError("an audit request needs a marketplace name")
        object.__setattr__(self, "attributes", _optional_str_tuple(self.attributes))

    def to_json(self) -> Dict[str, object]:
        payload = self._envelope()
        payload.update({"marketplace": self.marketplace, "job": self.job})
        payload.update(self._formulation_json())
        payload.update(
            {
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "min_partition_size": self.min_partition_size,
            }
        )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "AuditRequest":
        return cls(
            marketplace=str(payload["marketplace"]),
            job=None if payload.get("job") is None else str(payload["job"]),
            attributes=_optional_str_tuple(payload.get("attributes")),  # type: ignore[arg-type]
            min_partition_size=int(payload.get("min_partition_size", 1)),  # type: ignore[arg-type]
            **cls._formulation_kwargs(payload),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class CompareRequest(_FormulationMixin):
    """Quantify several scoring functions over one dataset and rank them."""

    kind: ClassVar[str] = "compare"

    dataset: str = ""
    functions: Tuple[str, ...] = ()
    attributes: Optional[Tuple[str, ...]] = None
    max_depth: Optional[int] = None
    min_partition_size: int = 1

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ServiceError("a compare request needs a dataset name")
        object.__setattr__(self, "functions", tuple(str(f) for f in self.functions))
        if len(self.functions) < 1:
            raise ServiceError("a compare request needs at least one scoring function")
        object.__setattr__(self, "attributes", _optional_str_tuple(self.attributes))

    def to_json(self) -> Dict[str, object]:
        payload = self._envelope()
        payload.update({"dataset": self.dataset, "functions": list(self.functions)})
        payload.update(self._formulation_json())
        payload.update(
            {
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "max_depth": self.max_depth,
                "min_partition_size": self.min_partition_size,
            }
        )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "CompareRequest":
        return cls(
            dataset=str(payload["dataset"]),
            functions=tuple(
                str(f) for f in payload.get("functions", ())  # type: ignore[union-attr]
            ),
            attributes=_optional_str_tuple(payload.get("attributes")),  # type: ignore[arg-type]
            max_depth=(
                None if payload.get("max_depth") is None
                else int(payload["max_depth"])  # type: ignore[arg-type]
            ),
            min_partition_size=int(payload.get("min_partition_size", 1)),  # type: ignore[arg-type]
            **cls._formulation_kwargs(payload),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class BreakdownRequest(_FormulationMixin):
    """Per-attribute unfairness: how unfair is each first-level split alone?

    The first step of QUANTIFY ranks protected attributes by how unfair the
    single-attribute partitioning of the whole population is; this request
    serves that ranking directly (the "which attribute drives the bias"
    question an auditor asks before running the full search).
    """

    kind: ClassVar[str] = "breakdown"

    dataset: str = ""
    function: str = ""
    attributes: Optional[Tuple[str, ...]] = None
    min_partition_size: int = 1
    use_ranks_only: bool = False

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ServiceError("a breakdown request needs a dataset name")
        if not self.function:
            raise ServiceError("a breakdown request needs a scoring-function name")
        object.__setattr__(self, "attributes", _optional_str_tuple(self.attributes))

    def to_json(self) -> Dict[str, object]:
        payload = self._envelope()
        payload.update({"dataset": self.dataset, "function": self.function})
        payload.update(self._formulation_json())
        payload.update(
            {
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "min_partition_size": self.min_partition_size,
                "use_ranks_only": self.use_ranks_only,
            }
        )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "BreakdownRequest":
        return cls(
            dataset=str(payload["dataset"]),
            function=str(payload["function"]),
            attributes=_optional_str_tuple(payload.get("attributes")),  # type: ignore[arg-type]
            min_partition_size=int(payload.get("min_partition_size", 1)),  # type: ignore[arg-type]
            use_ranks_only=bool(payload.get("use_ranks_only", False)),
            **cls._formulation_kwargs(payload),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SweepRequest(_FormulationMixin):
    """Weight sweep over a linear scoring function (the JOB-OWNER core loop).

    Either an explicit list of weight vectors (``weights``) or an automatic
    ``steps``-point sweep over the base function's attributes.  An explicit
    vector fully specifies a variant's weights (normalized server-side;
    attributes it omits get weight 0 — vectors are *not* merged into the
    base function's weights).  The service evaluates every point with one
    materialized scoring pass per vector, shared between the summary
    statistics, the QUANTIFY search and the unfairness breakdown via the
    score-store pool.
    """

    kind: ClassVar[str] = "sweep"

    dataset: str = ""
    function: str = ""
    steps: int = 5
    weights: Optional[Tuple[WeightVector, ...]] = None
    attributes: Optional[Tuple[str, ...]] = None
    max_depth: Optional[int] = None
    min_partition_size: int = 1

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ServiceError("a sweep request needs a dataset name")
        if not self.function:
            raise ServiceError("a sweep request needs a scoring-function name")
        object.__setattr__(self, "weights", _normalise_weight_vectors(self.weights))
        if self.weights is not None and not self.weights:
            raise ServiceError("a sweep request with explicit weights needs at least one vector")
        if self.weights is None and self.steps < 2:
            raise ServiceError(f"an automatic sweep needs at least 2 steps, got {self.steps}")
        object.__setattr__(self, "attributes", _optional_str_tuple(self.attributes))

    @property
    def weight_maps(self) -> Optional[Tuple[Dict[str, float], ...]]:
        """The explicit weight vectors as plain dicts (None for automatic)."""
        if self.weights is None:
            return None
        return tuple(dict(vector) for vector in self.weights)

    def to_json(self) -> Dict[str, object]:
        payload = self._envelope()
        payload.update({"dataset": self.dataset, "function": self.function})
        payload.update(self._formulation_json())
        payload.update(
            {
                "steps": self.steps,
                "weights": (
                    None if self.weights is None
                    else [dict(vector) for vector in self.weights]
                ),
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "max_depth": self.max_depth,
                "min_partition_size": self.min_partition_size,
            }
        )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "SweepRequest":
        return cls(
            dataset=str(payload["dataset"]),
            function=str(payload["function"]),
            steps=int(payload.get("steps", 5)),  # type: ignore[arg-type]
            weights=_normalise_weight_vectors(payload.get("weights")),  # type: ignore[arg-type]
            attributes=_optional_str_tuple(payload.get("attributes")),  # type: ignore[arg-type]
            max_depth=(
                None if payload.get("max_depth") is None
                else int(payload["max_depth"])  # type: ignore[arg-type]
            ),
            min_partition_size=int(payload.get("min_partition_size", 1)),  # type: ignore[arg-type]
            **cls._formulation_kwargs(payload),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class EndUserRequest(_FormulationMixin):
    """The END-USER scenario: one group, one job, several marketplaces."""

    kind: ClassVar[str] = "end_user"

    group: Tuple[Tuple[str, object], ...] = ()
    marketplaces: Tuple[str, ...] = ()
    job: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", _normalise_group(self.group))
        if not self.group:
            raise ServiceError(
                "an end-user request needs at least one protected-attribute value"
            )
        object.__setattr__(
            self, "marketplaces", tuple(str(m) for m in self.marketplaces)
        )
        if not self.marketplaces:
            raise ServiceError("an end-user request needs at least one marketplace name")
        if not self.job:
            raise ServiceError("an end-user request needs a job title")

    @property
    def group_map(self) -> Dict[str, object]:
        """The group as a plain ``{attribute: value}`` dict."""
        return dict(self.group)

    def to_json(self) -> Dict[str, object]:
        payload = self._envelope()
        payload.update(
            {
                "group": dict(self.group),
                "marketplaces": list(self.marketplaces),
                "job": self.job,
            }
        )
        payload.update(self._formulation_json())
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "EndUserRequest":
        return cls(
            group=_normalise_group(payload["group"]),  # type: ignore[arg-type]
            marketplaces=tuple(
                str(m) for m in payload.get("marketplaces", ())  # type: ignore[union-attr]
            ),
            job=str(payload.get("job", "")),
            **cls._formulation_kwargs(payload),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class JobOwnerRequest(_FormulationMixin):
    """The JOB-OWNER scenario: sweep one job's weights and recommend a variant."""

    kind: ClassVar[str] = "job_owner"

    marketplace: str = ""
    job: str = ""
    sweep_steps: int = 5
    min_partition_size: int = 1

    def __post_init__(self) -> None:
        if not self.marketplace:
            raise ServiceError("a job-owner request needs a marketplace name")
        if not self.job:
            raise ServiceError("a job-owner request needs a job title")
        if self.sweep_steps < 2:
            raise ServiceError(
                f"a job-owner sweep needs at least 2 steps, got {self.sweep_steps}"
            )

    def to_json(self) -> Dict[str, object]:
        payload = self._envelope()
        payload.update(
            {
                "marketplace": self.marketplace,
                "job": self.job,
                "sweep_steps": self.sweep_steps,
                "min_partition_size": self.min_partition_size,
            }
        )
        payload.update(self._formulation_json())
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "JobOwnerRequest":
        return cls(
            marketplace=str(payload["marketplace"]),
            job=str(payload["job"]),
            sweep_steps=int(payload.get("sweep_steps", 5)),  # type: ignore[arg-type]
            min_partition_size=int(payload.get("min_partition_size", 1)),  # type: ignore[arg-type]
            **cls._formulation_kwargs(payload),  # type: ignore[arg-type]
        )


ServiceRequest = Union[
    QuantifyRequest,
    AuditRequest,
    CompareRequest,
    BreakdownRequest,
    SweepRequest,
    EndUserRequest,
    JobOwnerRequest,
]

_REQUEST_KINDS: Dict[str, Type[ServiceRequest]] = {
    QuantifyRequest.kind: QuantifyRequest,
    AuditRequest.kind: AuditRequest,
    CompareRequest.kind: CompareRequest,
    BreakdownRequest.kind: BreakdownRequest,
    SweepRequest.kind: SweepRequest,
    EndUserRequest.kind: EndUserRequest,
    JobOwnerRequest.kind: JobOwnerRequest,
}


def request_from_json(payload: Mapping[str, object]) -> ServiceRequest:
    """Rebuild any request from its ``to_json`` form (dispatch on ``kind``).

    Payloads without a ``protocol`` field are treated as protocol v1 (the
    pre-envelope wire format, whose fields are a strict subset of v2), so
    existing batch files keep executing unchanged.  Protocol versions this
    build does not speak are rejected up front.
    """
    try:
        raw_protocol = payload.get("protocol", 1)
    except AttributeError:
        raise ServiceError("a request payload must be a JSON object") from None
    try:
        protocol = int(raw_protocol)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ServiceError(f"invalid protocol version {raw_protocol!r}") from None
    if protocol not in _SUPPORTED_PROTOCOLS:
        raise ServiceError(
            f"unsupported protocol version {protocol}; this server speaks "
            f"{', '.join(str(v) for v in _SUPPORTED_PROTOCOLS)}"
        )
    try:
        kind = payload["kind"]
    except (KeyError, TypeError):
        raise ServiceError(
            "a request payload needs a 'kind' field "
            f"(one of {', '.join(sorted(_REQUEST_KINDS))})"
        ) from None
    try:
        request_type = _REQUEST_KINDS[str(kind)]
    except KeyError:
        raise ServiceError(
            f"unknown request kind {kind!r}; known kinds: "
            f"{', '.join(sorted(_REQUEST_KINDS))}"
        ) from None
    try:
        return request_type.from_json(payload)
    except KeyError as missing:
        raise ServiceError(
            f"{kind} request payload is missing required field {missing.args[0]!r}"
        ) from None


@dataclass(frozen=True)
class ServiceResult:
    """Uniform response envelope for every request kind.

    ``payload`` is a plain-JSON tree (only dicts/lists/strings/numbers/bools/
    None), so a result can be shipped over any transport.  ``canonical()``
    serialises the semantic content — kind, key, payload and (when present)
    the error — with sorted keys, so two results are byte-comparable
    regardless of whether they were computed, cached, or ran in a batch.

    Protocol v2 additions: ``protocol`` stamps the envelope version, and a
    failed request carries a structured ``error`` (``{"code", "message"}``,
    with the code derived from the library's exception hierarchy, e.g.
    ``"service"`` for a :class:`~repro.errors.ServiceError`) instead of only
    raising server-side — a batch with one bad request still returns a
    result per request.

    ``store_stats`` is serving metadata: a snapshot of the service's
    score-store pool (materialized scoring passes, histogram hits/misses,
    store reuse) taken when the response was assembled, so clients can watch
    the compute-once layer work without a separate monitoring call.

    ``timings`` is per-request observability metadata (:mod:`repro.obs`):
    the request's trace id plus a phase breakdown in milliseconds
    (``key_ms``, ``compute_ms``, ``score_ms``, ``cache_ms``, ``queue_ms``
    for batched requests, ``route_ms`` when served through the shard
    router).  Like ``elapsed_s`` and ``store_stats`` it is *excluded* from
    ``canonical()`` — two envelopes with different timings still compare
    byte-identical on semantic content.
    """

    kind: str
    key: str
    payload: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    elapsed_s: float = 0.0
    store_stats: Optional[Dict[str, Any]] = None
    timings: Optional[Dict[str, Any]] = None
    protocol: int = PROTOCOL_VERSION
    error: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True when the request was served successfully."""
        return self.error is None

    def raise_for_error(self) -> "ServiceResult":
        """Raise :class:`~repro.errors.ServiceError` for an error result."""
        if self.error is not None:
            raise ServiceError(
                f"{self.kind} request failed "
                f"[{self.error.get('code', 'error')}]: {self.error.get('message', '')}"
            )
        return self

    def canonical(self) -> str:
        """Deterministic JSON of the semantic content (excludes metadata)."""
        content: Dict[str, object] = {
            "kind": self.kind, "key": self.key, "payload": self.payload,
        }
        if self.error is not None:
            content["error"] = self.error
        return json.dumps(content, sort_keys=True)

    def to_json(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "kind": self.kind,
            "key": self.key,
            "payload": self.payload,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
            "store_stats": self.store_stats,
            "timings": self.timings,
            "error": self.error,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "ServiceResult":
        store_stats = payload.get("store_stats")
        timings = payload.get("timings")
        error = payload.get("error")
        return cls(
            kind=str(payload["kind"]),
            key=str(payload["key"]),
            payload=dict(payload.get("payload", {})),  # type: ignore[arg-type]
            cached=bool(payload.get("cached", False)),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),  # type: ignore[arg-type]
            store_stats=(
                None if store_stats is None else dict(store_stats)  # type: ignore[arg-type]
            ),
            timings=None if timings is None else dict(timings),  # type: ignore[arg-type]
            protocol=int(payload.get("protocol", 1)),  # type: ignore[arg-type]
            error=None if error is None else dict(error),  # type: ignore[arg-type]
        )
