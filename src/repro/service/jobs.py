"""Typed request/response objects — the wire protocol of the service.

A request references datasets, scoring functions and marketplaces *by the
name they are registered under* in a :class:`~repro.service.service.FairnessService`,
so every request is a small, JSON-serialisable value object.  ``to_json`` /
``from_json`` round-trip losslessly (``from_json(to_json(r)) == r``), which
is what lets a batch of requests live in a file, a queue or an HTTP body.

Three request kinds cover the interactive workloads of the paper:

* :class:`QuantifyRequest` — one QUANTIFY search (Algorithm 1) plus its
  unfairness breakdown; the bread-and-butter panel computation.
* :class:`AuditRequest` — the AUDITOR scenario over a whole marketplace (or
  one of its jobs).
* :class:`CompareRequest` — one dataset, several scoring functions: the
  "compare panels" loop a job owner drives.

:class:`ServiceResult` is the uniform response envelope: the request kind,
the cache key it resolved to, a plain-JSON payload, and serving metadata
(cache hit flag, elapsed seconds).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Mapping, Optional, Sequence, Tuple, Type, Union

from repro.core.formulations import Formulation
from repro.errors import ServiceError
from repro.metrics.histogram import DEFAULT_BINS

__all__ = [
    "QuantifyRequest",
    "AuditRequest",
    "CompareRequest",
    "ServiceRequest",
    "ServiceResult",
    "request_from_json",
]


def _optional_str_tuple(value: Optional[Sequence[str]]) -> Optional[Tuple[str, ...]]:
    if value is None:
        return None
    return tuple(str(item) for item in value)


@dataclass(frozen=True)
class _FormulationMixin:
    """Shared formulation fields (kept as plain strings for the wire)."""

    objective: str = "most_unfair"
    aggregation: str = "average"
    distance: str = "emd"
    bins: int = DEFAULT_BINS

    def formulation(self) -> Formulation:
        """Materialise the formulation (validates the string fields)."""
        return Formulation.from_names(
            objective=self.objective,
            aggregation=self.aggregation,
            distance=self.distance,
            bins=self.bins,
        )

    def _formulation_json(self) -> Dict[str, object]:
        return {
            "objective": self.objective,
            "aggregation": self.aggregation,
            "distance": self.distance,
            "bins": self.bins,
        }


@dataclass(frozen=True)
class QuantifyRequest(_FormulationMixin):
    """Run the QUANTIFY search for one (dataset, function) configuration."""

    kind: ClassVar[str] = "quantify"

    dataset: str = ""
    function: str = ""
    attributes: Optional[Tuple[str, ...]] = None
    max_depth: Optional[int] = None
    min_partition_size: int = 1
    use_ranks_only: bool = False

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ServiceError("a quantify request needs a dataset name")
        if not self.function:
            raise ServiceError("a quantify request needs a scoring-function name")
        object.__setattr__(self, "attributes", _optional_str_tuple(self.attributes))

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": self.kind, "dataset": self.dataset,
                                      "function": self.function}
        payload.update(self._formulation_json())
        payload.update(
            {
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "max_depth": self.max_depth,
                "min_partition_size": self.min_partition_size,
                "use_ranks_only": self.use_ranks_only,
            }
        )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "QuantifyRequest":
        return cls(
            dataset=str(payload["dataset"]),
            function=str(payload["function"]),
            objective=str(payload.get("objective", "most_unfair")),
            aggregation=str(payload.get("aggregation", "average")),
            distance=str(payload.get("distance", "emd")),
            bins=int(payload.get("bins", DEFAULT_BINS)),  # type: ignore[arg-type]
            attributes=_optional_str_tuple(payload.get("attributes")),  # type: ignore[arg-type]
            max_depth=(
                None if payload.get("max_depth") is None
                else int(payload["max_depth"])  # type: ignore[arg-type]
            ),
            min_partition_size=int(payload.get("min_partition_size", 1)),  # type: ignore[arg-type]
            use_ranks_only=bool(payload.get("use_ranks_only", False)),
        )


@dataclass(frozen=True)
class AuditRequest(_FormulationMixin):
    """Audit a whole marketplace (or one of its jobs): the AUDITOR scenario."""

    kind: ClassVar[str] = "audit"

    marketplace: str = ""
    job: Optional[str] = None
    attributes: Optional[Tuple[str, ...]] = None
    min_partition_size: int = 1

    def __post_init__(self) -> None:
        if not self.marketplace:
            raise ServiceError("an audit request needs a marketplace name")
        object.__setattr__(self, "attributes", _optional_str_tuple(self.attributes))

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": self.kind, "marketplace": self.marketplace,
                                      "job": self.job}
        payload.update(self._formulation_json())
        payload.update(
            {
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "min_partition_size": self.min_partition_size,
            }
        )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "AuditRequest":
        return cls(
            marketplace=str(payload["marketplace"]),
            job=None if payload.get("job") is None else str(payload["job"]),
            objective=str(payload.get("objective", "most_unfair")),
            aggregation=str(payload.get("aggregation", "average")),
            distance=str(payload.get("distance", "emd")),
            bins=int(payload.get("bins", DEFAULT_BINS)),  # type: ignore[arg-type]
            attributes=_optional_str_tuple(payload.get("attributes")),  # type: ignore[arg-type]
            min_partition_size=int(payload.get("min_partition_size", 1)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class CompareRequest(_FormulationMixin):
    """Quantify several scoring functions over one dataset and rank them."""

    kind: ClassVar[str] = "compare"

    dataset: str = ""
    functions: Tuple[str, ...] = ()
    attributes: Optional[Tuple[str, ...]] = None
    max_depth: Optional[int] = None
    min_partition_size: int = 1

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ServiceError("a compare request needs a dataset name")
        object.__setattr__(self, "functions", tuple(str(f) for f in self.functions))
        if len(self.functions) < 1:
            raise ServiceError("a compare request needs at least one scoring function")
        object.__setattr__(self, "attributes", _optional_str_tuple(self.attributes))

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": self.kind, "dataset": self.dataset,
                                      "functions": list(self.functions)}
        payload.update(self._formulation_json())
        payload.update(
            {
                "attributes": list(self.attributes) if self.attributes is not None else None,
                "max_depth": self.max_depth,
                "min_partition_size": self.min_partition_size,
            }
        )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "CompareRequest":
        return cls(
            dataset=str(payload["dataset"]),
            functions=tuple(
                str(f) for f in payload.get("functions", ())  # type: ignore[union-attr]
            ),
            objective=str(payload.get("objective", "most_unfair")),
            aggregation=str(payload.get("aggregation", "average")),
            distance=str(payload.get("distance", "emd")),
            bins=int(payload.get("bins", DEFAULT_BINS)),  # type: ignore[arg-type]
            attributes=_optional_str_tuple(payload.get("attributes")),  # type: ignore[arg-type]
            max_depth=(
                None if payload.get("max_depth") is None
                else int(payload["max_depth"])  # type: ignore[arg-type]
            ),
            min_partition_size=int(payload.get("min_partition_size", 1)),  # type: ignore[arg-type]
        )


ServiceRequest = Union[QuantifyRequest, AuditRequest, CompareRequest]

_REQUEST_KINDS: Dict[str, Type[ServiceRequest]] = {
    QuantifyRequest.kind: QuantifyRequest,
    AuditRequest.kind: AuditRequest,
    CompareRequest.kind: CompareRequest,
}


def request_from_json(payload: Mapping[str, object]) -> ServiceRequest:
    """Rebuild any request from its ``to_json`` form (dispatch on ``kind``)."""
    try:
        kind = payload["kind"]
    except (KeyError, TypeError):
        raise ServiceError(
            "a request payload needs a 'kind' field "
            f"(one of {', '.join(sorted(_REQUEST_KINDS))})"
        ) from None
    try:
        request_type = _REQUEST_KINDS[str(kind)]
    except KeyError:
        raise ServiceError(
            f"unknown request kind {kind!r}; known kinds: "
            f"{', '.join(sorted(_REQUEST_KINDS))}"
        ) from None
    try:
        return request_type.from_json(payload)
    except KeyError as missing:
        raise ServiceError(
            f"{kind} request payload is missing required field {missing.args[0]!r}"
        ) from None


@dataclass(frozen=True)
class ServiceResult:
    """Uniform response envelope for every request kind.

    ``payload`` is a plain-JSON tree (only dicts/lists/strings/numbers/bools/
    None), so a result can be shipped over any transport.  ``canonical()``
    serialises the semantic content — kind, key and payload, but *not* the
    serving metadata — with sorted keys, so two results are byte-comparable
    regardless of whether they were computed, cached, or ran in a batch.

    ``store_stats`` is serving metadata too: a snapshot of the service's
    score-store pool (materialized scoring passes, histogram hits/misses,
    store reuse) taken when the response was assembled, so clients can watch
    the compute-once layer work without a separate monitoring call.
    """

    kind: str
    key: str
    payload: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    elapsed_s: float = 0.0
    store_stats: Optional[Dict[str, Any]] = None

    def canonical(self) -> str:
        """Deterministic JSON of the semantic content (excludes metadata)."""
        return json.dumps(
            {"kind": self.kind, "key": self.key, "payload": self.payload},
            sort_keys=True,
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "key": self.key,
            "payload": self.payload,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
            "store_stats": self.store_stats,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "ServiceResult":
        store_stats = payload.get("store_stats")
        return cls(
            kind=str(payload["kind"]),
            key=str(payload["key"]),
            payload=dict(payload.get("payload", {})),  # type: ignore[arg-type]
            cached=bool(payload.get("cached", False)),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),  # type: ignore[arg-type]
            store_stats=(
                None if store_stats is None else dict(store_stats)  # type: ignore[arg-type]
            ),
        )
