"""Stable content fingerprints for service cache keys.

The service layer memoises results by *content*, not by object identity:
two semantically identical requests — same individuals, same weights, same
formulation — must map to the same cache key even when the objects carrying
them were built independently (e.g. a fresh ``RankDerivedScorer`` per panel,
or a re-filtered copy of a registered dataset).

Three fingerprint sources compose into a key:

* datasets hash their schema plus every (uid, values) row, memoised per
  object so a large population is only walked once per process;
* scoring functions expose a ``fingerprint()`` protocol
  (:meth:`repro.scoring.base.ScoringFunction.fingerprint`); functions without
  a structured representation fall back to a pickle hash, and unpicklable
  functions degrade to an identity token (caching still works while the same
  object is reused, and never aliases two different functions);
* formulations and plain request parameters hash through a canonical
  recursive encoding (:func:`fingerprint_value`).
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from enum import Enum
from typing import Optional
from weakref import WeakKeyDictionary

from repro.core.formulations import Formulation
from repro.data.dataset import Dataset
from repro.scoring.base import ScoringFunction

__all__ = [
    "combine_fingerprints",
    "fingerprint_value",
    "fingerprint_dataset",
    "fingerprint_function",
    "fingerprint_formulation",
    "fingerprint_marketplace",
]


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _encode(value: object) -> bytes:
    """Canonical byte encoding of a JSON-ish value tree.

    Every branch is tagged by type so e.g. the string ``"1"`` and the int
    ``1`` never collide, floats use ``float.hex()`` for exactness, and dicts
    are encoded in sorted-key order.
    """
    if value is None:
        return b"n;"
    if isinstance(value, bool):
        return b"b1;" if value else b"b0;"
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii") + b";"
    if isinstance(value, float):
        return b"f" + value.hex().encode("ascii") + b";"
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        return b"s" + str(len(encoded)).encode("ascii") + b":" + encoded + b";"
    if isinstance(value, bytes):
        return b"y" + str(len(value)).encode("ascii") + b":" + value + b";"
    if isinstance(value, Enum):
        return b"e" + _encode(value.value)
    if isinstance(value, (list, tuple)):
        return b"l" + b"".join(_encode(item) for item in value) + b";"
    if isinstance(value, (set, frozenset)):
        return b"t" + b"".join(sorted(_encode(item) for item in value)) + b";"
    if isinstance(value, dict):
        parts = [
            _encode(key) + _encode(value[key])
            for key in sorted(value, key=lambda k: (str(type(k)), str(k)))
        ]
        return b"d" + b"".join(parts) + b";"
    # Last resort for exotic leaf values (e.g. numpy scalars): repr is stable
    # within a process and across processes for the value types we store.
    return b"r" + repr(value).encode("utf-8") + b";"


def fingerprint_value(value: object) -> str:
    """Stable hash of a plain parameter tree (strings, numbers, lists, dicts)."""
    return _digest(b"value\x00" + _encode(value))


# -- datasets -----------------------------------------------------------------

_dataset_cache: "WeakKeyDictionary[Dataset, str]" = WeakKeyDictionary()
_dataset_cache_lock = threading.Lock()


def _hash_dataset(dataset: Dataset) -> str:
    digest = hashlib.sha256()
    digest.update(b"dataset\x00")
    for attr in dataset.schema:
        digest.update(
            _encode((attr.name, attr.kind.value, attr.atype.value, attr.domain))
        )
    # iter_rows yields (uid, values-in-schema-order) straight from the column
    # arrays for a column-backed dataset — the same bytes as walking
    # Individual rows, without ever materialising them (a 10M-row population
    # is hashed one decode chunk at a time).
    for uid, values in dataset.iter_rows():
        digest.update(_encode(uid))
        digest.update(_encode(values))
    return digest.hexdigest()


def fingerprint_dataset(dataset: Dataset) -> str:
    """Content hash of a dataset (schema + rows), memoised per object.

    The dataset's display ``name`` is deliberately excluded: renaming a
    population does not change any fairness result, so it should not defeat
    the cache.
    """
    with _dataset_cache_lock:
        cached = _dataset_cache.get(dataset)
    if cached is not None:
        return cached
    value = _hash_dataset(dataset)
    with _dataset_cache_lock:
        _dataset_cache[dataset] = value
    return value


# -- scoring functions --------------------------------------------------------

def fingerprint_function(function: ScoringFunction) -> str:
    """Content hash of a scoring function.

    Prefers the function's own :meth:`~repro.scoring.base.ScoringFunction.fingerprint`
    protocol; falls back to hashing its pickle serialisation, and finally to
    a per-object identity token for unpicklable functions (conservative: the
    same object keeps hitting the cache, distinct objects never alias).
    """
    try:
        return str(function.fingerprint())
    # No structured fingerprint: fall through to the pickle hash below.
    # fairlint: disable=FL007 -- documented fallback chain
    except NotImplementedError:
        pass
    try:
        blob = pickle.dumps(function, protocol=4)
    except Exception:
        return _digest(
            b"function-identity\x00"
            + f"{type(function).__module__}.{type(function).__qualname__}"
              f":{id(function)}".encode("utf-8")
        )
    return _digest(b"function-pickle\x00" + blob)


# -- formulations -------------------------------------------------------------

def fingerprint_formulation(formulation: Formulation) -> str:
    """Content hash of a formulation (objective, aggregation, distance, binning)."""
    binning = formulation.effective_binning
    return _digest(
        b"formulation\x00"
        + _encode(
            (
                formulation.objective.value,
                formulation.aggregation.value,
                formulation.distance.name,
                float(binning.low),
                float(binning.high),
                int(binning.bins),
            )
        )
    )


# -- marketplaces -------------------------------------------------------------

def fingerprint_marketplace(marketplace) -> str:
    """Content hash of a marketplace: its workers plus every job's identity.

    A job contributes its title, its scoring function's content fingerprint
    and its candidate filter, so two crawls that rebuilt identical platforms
    share cache entries while any re-weighted job changes the hash.
    """
    parts = [fingerprint_dataset(marketplace.workers)]
    for job in marketplace:
        parts.append(
            combine_fingerprints(
                "job",
                fingerprint_value(job.title),
                fingerprint_function(job.function),
                fingerprint_value(job.candidate_filter.describe()),
            )
        )
    return combine_fingerprints("marketplace", *parts)


def combine_fingerprints(*parts: Optional[str]) -> str:
    """Fold component fingerprints (and literal tags) into one cache key."""
    digest = hashlib.sha256()
    digest.update(b"combined\x00")
    for part in parts:
        if part is None:
            digest.update(b"N;")
        else:
            encoded = part.encode("utf-8")
            digest.update(b"s" + str(len(encoded)).encode("ascii") + b":" + encoded + b";")
    return digest.hexdigest()
