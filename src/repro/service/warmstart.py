"""Warm-start bundles: persist a service's hot state across restarts.

A graceful shutdown snapshots the service's *derived* state — the
materialized :class:`~repro.core.scorestore.ScoreStore` pool and the
JSON-payload result cache — into a directory of raw ``.bin`` buffers plus
JSON manifests.  A later boot pointed at the same directory reloads that
state so the first requests of a restarted fleet are served hot instead of
paying the cold scoring pass again.

Safety discipline (the same one :mod:`repro.snapshot` applies to catalogs):
every loaded component is verified against the *live* catalog by content
fingerprint, and every buffer by exact element count.  Anything that drifted,
truncated, or simply belongs to another deployment is skipped — counted on
``fairank_warmstart_skips_total`` with a stable ``reason`` label and logged
as a structured event — and the service falls back to cold compute for that
component.  A warm start can be slower than hoped; it can never be wrong.

Metric families (documented in ``docs/OPERATIONS.md``):

* ``fairank_warmstart_loads_total`` — components restored, by ``component``
  (``store`` or ``result``).
* ``fairank_warmstart_skips_total`` — components rejected, by ``reason``
  (``manifest``, ``fingerprint``, ``truncated``, ``function``,
  ``catalog_drift``, ``error``).
* ``fairank_warmstart_bytes_total`` — bytes of bundle data restored.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.catalog import ResourceKind
from repro.core.scorestore import ScoreStore
from repro.errors import CatalogError, WarmStartError
from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.service.fingerprint import (
    combine_fingerprints,
    fingerprint_function,
)
from repro.snapshot import function_from_portable_json, function_to_portable_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.data.dataset import Dataset
    from repro.service.service import FairnessService

__all__ = ["WARM_FORMAT", "WARM_VERSION", "save_warm_state", "load_warm_state"]

#: Identifies a warm-start bundle directory (arbitrary JSON is rejected loudly).
WARM_FORMAT = "fairank-warmstart"

#: The bundle schema version this build writes (and the only one it reads).
WARM_VERSION = 1


def _metrics():
    registry = get_registry()
    return (
        registry.counter(
            "fairank_warmstart_loads_total",
            "Warm-start components restored, by component (store/result).",
        ),
        registry.counter(
            "fairank_warmstart_skips_total",
            "Warm-start components rejected and served cold instead, by reason.",
        ),
        registry.counter(
            "fairank_warmstart_bytes_total",
            "Bytes of warm-start bundle data restored into memory.",
        ),
    )


def _skip(skips, reason: str, **fields: object) -> None:
    skips.inc(reason=reason)
    get_logger().event("warmstart_skip", reason=reason, **fields)


def _catalog_fingerprint(service: "FairnessService") -> str:
    """Content fingerprint over every registered resource, order-free.

    Cached results are only portable while the *whole* catalog content is
    unchanged — a result may reference any combination of resources, so the
    result cache is keyed on all of them at once.
    """
    return combine_fingerprints(
        "warm-catalog",
        *sorted(entry.fingerprint for entry in service.catalog.resources()),
    )


def _bundle_bytes(directory: Path) -> int:
    return sum(path.stat().st_size for path in directory.glob("*.bin"))


# -- saving -------------------------------------------------------------------


def save_warm_state(
    service: "FairnessService", directory: Union[str, Path]
) -> Dict[str, object]:
    """Persist the service's warm state under ``directory``; returns the manifest.

    Saved: every *materialized* score store whose function has a portable
    JSON form, and every result-cache entry holding a plain JSON payload.
    Cold stores, non-portable functions and kernel-level cache entries are
    silently left out — they are rebuilt on demand after a restart, exactly
    as they were built the first time.  The top-level ``manifest.json`` is
    written last, so an interrupted save is indistinguishable from no bundle.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stores_manifest: List[Dict[str, object]] = []
    for index, store in enumerate(service._store_pool.values()):
        if not isinstance(store, ScoreStore) or not store.materialized:
            continue
        try:
            function_json = function_to_portable_json(store.function)
        # Only functions with portable content can be verified at load time;
        # the rest are recomputed cold, never guessed.
        # fairlint: disable=FL007 -- documented skip of one store
        except CatalogError:
            continue
        store_dir = f"store_{index:02d}"
        store_manifest = store.save(directory / "stores" / store_dir)
        stores_manifest.append(
            {
                "directory": f"stores/{store_dir}",
                "dataset": store_manifest["dataset"],
                "rows": store_manifest["rows"],
                "dataset_fingerprint": store_manifest["dataset_fingerprint"],
                "function_fingerprint": store_manifest["function_fingerprint"],
                "function": function_json,
            }
        )
    results: List[Dict[str, object]] = []
    for key, value, cost in service.cache.items():
        if not isinstance(value, dict):
            continue
        entry = {"key": key, "cost": cost, "payload": value}
        try:
            json.dumps(entry)
        # Kernel-level memo entries (live objects) are rebuilt on demand.
        # fairlint: disable=FL007 -- documented skip of one cache entry
        except (TypeError, ValueError):
            continue
        results.append(entry)
    (directory / "results.json").write_text(
        json.dumps({"results": results}, indent=2) + "\n", encoding="utf-8"
    )
    manifest: Dict[str, object] = {
        "format": WARM_FORMAT,
        "version": WARM_VERSION,
        "catalog_fingerprint": _catalog_fingerprint(service),
        "stores": stores_manifest,
        "results": "results.json",
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    get_logger().event(
        "warmstart_save",
        directory=str(directory),
        stores=len(stores_manifest),
        results=len(results),
    )
    return manifest


# -- loading ------------------------------------------------------------------


def _load_store(
    service: "FairnessService", directory: Path, entry: Dict[str, object]
) -> Optional[str]:
    """Load one store bundle into the pool; returns its pool key (or None)."""
    loads, skips, bytes_total = _metrics()
    store_dir = directory / str(entry.get("directory", ""))
    try:
        function = function_from_portable_json(entry["function"])  # type: ignore[arg-type]
    except (CatalogError, KeyError, TypeError) as error:
        _skip(skips, "function", directory=str(store_dir), error=str(error))
        return None
    function_fingerprint = fingerprint_function(function)
    if function_fingerprint != entry.get("function_fingerprint"):
        _skip(
            skips,
            "fingerprint",
            directory=str(store_dir),
            detail="rebuilt function does not match its recorded fingerprint",
        )
        return None
    dataset_fingerprint = str(entry.get("dataset_fingerprint", ""))
    dataset: Optional["Dataset"] = None
    for resource in service.catalog.resources(ResourceKind.DATASET):
        if resource.fingerprint == dataset_fingerprint:
            dataset = resource.value  # type: ignore[assignment]
            break
    if dataset is None:
        _skip(
            skips,
            "fingerprint",
            directory=str(store_dir),
            detail="no live dataset matches the bundle's dataset fingerprint",
        )
        return None
    try:
        store = ScoreStore.load(store_dir, dataset, function, trust_uids=True)
    except WarmStartError as error:
        _skip(skips, error.reason, directory=str(store_dir), error=str(error))
        return None
    key = combine_fingerprints(
        "score-store", dataset_fingerprint, function_fingerprint
    )
    service._store_pool.put(key, store)
    loaded_bytes = _bundle_bytes(store_dir)
    loads.inc(component="store")
    bytes_total.inc(loaded_bytes)
    get_logger().event(
        "warmstart_load",
        component="store",
        dataset=dataset.name,
        function=function.name,
        rows=len(dataset),
        bytes=loaded_bytes,
    )
    return key


def _load_results(
    service: "FairnessService", directory: Path, manifest: Dict[str, object]
) -> int:
    """Reload cached result payloads; returns how many entries were restored."""
    loads, skips, bytes_total = _metrics()
    if manifest.get("catalog_fingerprint") != _catalog_fingerprint(service):
        # The catalog content changed since the bundle was saved; cached
        # results may reference resources that no longer mean the same thing.
        _skip(skips, "catalog_drift", directory=str(directory))
        return 0
    results_file = directory / str(manifest.get("results", "results.json"))
    try:
        payload = json.loads(results_file.read_text(encoding="utf-8"))
        entries = payload["results"]
    except (OSError, ValueError, KeyError, TypeError) as error:
        _skip(skips, "manifest", directory=str(directory), error=str(error))
        return 0
    restored = 0
    for entry in entries:
        try:
            key = str(entry["key"])
            cost = float(entry["cost"])
            value = entry["payload"]
        except (KeyError, TypeError, ValueError):
            _skip(skips, "manifest", directory=str(directory))
            continue
        if not isinstance(value, dict):
            _skip(skips, "manifest", directory=str(directory))
            continue
        # Entries arrive least recently used first, so re-inserting in file
        # order reproduces the cache's recency order exactly.
        service.cache.put(key, value, cost=cost)
        loads.inc(component="result")
        restored += 1
    if restored:
        loaded_bytes = results_file.stat().st_size
        bytes_total.inc(loaded_bytes)
        get_logger().event(
            "warmstart_load",
            component="results",
            entries=restored,
            bytes=loaded_bytes,
        )
    return restored


def load_warm_state(
    service: "FairnessService", directory: Union[str, Path]
) -> Dict[str, int]:
    """Reload warm state saved by :func:`save_warm_state`; returns load counts.

    Every component is fingerprint-verified against the live catalog; drift,
    truncation or foreign content skips that component (counted and logged)
    and the service computes it cold on first use.  A directory without a
    ``manifest.json`` is a normal first boot — nothing is loaded or counted.
    """
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        return {"stores": 0, "results": 0}
    _, skips, _ = _metrics()
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        _skip(skips, "manifest", directory=str(directory), error=str(error))
        return {"stores": 0, "results": 0}
    if not isinstance(manifest, dict) or manifest.get("format") != WARM_FORMAT:
        _skip(skips, "manifest", directory=str(directory), detail="not a warm bundle")
        return {"stores": 0, "results": 0}
    if manifest.get("version") != WARM_VERSION:
        _skip(
            skips,
            "manifest",
            directory=str(directory),
            detail=f"unsupported bundle version {manifest.get('version')!r}",
        )
        return {"stores": 0, "results": 0}
    stores = 0
    entries = manifest.get("stores", ())
    if isinstance(entries, list):
        for entry in entries:
            if isinstance(entry, dict) and _load_store(service, directory, entry):
                stores += 1
    results = _load_results(service, directory, manifest)
    return {"stores": stores, "results": results}
