"""Parallel batch execution of service requests.

An auditor fanning one analysis out across jobs and platforms, or a panel
comparison re-running the search for many functions, is a *batch*: many
independent requests whose answers are wanted together.  The
:class:`BatchExecutor` runs such a batch over a thread pool:

* the quantify hot path spends its time in numpy's vectorised EMD kernels,
  which release the GIL, so threads give real overlap without the cost of
  process serialisation;
* identical requests (same content fingerprint) are *deduplicated*: one
  computation is submitted and every duplicate shares its result.  The
  cache's single-flight ``get_or_compute`` additionally dedupes requests
  that are distinct objects but race to the same key;
* results are returned in input order, so a batch's output is deterministic
  and byte-identical to serial execution regardless of thread scheduling.
"""

from __future__ import annotations

import contextvars
import os
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.errors import FaiRankError
from repro.service.jobs import ServiceRequest, ServiceResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.service.service import FairnessService

__all__ = ["BatchExecutor", "default_max_workers"]


def default_max_workers() -> int:
    """Default thread-pool width (mirrors the stdlib's I/O-friendly default)."""
    return min(32, (os.cpu_count() or 1) + 4)


class BatchExecutor:
    """Runs batches of requests against one service, concurrently.

    Parameters
    ----------
    service:
        The :class:`~repro.service.service.FairnessService` that resolves and
        executes requests.
    max_workers:
        Thread-pool width; defaults to :func:`default_max_workers`.
    """

    def __init__(self, service: "FairnessService", max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.service = service
        self.max_workers = max_workers or default_max_workers()

    def run(self, requests: Sequence[ServiceRequest]) -> List[ServiceResult]:
        """Execute a batch concurrently; results come back in input order.

        Requests with the same content fingerprint are submitted once and
        share the resulting :class:`~repro.service.jobs.ServiceResult`.  A
        request whose key cannot even be computed (it references resources
        the service does not know) yields a protocol-v2 error envelope in
        its slot instead of failing the whole batch.
        """
        batch = list(requests)
        if not batch:
            return []
        keys: List[Optional[str]] = []
        failed: Dict[int, ServiceResult] = {}
        for index, request in enumerate(batch):
            try:
                keys.append(self.service.request_key(request))
            except FaiRankError as error:
                keys.append(None)
                failed[index] = self.service.error_result(request, error)
        first_of: Dict[str, ServiceRequest] = {}
        for key, request in zip(keys, batch):
            if key is not None:
                first_of.setdefault(key, request)
        futures: Dict[str, "Future[ServiceResult]"] = {}
        if first_of:
            workers = min(self.max_workers, len(first_of))
            submitted = time.perf_counter()

            def run_one(
                context: contextvars.Context, key: str, request: ServiceRequest
            ) -> ServiceResult:
                # The caller's context (active trace id, see repro.obs) rides
                # into the pool thread; the submit-to-start delta becomes the
                # envelope's queue_ms.
                queue_s = time.perf_counter() - submitted
                return context.run(self.service.execute, request, key, queue_s=queue_s)

            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = {
                    key: pool.submit(run_one, contextvars.copy_context(), key, request)
                    for key, request in first_of.items()
                }
        return [
            failed[index] if key is None else futures[key].result()
            for index, key in enumerate(keys)
        ]

    def run_serial(self, requests: Sequence[ServiceRequest]) -> List[ServiceResult]:
        """Execute a batch one request at a time (reference ordering/results)."""
        return [self.service.execute(request) for request in requests]
