"""The unified resource registry: one catalogue for the whole system.

FaiRank is an interactive system: users register datasets and scoring
functions once, then iterate over configurations and panels.  Before this
module existed that catalogue lived twice — the session engine and the
fairness service each kept private name->object dicts — so a dataset
registered through one was invisible to the other and the two could drift.

:class:`Catalog` is the single registry every layer resolves resources
through.  It stores typed :class:`Resource` entries for the four resource
kinds of the paper's workflow (datasets, scoring functions, marketplaces,
fairness formulations) and adds what a servable deployment needs on top of a
plain dict:

* **content-fingerprint addressing** — every entry records the same content
  hash the service cache keys on, so a resource can be resolved by name *or*
  by (a unique prefix of) its fingerprint, and re-registering identical
  content under an existing name is an idempotent no-op;
* **replace/freeze semantics** — replacing a name with *different* content
  requires ``replace=True``, and a frozen entry can never be replaced, so a
  deployment can pin the resources live clients depend on;
* **JSON-able listings** — :meth:`Catalog.describe` renders the whole
  catalogue (name, kind, fingerprint, per-kind metadata such as row counts
  and scoring arity) for the ``fairank catalog`` CLI and remote clients;
* **snapshot persistence** — :meth:`Catalog.save` / :meth:`Catalog.load`
  write and rebuild the whole registry as one JSON file (see
  :mod:`repro.snapshot`), so ``fairank serve --catalog snapshot.json`` can
  boot a full deployment.

The catalog is thread-safe: the service's batch executor registers and
resolves from worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace as dataclass_replace
from enum import Enum
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import CatalogError

__all__ = ["Catalog", "Resource", "ResourceKind"]

#: Minimum hex characters a fingerprint-prefix reference must supply.  Short
#: prefixes would collide with (and be shadowed by) plain resource names.
_MIN_FINGERPRINT_PREFIX = 8


class ResourceKind(str, Enum):
    """The four kinds of resources a FaiRank deployment serves."""

    DATASET = "dataset"
    FUNCTION = "function"
    MARKETPLACE = "marketplace"
    FORMULATION = "formulation"

    @property
    def label(self) -> str:
        """Human-readable label used in error messages and listings."""
        if self is ResourceKind.FUNCTION:
            return "scoring function"
        return self.value


@dataclass(frozen=True)
class Resource:
    """One catalogue entry: a named, fingerprinted value of a known kind."""

    kind: ResourceKind
    name: str
    value: object = field(compare=False)
    fingerprint: str
    frozen: bool = False
    metadata: Mapping[str, object] = field(default_factory=dict, compare=False)

    def describe(self) -> Dict[str, object]:
        """JSON-able summary of this entry (no live objects)."""
        entry: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind.value,
            "fingerprint": self.fingerprint,
            "frozen": self.frozen,
        }
        entry.update(self.metadata)
        return entry


def _fingerprint_resource(kind: ResourceKind, value: object) -> str:
    """Content fingerprint of a resource, matching the service cache keys.

    Imported lazily: :mod:`repro.service.fingerprint` is a leaf module, but
    importing it at module scope would close an import cycle through the
    :mod:`repro.service` package (which imports the service facade, which
    imports this module).
    """
    from repro.service import fingerprint as fp

    if kind is ResourceKind.DATASET:
        return fp.fingerprint_dataset(value)  # type: ignore[arg-type]
    if kind is ResourceKind.FUNCTION:
        return fp.fingerprint_function(value)  # type: ignore[arg-type]
    if kind is ResourceKind.MARKETPLACE:
        return fp.fingerprint_marketplace(value)  # type: ignore[arg-type]
    if kind is ResourceKind.FORMULATION:
        return fp.fingerprint_formulation(value)  # type: ignore[arg-type]
    raise CatalogError(f"unhandled resource kind {kind!r}")  # pragma: no cover


def _infer_kind(value: object) -> ResourceKind:
    """Map a live object to its resource kind (explicit kind wins)."""
    from repro.core.formulations import Formulation
    from repro.data.dataset import Dataset
    from repro.marketplace.entities import Marketplace
    from repro.scoring.base import ScoringFunction

    if isinstance(value, Dataset):
        return ResourceKind.DATASET
    if isinstance(value, ScoringFunction):
        return ResourceKind.FUNCTION
    if isinstance(value, Marketplace):
        return ResourceKind.MARKETPLACE
    if isinstance(value, Formulation):
        return ResourceKind.FORMULATION
    raise CatalogError(
        f"cannot infer a resource kind for {type(value).__name__}; pass kind= explicitly"
    )


def _resource_metadata(kind: ResourceKind, value: object) -> Dict[str, object]:
    """Per-kind listing metadata (row counts, arity, ...), all JSON scalars."""
    if kind is ResourceKind.DATASET:
        schema = value.schema  # type: ignore[attr-defined]
        return {
            "rows": len(value),  # type: ignore[arg-type]
            "protected": len(schema.protected_names),
            "observed": len(schema.observed_names),
        }
    if kind is ResourceKind.FUNCTION:
        attributes = getattr(value, "attributes", None)
        return {
            "arity": len(attributes) if attributes is not None else None,
            "transparent": bool(getattr(value, "transparent", True)),
            "type": type(value).__name__,
        }
    if kind is ResourceKind.MARKETPLACE:
        return {
            "workers": len(value.workers),  # type: ignore[attr-defined]
            "jobs": len(value),  # type: ignore[arg-type]
        }
    if kind is ResourceKind.FORMULATION:
        return {"bins": value.effective_binning.bins}  # type: ignore[attr-defined]
    return {}  # pragma: no cover


def _looks_like_fingerprint(ref: str) -> bool:
    """Whether a reference could be (a prefix of) a hex content fingerprint."""
    if len(ref) < _MIN_FINGERPRINT_PREFIX:
        return False
    return all(ch in "0123456789abcdef" for ch in ref)


class Catalog:
    """The single, fingerprint-aware registry of a FaiRank deployment.

    Entries are addressed primarily by name; a reference that looks like a
    content fingerprint (>= 8 hex characters) and matches no name is resolved
    against entry fingerprints instead, so clients can pin exact content.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: Dict[ResourceKind, "Dict[str, Resource]"] = {
            kind: {} for kind in ResourceKind
        }

    # -- registration ----------------------------------------------------------

    def register(
        self,
        value: object,
        name: Optional[str] = None,
        kind: Optional[ResourceKind] = None,
        *,
        replace: bool = False,
        freeze: bool = False,
    ) -> Resource:
        """Add a resource; returns its catalogue entry.

        Semantics for an existing entry under the same name:

        * identical content (same fingerprint) — idempotent: the existing
          entry is returned (upgraded to frozen when ``freeze`` is set);
        * different content, entry frozen — always a :class:`CatalogError`;
        * different content, ``replace=False`` — :class:`CatalogError`
          telling the caller to pass ``replace=True``;
        * different content, ``replace=True`` — the entry is overwritten.
        """
        resolved_kind = kind if kind is not None else _infer_kind(value)
        key = name or getattr(value, "name", None)
        if not key:
            raise CatalogError(
                f"a {resolved_kind.label} needs a non-empty name to be registered"
            )
        key = str(key)
        fingerprint = _fingerprint_resource(resolved_kind, value)
        with self._lock:
            entries = self._entries[resolved_kind]
            existing = entries.get(key)
            if existing is not None:
                if existing.fingerprint == fingerprint:
                    if freeze and not existing.frozen:
                        existing = dataclass_replace(existing, frozen=True)
                        entries[key] = existing
                    return existing
                if existing.frozen:
                    raise CatalogError(
                        f"{resolved_kind.label} {key!r} is frozen and cannot be "
                        "replaced with different content"
                    )
                if not replace:
                    raise CatalogError(
                        f"a {resolved_kind.label} named {key!r} is already registered "
                        "with different content; pass replace=True to overwrite it"
                    )
            resource = Resource(
                kind=resolved_kind,
                name=key,
                value=value,
                fingerprint=fingerprint,
                frozen=freeze,
                metadata=_resource_metadata(resolved_kind, value),
            )
            entries[key] = resource
            return resource

    def freeze(self, kind: ResourceKind, name: str) -> Resource:
        """Pin an entry: from now on it can never be replaced."""
        with self._lock:
            resource = self.get(kind, name)
            if not resource.frozen:
                resource = dataclass_replace(resource, frozen=True)
                self._entries[kind][resource.name] = resource
            return resource

    def remove(self, kind: ResourceKind, name: str) -> Resource:
        """Drop an entry (frozen entries cannot be removed)."""
        with self._lock:
            resource = self.get(kind, name)
            if resource.frozen:
                raise CatalogError(
                    f"{kind.label} {resource.name!r} is frozen and cannot be removed"
                )
            return self._entries[kind].pop(resource.name)

    # -- resolution ------------------------------------------------------------

    def get(self, kind: ResourceKind, ref: str) -> Resource:
        """The entry for a name or (a unique prefix of) a content fingerprint."""
        with self._lock:
            entries = self._entries[kind]
            resource = entries.get(ref)
            if resource is not None:
                return resource
            if _looks_like_fingerprint(ref):
                matches = [
                    entry for entry in entries.values()
                    if entry.fingerprint.startswith(ref)
                ]
                if len(matches) == 1:
                    return matches[0]
                if len(matches) > 1:
                    names = ", ".join(sorted(entry.name for entry in matches))
                    raise CatalogError(
                        f"fingerprint prefix {ref!r} is ambiguous between "
                        f"{kind.label}s: {names}"
                    )
            raise CatalogError(
                f"unknown {kind.label} {ref!r}; registered: "
                f"{', '.join(sorted(entries)) or '(none)'}"
            )

    def resolve(self, kind: ResourceKind, ref: str) -> object:
        """The live object behind a name or fingerprint reference."""
        return self.get(kind, ref).value

    def __contains__(self, item: object) -> bool:
        if not isinstance(item, tuple) or len(item) != 2:
            return False
        kind, name = item
        with self._lock:
            return isinstance(kind, ResourceKind) and name in self._entries[kind]

    # -- listings --------------------------------------------------------------

    def names(self, kind: ResourceKind) -> Tuple[str, ...]:
        """Registered names of one kind, in registration order."""
        with self._lock:
            return tuple(self._entries[kind])

    def resources(self, kind: Optional[ResourceKind] = None) -> Tuple[Resource, ...]:
        """All entries (of one kind, or every kind in kind order)."""
        with self._lock:
            if kind is not None:
                return tuple(self._entries[kind].values())
            return tuple(
                resource
                for entries in self._entries.values()
                for resource in entries.values()
            )

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entries) for entries in self._entries.values())

    def __iter__(self) -> Iterator[Resource]:
        return iter(self.resources())

    def describe(self) -> Dict[str, object]:
        """JSON-able listing of the whole catalogue (for CLI and clients)."""
        with self._lock:
            listing: List[Dict[str, object]] = [
                resource.describe() for resource in self.resources()
            ]
            counts = {
                kind.value: len(entries) for kind, entries in self._entries.items()
            }
        return {"resources": listing, "counts": counts}

    # -- snapshot persistence --------------------------------------------------

    def save(
        self,
        path: Union[str, Path],
        *,
        dataset_sources: Optional[Mapping[str, Mapping[str, object]]] = None,
        columnar_datasets: Union[bool, Sequence[str], None] = None,
    ) -> Dict[str, object]:
        """Write this catalogue to a JSON snapshot file (see :mod:`repro.snapshot`).

        Datasets are embedded inline unless ``dataset_sources`` names a loader
        reference for them; scoring functions are saved by their weights,
        marketplaces by workers + jobs, formulations by name.  Returns the
        snapshot document that was written.

        ``columnar_datasets`` (a list of dataset names, or ``True`` for all)
        persists those datasets as raw column files under
        ``<path>.columns/<fingerprint>/`` instead of embedded JSON rows;
        :meth:`load` re-opens them as read-only memory maps.
        """
        from repro.snapshot import save_catalog

        with self._lock:
            return save_catalog(
                self,
                path,
                dataset_sources=dataset_sources,
                columnar_datasets=columnar_datasets,
            )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Catalog":
        """Rebuild a catalogue from a snapshot file written by :meth:`save`.

        Raises :class:`~repro.errors.CatalogError` for unreadable, truncated
        or unknown-version snapshots, and for entries whose reconstructed
        content no longer matches the fingerprint recorded at save time.
        """
        from repro.snapshot import load_catalog

        return load_catalog(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            parts = ", ".join(
                f"{len(entries)} {kind.value}(s)"
                for kind, entries in self._entries.items()
                if entries
            )
        return f"Catalog({parts or 'empty'})"
