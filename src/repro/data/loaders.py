"""Dataset loaders: the paper's Table 1 example, CSV files, and plain records.

``load_example_table1`` reproduces the running example of the paper verbatim
(10 individuals of a crowdsourcing platform, protected attributes Gender /
Country / Year of Birth / Language / Ethnicity / Experience, observed
attributes Language Test / Rating, and the scoring function
``f(w) = 0.6 * LanguageTest + 0.4 * Rating`` whose values match the ``f(w)``
column printed in the paper).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.data.columns import CodedColumn, ColumnStoreBuilder
from repro.data.dataset import Dataset
from repro.data.schema import (
    Attribute,
    AttributeKind,
    AttributeType,
    Schema,
    observed,
    protected,
)
from repro.errors import DataError

__all__ = [
    "table1_schema",
    "load_example_table1",
    "TABLE1_WEIGHTS",
    "load_csv",
    "load_records",
]

#: Weights of the example scoring function of Table 1.  With these weights the
#: ``f(w)`` column of the paper is reproduced exactly for every row (e.g. w1:
#: 0.3*0.50 + 0.7*0.20 = 0.29, w7: 0.3*0.95 + 0.7*0.98 = 0.971); the per-row
#: check lives in ``tests/test_data_loaders.py``.
TABLE1_WEIGHTS: Dict[str, float] = {"Language Test": 0.3, "Rating": 0.7}

_TABLE1_ROWS: List[Dict[str, object]] = [
    # uid, Gender, Country, YearOfBirth, Language, Ethnicity, Experience, LanguageTest, Rating, f(w)
    {"uid": "w1", "Gender": "Female", "Country": "India", "Year of Birth": 2004,
     "Language": "English", "Ethnicity": "Indian", "Experience": 0,
     "Language Test": 0.50, "Rating": 0.20, "f": 0.29},
    {"uid": "w2", "Gender": "Male", "Country": "America", "Year of Birth": 1976,
     "Language": "English", "Ethnicity": "White", "Experience": 14,
     "Language Test": 0.89, "Rating": 0.92, "f": 0.911},
    {"uid": "w3", "Gender": "Male", "Country": "India", "Year of Birth": 1976,
     "Language": "Indian", "Ethnicity": "White", "Experience": 6,
     "Language Test": 0.65, "Rating": 0.65, "f": 0.65},
    {"uid": "w4", "Gender": "Male", "Country": "Other", "Year of Birth": 1963,
     "Language": "Other", "Ethnicity": "Indian", "Experience": 18,
     "Language Test": 0.64, "Rating": 0.76, "f": 0.724},
    {"uid": "w5", "Gender": "Female", "Country": "India", "Year of Birth": 1963,
     "Language": "Indian", "Ethnicity": "Indian", "Experience": 21,
     "Language Test": 0.85, "Rating": 0.90, "f": 0.885},
    {"uid": "w6", "Gender": "Male", "Country": "America", "Year of Birth": 1995,
     "Language": "English", "Ethnicity": "African-American", "Experience": 2,
     "Language Test": 0.42, "Rating": 0.20, "f": 0.266},
    {"uid": "w7", "Gender": "Female", "Country": "America", "Year of Birth": 1982,
     "Language": "English", "Ethnicity": "African-American", "Experience": 16,
     "Language Test": 0.95, "Rating": 0.98, "f": 0.971},
    {"uid": "w8", "Gender": "Male", "Country": "Other", "Year of Birth": 2008,
     "Language": "English", "Ethnicity": "Other", "Experience": 0,
     "Language Test": 0.30, "Rating": 0.15, "f": 0.195},
    {"uid": "w9", "Gender": "Male", "Country": "Other", "Year of Birth": 1992,
     "Language": "English", "Ethnicity": "White", "Experience": 2,
     "Language Test": 0.32, "Rating": 0.25, "f": 0.271},
    {"uid": "w10", "Gender": "Female", "Country": "America", "Year of Birth": 2000,
     "Language": "English", "Ethnicity": "White", "Experience": 5,
     "Language Test": 0.76, "Rating": 0.56, "f": 0.62},
]

#: The paper's reported f(w) column, keyed by individual id (for tests and
#: the Table 1 benchmark).
TABLE1_PUBLISHED_SCORES: Dict[str, float] = {
    row["uid"]: row["f"] for row in _TABLE1_ROWS  # type: ignore[index, misc]
}


def table1_schema() -> Schema:
    """Schema of the paper's Table 1 example dataset."""
    return Schema((
        protected("Gender", domain=("Female", "Male")),
        protected("Country", domain=("America", "India", "Other")),
        protected("Year of Birth", atype=AttributeType.ORDINAL),
        protected("Language", domain=("English", "Indian", "Other")),
        protected("Ethnicity", domain=("White", "Indian", "African-American", "Other")),
        protected("Experience", atype=AttributeType.ORDINAL),
        observed("Language Test", domain=(0.0, 1.0)),
        observed("Rating", domain=(0.0, 1.0)),
    ))


def load_example_table1(name: str = "table1-example") -> Dataset:
    """Load the 10-individual example dataset of the paper's Table 1."""
    records = []
    for row in _TABLE1_ROWS:
        record = dict(row)
        record.pop("f")
        records.append(record)
    return Dataset.from_records(table1_schema(), records, name=name, uid_field="uid")


def load_records(
    records: Sequence[Mapping[str, object]],
    protected_names: Sequence[str],
    observed_names: Sequence[str],
    name: str = "records",
    uid_field: Optional[str] = None,
) -> Dataset:
    """Build a dataset from plain records, inferring the schema.

    Protected attributes are treated as categorical with a domain inferred
    from the data; observed attributes are numeric.
    """
    if not records:
        raise DataError("cannot infer a schema from zero records")
    attributes: List[Attribute] = []
    for pname in protected_names:
        domain = sorted({rec[pname] for rec in records}, key=lambda v: (str(type(v)), str(v)))
        attributes.append(
            Attribute(name=pname, kind=AttributeKind.PROTECTED,
                      atype=AttributeType.CATEGORICAL, domain=tuple(domain))
        )
    for oname in observed_names:
        attributes.append(
            Attribute(name=oname, kind=AttributeKind.OBSERVED, atype=AttributeType.NUMERIC)
        )
    schema = Schema(tuple(attributes))
    kept_fields = set(protected_names) | set(observed_names)
    if uid_field:
        kept_fields.add(uid_field)
    trimmed = [{k: v for k, v in rec.items() if k in kept_fields} for rec in records]
    return Dataset.from_records(schema, trimmed, name=name, uid_field=uid_field)


def load_csv(
    path: Union[str, Path],
    protected_names: Sequence[str],
    observed_names: Sequence[str],
    name: Optional[str] = None,
    uid_field: Optional[str] = None,
    chunk_rows: int = 50_000,
) -> Dataset:
    """Stream a CSV file with a header row into a column-backed dataset.

    Observed attribute columns are parsed as floats; protected attributes are
    kept as strings (the common format of crawled marketplace data).

    The file is read in chunks of ``chunk_rows`` physical rows, each chunk
    appended to a :class:`~repro.data.columns.ColumnStoreBuilder` — protected
    values become integer codes against a running encode table, observed
    values become ``float64`` arrays — so the file never materialises as
    per-row dicts and a 10M-row table costs one chunk of Python values plus
    its compact column arrays.  The resulting dataset is byte-identical (same
    values, same schema, same content fingerprint) for every ``chunk_rows``,
    including a single chunk covering the whole file.

    A duplicate header column is a hard error (:class:`DataError` naming the
    column): with two same-named columns the mapping from name to value is
    ambiguous, and silently keeping one of them used to surface later as a
    confusing downstream failure.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"CSV file not found: {path}")
    if chunk_rows < 1:
        raise DataError(f"chunk_rows must be >= 1, got {chunk_rows}")
    protected_list = [str(p) for p in protected_names]
    observed_list = [str(o) for o in observed_names]
    builder = ColumnStoreBuilder(
        protected_list, observed_list, collect_uids=uid_field is not None
    )
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise DataError(f"CSV file {path} contains no data rows")
        duplicated = sorted({column for column in header if header.count(column) > 1})
        if duplicated:
            raise DataError(
                f"{path}: duplicate CSV header column "
                + ", ".join(repr(column) for column in duplicated)
                + "; every column name must be unique"
            )
        positions = {column: index for index, column in enumerate(header)}
        for pname in protected_list:
            if pname not in positions:
                raise DataError(f"{path}:2: missing protected column {pname!r}")
        for oname in observed_list:
            if oname not in positions:
                raise DataError(f"{path}:2: missing observed column {oname!r}")
        if uid_field is not None and uid_field not in positions:
            raise DataError(f"{path}: missing uid column {uid_field!r}")
        protected_positions = [(pname, positions[pname]) for pname in protected_list]
        observed_positions = [(oname, positions[oname]) for oname in observed_list]
        uid_position = None if uid_field is None else positions[uid_field]
        width = len(header)

        def fresh_chunk() -> Dict[str, List[object]]:
            return {column: [] for column in (*protected_list, *observed_list)}

        chunk = fresh_chunk()
        chunk_uids: List[str] = []
        in_chunk = 0
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue  # blank line (csv.DictReader skipped these too)
            if len(row) < width:
                raise DataError(
                    f"{path}:{line_no}: row has {len(row)} fields, expected {width}"
                )
            for pname, index in protected_positions:
                chunk[pname].append(row[index])
            for oname, index in observed_positions:
                raw = row[index]
                try:
                    chunk[oname].append(float(raw))
                except ValueError:
                    raise DataError(
                        f"{path}:{line_no}: observed column {oname!r} has non-numeric "
                        f"value {raw!r}"
                    ) from None
            if uid_position is not None:
                chunk_uids.append(row[uid_position])
            in_chunk += 1
            if in_chunk >= chunk_rows:
                builder.append_chunk(chunk, uids=chunk_uids if uid_field else None)
                chunk = fresh_chunk()
                chunk_uids = []
                in_chunk = 0
        if in_chunk:
            builder.append_chunk(chunk, uids=chunk_uids if uid_field else None)
    if not len(builder):
        raise DataError(f"CSV file {path} contains no data rows")
    store = builder.finish()
    attributes: List[Attribute] = []
    for pname in protected_list:
        column = store.column(pname)
        assert isinstance(column, CodedColumn)
        domain = sorted(column.values, key=lambda v: (str(type(v)), str(v)))
        attributes.append(
            Attribute(name=pname, kind=AttributeKind.PROTECTED,
                      atype=AttributeType.CATEGORICAL, domain=tuple(domain))
        )
    for oname in observed_list:
        attributes.append(
            Attribute(name=oname, kind=AttributeKind.OBSERVED, atype=AttributeType.NUMERIC)
        )
    return Dataset.from_store(
        Schema(tuple(attributes)), store, name=name or path.stem
    )
