"""Dataset loaders: the paper's Table 1 example, CSV files, and plain records.

``load_example_table1`` reproduces the running example of the paper verbatim
(10 individuals of a crowdsourcing platform, protected attributes Gender /
Country / Year of Birth / Language / Ethnicity / Experience, observed
attributes Language Test / Rating, and the scoring function
``f(w) = 0.6 * LanguageTest + 0.4 * Rating`` whose values match the ``f(w)``
column printed in the paper).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.data.dataset import Dataset
from repro.data.schema import (
    Attribute,
    AttributeKind,
    AttributeType,
    Schema,
    observed,
    protected,
)
from repro.errors import DataError

__all__ = [
    "table1_schema",
    "load_example_table1",
    "TABLE1_WEIGHTS",
    "load_csv",
    "load_records",
]

#: Weights of the example scoring function of Table 1.  With these weights the
#: ``f(w)`` column of the paper is reproduced exactly for every row (e.g. w1:
#: 0.3*0.50 + 0.7*0.20 = 0.29, w7: 0.3*0.95 + 0.7*0.98 = 0.971); the per-row
#: check lives in ``tests/test_data_loaders.py``.
TABLE1_WEIGHTS: Dict[str, float] = {"Language Test": 0.3, "Rating": 0.7}

_TABLE1_ROWS: List[Dict[str, object]] = [
    # uid, Gender, Country, YearOfBirth, Language, Ethnicity, Experience, LanguageTest, Rating, f(w)
    {"uid": "w1", "Gender": "Female", "Country": "India", "Year of Birth": 2004,
     "Language": "English", "Ethnicity": "Indian", "Experience": 0,
     "Language Test": 0.50, "Rating": 0.20, "f": 0.29},
    {"uid": "w2", "Gender": "Male", "Country": "America", "Year of Birth": 1976,
     "Language": "English", "Ethnicity": "White", "Experience": 14,
     "Language Test": 0.89, "Rating": 0.92, "f": 0.911},
    {"uid": "w3", "Gender": "Male", "Country": "India", "Year of Birth": 1976,
     "Language": "Indian", "Ethnicity": "White", "Experience": 6,
     "Language Test": 0.65, "Rating": 0.65, "f": 0.65},
    {"uid": "w4", "Gender": "Male", "Country": "Other", "Year of Birth": 1963,
     "Language": "Other", "Ethnicity": "Indian", "Experience": 18,
     "Language Test": 0.64, "Rating": 0.76, "f": 0.724},
    {"uid": "w5", "Gender": "Female", "Country": "India", "Year of Birth": 1963,
     "Language": "Indian", "Ethnicity": "Indian", "Experience": 21,
     "Language Test": 0.85, "Rating": 0.90, "f": 0.885},
    {"uid": "w6", "Gender": "Male", "Country": "America", "Year of Birth": 1995,
     "Language": "English", "Ethnicity": "African-American", "Experience": 2,
     "Language Test": 0.42, "Rating": 0.20, "f": 0.266},
    {"uid": "w7", "Gender": "Female", "Country": "America", "Year of Birth": 1982,
     "Language": "English", "Ethnicity": "African-American", "Experience": 16,
     "Language Test": 0.95, "Rating": 0.98, "f": 0.971},
    {"uid": "w8", "Gender": "Male", "Country": "Other", "Year of Birth": 2008,
     "Language": "English", "Ethnicity": "Other", "Experience": 0,
     "Language Test": 0.30, "Rating": 0.15, "f": 0.195},
    {"uid": "w9", "Gender": "Male", "Country": "Other", "Year of Birth": 1992,
     "Language": "English", "Ethnicity": "White", "Experience": 2,
     "Language Test": 0.32, "Rating": 0.25, "f": 0.271},
    {"uid": "w10", "Gender": "Female", "Country": "America", "Year of Birth": 2000,
     "Language": "English", "Ethnicity": "White", "Experience": 5,
     "Language Test": 0.76, "Rating": 0.56, "f": 0.62},
]

#: The paper's reported f(w) column, keyed by individual id (for tests and
#: the Table 1 benchmark).
TABLE1_PUBLISHED_SCORES: Dict[str, float] = {
    row["uid"]: row["f"] for row in _TABLE1_ROWS  # type: ignore[index, misc]
}


def table1_schema() -> Schema:
    """Schema of the paper's Table 1 example dataset."""
    return Schema((
        protected("Gender", domain=("Female", "Male")),
        protected("Country", domain=("America", "India", "Other")),
        protected("Year of Birth", atype=AttributeType.ORDINAL),
        protected("Language", domain=("English", "Indian", "Other")),
        protected("Ethnicity", domain=("White", "Indian", "African-American", "Other")),
        protected("Experience", atype=AttributeType.ORDINAL),
        observed("Language Test", domain=(0.0, 1.0)),
        observed("Rating", domain=(0.0, 1.0)),
    ))


def load_example_table1(name: str = "table1-example") -> Dataset:
    """Load the 10-individual example dataset of the paper's Table 1."""
    records = []
    for row in _TABLE1_ROWS:
        record = dict(row)
        record.pop("f")
        records.append(record)
    return Dataset.from_records(table1_schema(), records, name=name, uid_field="uid")


def load_records(
    records: Sequence[Mapping[str, object]],
    protected_names: Sequence[str],
    observed_names: Sequence[str],
    name: str = "records",
    uid_field: Optional[str] = None,
) -> Dataset:
    """Build a dataset from plain records, inferring the schema.

    Protected attributes are treated as categorical with a domain inferred
    from the data; observed attributes are numeric.
    """
    if not records:
        raise DataError("cannot infer a schema from zero records")
    attributes: List[Attribute] = []
    for pname in protected_names:
        domain = sorted({rec[pname] for rec in records}, key=lambda v: (str(type(v)), str(v)))
        attributes.append(
            Attribute(name=pname, kind=AttributeKind.PROTECTED,
                      atype=AttributeType.CATEGORICAL, domain=tuple(domain))
        )
    for oname in observed_names:
        attributes.append(
            Attribute(name=oname, kind=AttributeKind.OBSERVED, atype=AttributeType.NUMERIC)
        )
    schema = Schema(tuple(attributes))
    kept_fields = set(protected_names) | set(observed_names)
    if uid_field:
        kept_fields.add(uid_field)
    trimmed = [{k: v for k, v in rec.items() if k in kept_fields} for rec in records]
    return Dataset.from_records(schema, trimmed, name=name, uid_field=uid_field)


def load_csv(
    path: Union[str, Path],
    protected_names: Sequence[str],
    observed_names: Sequence[str],
    name: Optional[str] = None,
    uid_field: Optional[str] = None,
) -> Dataset:
    """Load a dataset from a CSV file with a header row.

    Observed attribute columns are parsed as floats; protected attributes are
    kept as strings (the common format of crawled marketplace data).
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"CSV file not found: {path}")
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        raw_rows = list(reader)
    if not raw_rows:
        raise DataError(f"CSV file {path} contains no data rows")
    records: List[Dict[str, object]] = []
    for line_no, raw in enumerate(raw_rows, start=2):
        record: Dict[str, object] = {}
        for pname in protected_names:
            if pname not in raw:
                raise DataError(f"{path}:{line_no}: missing protected column {pname!r}")
            record[pname] = raw[pname]
        for oname in observed_names:
            if oname not in raw:
                raise DataError(f"{path}:{line_no}: missing observed column {oname!r}")
            try:
                record[oname] = float(raw[oname])
            except ValueError:
                raise DataError(
                    f"{path}:{line_no}: observed column {oname!r} has non-numeric "
                    f"value {raw[oname]!r}"
                ) from None
        if uid_field is not None:
            record[uid_field] = raw.get(uid_field, "")
        records.append(record)
    return load_records(
        records,
        protected_names=protected_names,
        observed_names=observed_names,
        name=name or path.stem,
        uid_field=uid_field,
    )
