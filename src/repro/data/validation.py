"""Dataset validation and profiling utilities.

These helpers give early, readable errors for the common ways a user-supplied
marketplace dataset can be unusable for fairness analysis — no protected
attributes, constant protected columns (nothing to partition on), observed
columns outside [0, 1] when a scoring function expects normalised skills, or
too few individuals per protected value for histograms to be meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError

__all__ = ["ValidationIssue", "ValidationReport", "validate_dataset", "profile_dataset"]


@dataclass(frozen=True)
class ValidationIssue:
    """A single validation finding.

    ``severity`` is ``"error"`` for conditions that make fairness analysis
    impossible and ``"warning"`` for conditions that merely degrade it.
    """

    severity: str
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_dataset`."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when there are no blocking errors (warnings allowed)."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise :class:`DataError` summarising all blocking errors."""
        if self.errors:
            summary = "; ".join(issue.message for issue in self.errors)
            raise DataError(f"dataset failed validation: {summary}")

    def add(self, severity: str, code: str, message: str) -> None:
        self.issues.append(ValidationIssue(severity=severity, code=code, message=message))


def validate_dataset(
    dataset: Dataset,
    min_individuals: int = 2,
    min_group_size: int = 1,
    require_unit_interval_scores: bool = False,
) -> ValidationReport:
    """Check that a dataset is usable for fairness-of-ranking analysis.

    Parameters
    ----------
    dataset:
        The dataset to check.
    min_individuals:
        Minimum number of rows required (default 2 — one cannot compare
        score distributions of fewer individuals).
    min_group_size:
        Minimum number of individuals per protected value below which a
        warning is emitted (tiny groups yield degenerate histograms).
    require_unit_interval_scores:
        When True, observed columns outside [0, 1] are an error instead of a
        warning (the paper's scoring functions map to [0, 1]).
    """
    report = ValidationReport()

    if len(dataset) < min_individuals:
        report.add("error", "too-few-individuals",
                   f"dataset has {len(dataset)} individuals, need at least {min_individuals}")

    if not dataset.schema.protected_names:
        report.add("error", "no-protected-attributes",
                   "schema declares no protected attributes; nothing to partition on")
    if not dataset.schema.observed_names:
        report.add("error", "no-observed-attributes",
                   "schema declares no observed attributes; no scoring function can be defined")

    for name in dataset.schema.protected_names:
        if not len(dataset):
            break
        distinct = dataset.distinct_values(name)
        if len(distinct) <= 1:
            report.add("warning", "constant-protected-attribute",
                       f"protected attribute {name!r} has a single value; it cannot split anyone")
        counts = dataset.value_counts(name)
        small = {value: count for value, count in counts.items() if count < min_group_size}
        if small and len(distinct) > 1:
            report.add("warning", "small-protected-groups",
                       f"protected attribute {name!r} has groups below {min_group_size} "
                       f"individuals: {sorted(map(str, small))}")

    for name in dataset.schema.observed_names:
        if not len(dataset):
            break
        column = dataset.numeric_column(name)
        if np.isnan(column).any():
            report.add("error", "nan-scores",
                       f"observed attribute {name!r} contains NaN values")
            continue
        if column.min() < 0.0 or column.max() > 1.0:
            severity = "error" if require_unit_interval_scores else "warning"
            report.add(severity, "scores-outside-unit-interval",
                       f"observed attribute {name!r} has values in "
                       f"[{column.min():.3f}, {column.max():.3f}], outside [0, 1]")
        if np.allclose(column, column[0]):
            report.add("warning", "constant-observed-attribute",
                       f"observed attribute {name!r} is constant; it carries no ranking signal")

    return report


def profile_dataset(dataset: Dataset) -> Dict[str, object]:
    """Return a profiling summary used by examples and the session layer.

    Includes per-protected-attribute value counts and per-observed-attribute
    distribution statistics (min / mean / max / std).
    """
    protected_profile: Dict[str, Dict[str, int]] = {}
    for name in dataset.schema.protected_names:
        protected_profile[name] = {
            str(value): count for value, count in sorted(
                dataset.value_counts(name).items(), key=lambda item: str(item[0])
            )
        }
    observed_profile: Dict[str, Dict[str, float]] = {}
    for name in dataset.schema.observed_names:
        column = dataset.numeric_column(name) if len(dataset) else np.zeros(0)
        if column.size:
            observed_profile[name] = {
                "min": float(column.min()),
                "mean": float(column.mean()),
                "max": float(column.max()),
                "std": float(column.std()),
            }
        else:
            observed_profile[name] = {"min": 0.0, "mean": 0.0, "max": 0.0, "std": 0.0}
    return {
        "name": dataset.name,
        "size": len(dataset),
        "protected": protected_profile,
        "observed": observed_profile,
    }
