"""Attribute schema for individuals in a job marketplace.

FaiRank distinguishes two kinds of attributes (Definition 1 of the paper):

* **protected** attributes ``A = {a1, ..., an}`` — inherent properties such as
  gender, country, year of birth, language or ethnicity.  Partitionings are
  built exclusively from combinations of protected-attribute values.
* **observed** attributes ``B = {b1, ..., bm}`` — skills and performance
  signals such as a language-test score or a platform rating.  Scoring
  functions are linear combinations of observed attributes.

A :class:`Schema` is an immutable description of both attribute sets, plus
optional declared domains for categorical protected attributes (used by the
exhaustive enumerator and by the anonymisation hierarchies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownAttributeError

__all__ = [
    "AttributeKind",
    "AttributeType",
    "Attribute",
    "Schema",
]


class AttributeKind(str, Enum):
    """Whether an attribute is protected (demographic) or observed (skill)."""

    PROTECTED = "protected"
    OBSERVED = "observed"


class AttributeType(str, Enum):
    """Value type of an attribute.

    ``CATEGORICAL`` attributes take values from a finite unordered domain
    (gender, country, ethnicity).  ``ORDINAL`` attributes take values from a
    finite *ordered* domain (experience bands, age bands) — ordering matters
    for generalisation hierarchies.  ``NUMERIC`` attributes are real-valued
    (test scores, ratings) and are what scoring functions consume.
    """

    CATEGORICAL = "categorical"
    ORDINAL = "ordinal"
    NUMERIC = "numeric"


@dataclass(frozen=True)
class Attribute:
    """A single named attribute.

    Parameters
    ----------
    name:
        Unique attribute name within the schema (e.g. ``"Gender"``).
    kind:
        Protected or observed.
    atype:
        Categorical, ordinal or numeric.
    domain:
        Optional declared domain.  For categorical/ordinal attributes this is
        the tuple of admissible values (order meaningful for ordinal
        attributes).  For numeric attributes it may be ``None`` or a
        ``(low, high)`` pair used for validation and histogram ranges.
    description:
        Free-text documentation shown by the session layer.
    """

    name: str
    kind: AttributeKind
    atype: AttributeType = AttributeType.CATEGORICAL
    domain: Optional[Tuple] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("attribute name must be a non-empty string")
        if self.domain is not None:
            object.__setattr__(self, "domain", tuple(self.domain))
            if self.atype is AttributeType.NUMERIC:
                if len(self.domain) != 2:
                    raise SchemaError(
                        f"numeric attribute {self.name!r} domain must be (low, high), "
                        f"got {self.domain!r}"
                    )
                low, high = self.domain
                if not (float(low) <= float(high)):
                    raise SchemaError(
                        f"numeric attribute {self.name!r} has empty domain "
                        f"({low!r} > {high!r})"
                    )
            elif len(set(self.domain)) != len(self.domain):
                raise SchemaError(
                    f"attribute {self.name!r} domain contains duplicate values"
                )

    @property
    def is_protected(self) -> bool:
        """True if this attribute may be used to form partitions."""
        return self.kind is AttributeKind.PROTECTED

    @property
    def is_observed(self) -> bool:
        """True if this attribute may be used by a scoring function."""
        return self.kind is AttributeKind.OBSERVED

    @property
    def is_numeric(self) -> bool:
        return self.atype is AttributeType.NUMERIC

    def validate_value(self, value: object) -> bool:
        """Return True if ``value`` is admissible for this attribute.

        Values outside a declared categorical domain are rejected; numeric
        values outside a declared (low, high) range are rejected.  Attributes
        without a declared domain accept any value of a sensible type.
        """
        if value is None:
            return False
        if self.atype is AttributeType.NUMERIC:
            try:
                fval = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return False
            if self.domain is not None:
                low, high = self.domain
                return float(low) <= fval <= float(high)
            return True
        if self.domain is not None:
            return value in self.domain
        return True

    def with_domain(self, domain: Sequence) -> "Attribute":
        """Return a copy of this attribute with ``domain`` declared."""
        return Attribute(
            name=self.name,
            kind=self.kind,
            atype=self.atype,
            domain=tuple(domain),
            description=self.description,
        )


def protected(
    name: str,
    domain: Optional[Sequence] = None,
    atype: AttributeType = AttributeType.CATEGORICAL,
    description: str = "",
) -> Attribute:
    """Convenience constructor for a protected attribute."""
    return Attribute(
        name=name,
        kind=AttributeKind.PROTECTED,
        atype=atype,
        domain=tuple(domain) if domain is not None else None,
        description=description,
    )


def observed(
    name: str,
    domain: Optional[Sequence] = None,
    atype: AttributeType = AttributeType.NUMERIC,
    description: str = "",
) -> Attribute:
    """Convenience constructor for an observed (skill) attribute."""
    return Attribute(
        name=name,
        kind=AttributeKind.OBSERVED,
        atype=atype,
        domain=tuple(domain) if domain is not None else None,
        description=description,
    )


@dataclass(frozen=True)
class Schema:
    """An immutable collection of attributes with unique names.

    The schema is the single source of truth for which attributes are
    protected (usable for partitioning) and which are observed (usable for
    scoring).  It is deliberately independent of any particular storage so
    that datasets, anonymisers and marketplaces can share it.
    """

    attributes: Tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", tuple(self.attributes))
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {dupes}")

    # -- look-ups ---------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return any(a.name == name for a in self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    @property
    def names(self) -> Tuple[str, ...]:
        """All attribute names, in declaration order."""
        return tuple(a.name for a in self.attributes)

    @property
    def protected_names(self) -> Tuple[str, ...]:
        """Names of protected attributes, in declaration order."""
        return tuple(a.name for a in self.attributes if a.is_protected)

    @property
    def observed_names(self) -> Tuple[str, ...]:
        """Names of observed attributes, in declaration order."""
        return tuple(a.name for a in self.attributes if a.is_observed)

    @property
    def protected_attributes(self) -> Tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if a.is_protected)

    @property
    def observed_attributes(self) -> Tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if a.is_observed)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``.

        Raises
        ------
        UnknownAttributeError
            If no attribute with that name exists.
        """
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise UnknownAttributeError(name, self.names)

    def require_protected(self, name: str) -> Attribute:
        """Return the protected attribute ``name`` or raise :class:`SchemaError`."""
        attr = self.attribute(name)
        if not attr.is_protected:
            raise SchemaError(f"attribute {name!r} is not protected")
        return attr

    def require_observed(self, name: str) -> Attribute:
        """Return the observed attribute ``name`` or raise :class:`SchemaError`."""
        attr = self.attribute(name)
        if not attr.is_observed:
            raise SchemaError(f"attribute {name!r} is not observed")
        return attr

    # -- construction helpers --------------------------------------------

    @classmethod
    def from_spec(
        cls,
        protected_attrs: Mapping[str, Optional[Sequence]],
        observed_attrs: Iterable[str],
    ) -> "Schema":
        """Build a schema from a compact specification.

        ``protected_attrs`` maps a protected attribute name to its categorical
        domain (or ``None`` if the domain should be inferred from data later).
        ``observed_attrs`` is an iterable of numeric observed attribute names.
        """
        attrs = [
            protected(name, domain=dom) for name, dom in protected_attrs.items()
        ]
        attrs.extend(observed(name) for name in observed_attrs)
        return cls(tuple(attrs))

    def with_attribute(self, attribute: Attribute) -> "Schema":
        """Return a new schema with ``attribute`` appended."""
        return Schema(self.attributes + (attribute,))

    def without_attribute(self, name: str) -> "Schema":
        """Return a new schema with attribute ``name`` removed."""
        self.attribute(name)  # raise if missing
        return Schema(tuple(a for a in self.attributes if a.name != name))

    def replace_attribute(self, attribute: Attribute) -> "Schema":
        """Return a new schema with the same-named attribute replaced."""
        self.attribute(attribute.name)  # raise if missing
        return Schema(
            tuple(attribute if a.name == attribute.name else a for a in self.attributes)
        )

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema restricted to ``names`` (declaration order kept)."""
        wanted = set(names)
        missing = wanted - set(self.names)
        if missing:
            raise UnknownAttributeError(sorted(missing)[0], self.names)
        return Schema(tuple(a for a in self.attributes if a.name in wanted))
