"""Tabular store of individuals (workers) for FaiRank — row- or column-backed.

The :class:`Dataset` is the substrate every other subsystem consumes: the
scoring functions read observed attribute columns from it, the partitioning
algorithms group its rows by protected-attribute values, the anonymiser
rewrites its protected columns, and the marketplace generator produces it.

Two backings share one contract:

* **row-primary** datasets (the classic construction: ``Dataset(schema,
  individuals)``) hold a tuple of :class:`Individual` objects and behave
  exactly as they always have;
* **column-primary** datasets (:meth:`Dataset.from_store`) hold a
  :class:`~repro.data.columns.ColumnStore` of contiguous numpy arrays —
  integer-coded protected attributes, ``float64`` observed attributes,
  optionally memory-mapped from disk — and materialise :class:`Individual`
  rows *lazily*, only if something actually iterates them.  Column access
  (:meth:`column`, :meth:`numeric_column`, :meth:`observed_matrix`,
  :meth:`codes`, :meth:`value_counts`, :meth:`distinct_values`) is served
  straight from the arrays, so the scoring and partitioning hot paths never
  touch per-row dicts.

Both backings produce identical values, identical orderings and identical
content fingerprints, so every downstream result is byte-identical whichever
backing a population arrived on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.columns import CodedColumn, ColumnStore, ColumnStoreBuilder, NumericColumn
from repro.data.schema import Attribute, AttributeType, Schema
from repro.errors import DataError, EmptyDatasetError, UnknownAttributeError

__all__ = ["Individual", "Dataset", "order_values"]

#: Guards per-dataset lazy caches (integer codings, materialised rows) so
#: concurrent readers (the service batch executor) never duplicate work.
_codes_lock = threading.Lock()


def order_values(attr: Attribute, present: Iterable[object]) -> Tuple[object, ...]:
    """Canonical ordering of an attribute's distinct values.

    Uses the declared domain order when available; otherwise a stable sorted
    order (by string representation for mixed types).  This is the single
    ordering contract shared by :meth:`Dataset.distinct_values` and the score
    store's index-based splits, so both produce children in the same order.
    """
    present = set(present)
    if attr.domain is not None and attr.atype is not AttributeType.NUMERIC:
        return tuple(v for v in attr.domain if v in present)
    return tuple(sorted(present, key=lambda v: (str(type(v)), str(v))))


@dataclass(frozen=True)
class Individual:
    """A single individual (worker) with an identifier and attribute values.

    ``values`` maps attribute name to value.  Individuals are immutable; the
    dataset is the unit of mutation (by producing new datasets).  For a
    column-backed dataset these objects are a *materialised view*: they are
    built on first iteration from the decode tables and numeric arrays, and
    carry exactly the values the columns hold.
    """

    uid: str
    values: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))

    def __getitem__(self, name: str) -> object:
        try:
            return self.values[name]
        except KeyError:
            raise UnknownAttributeError(name, tuple(self.values)) from None

    def get(self, name: str, default: object = None) -> object:
        return self.values.get(name, default)

    def with_values(self, **updates: object) -> "Individual":
        """Return a copy of this individual with some attribute values replaced."""
        merged = dict(self.values)
        merged.update(updates)
        return Individual(uid=self.uid, values=merged)


class Dataset:
    """A set of individuals conforming to a :class:`Schema`.

    The dataset validates every row against the schema at construction time,
    and exposes column access, filtering, projection and group-by operations
    used throughout the library.

    Columnar contract: a dataset built with :meth:`from_store` keeps the
    population as contiguous per-attribute arrays (see
    :mod:`repro.data.columns`) and serves :meth:`column`,
    :meth:`numeric_column`, :meth:`observed_matrix`, :meth:`codes`,
    :meth:`value_counts` and :meth:`distinct_values` directly from them —
    no :class:`Individual` is ever created unless a consumer iterates rows,
    at which point they materialise once and are cached.  Row-primary
    datasets behave exactly as before; :meth:`codes` gives both backings the
    same first-seen integer coding of any attribute column.
    """

    #: Column backing; ``None`` for row-primary datasets.  A class attribute
    #: so subclasses that bypass ``__init__`` (the score store's lazy slices)
    #: still read a well-defined value.
    _store: Optional[ColumnStore] = None

    def __init__(
        self,
        schema: Schema,
        individuals: Iterable[Individual],
        name: str = "dataset",
        validate: bool = True,
    ) -> None:
        self.schema = schema
        self.name = name
        self.__dict__["_rows"] = tuple(individuals)
        if validate:
            self._validate()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        schema: Schema,
        records: Sequence[Mapping[str, object]],
        name: str = "dataset",
        uid_field: Optional[str] = None,
    ) -> "Dataset":
        """Build a dataset from a sequence of dict-like records.

        If ``uid_field`` is given, that key supplies each individual's id and
        is removed from the attribute values; otherwise ids ``w1, w2, ...``
        are assigned in order (matching the paper's Table 1 convention).
        """
        individuals: List[Individual] = []
        for index, record in enumerate(records, start=1):
            values = dict(record)
            if uid_field is not None:
                if uid_field not in values:
                    raise DataError(f"record {index} is missing uid field {uid_field!r}")
                uid = str(values.pop(uid_field))
            else:
                uid = f"w{index}"
            individuals.append(Individual(uid=uid, values=values))
        return cls(schema=schema, individuals=individuals, name=name)

    @classmethod
    def from_columns(
        cls,
        schema: Schema,
        columns: Mapping[str, Sequence[object]],
        name: str = "dataset",
        uids: Optional[Sequence[str]] = None,
    ) -> "Dataset":
        """Build a (row-primary) dataset from column vectors keyed by name."""
        if not columns:
            return cls(schema=schema, individuals=(), name=name)
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise DataError(f"columns have inconsistent lengths: {sorted(lengths)}")
        n = lengths.pop()
        if uids is None:
            uids = [f"w{i}" for i in range(1, n + 1)]
        elif len(uids) != n:
            raise DataError(f"got {len(uids)} uids for {n} rows")
        records = [
            {attr: columns[attr][i] for attr in columns} for i in range(n)
        ]
        individuals = [Individual(uid=str(uid), values=rec) for uid, rec in zip(uids, records)]
        return cls(schema=schema, individuals=individuals, name=name)

    @classmethod
    def from_store(
        cls,
        schema: Schema,
        store: ColumnStore,
        name: str = "dataset",
        validate: bool = True,
    ) -> "Dataset":
        """Build a column-primary dataset over a :class:`ColumnStore`.

        No :class:`Individual` objects are created — rows materialise lazily
        on first iteration.  Validation is vectorised: coded columns validate
        each *distinct* value once, numeric columns validate their declared
        range in one array comparison, and uid uniqueness is a set check.
        """
        dataset = cls.__new__(cls)
        dataset.schema = schema
        dataset.name = name
        dataset._store = store
        if validate:
            dataset._validate_store()
        return dataset

    def _validate(self) -> None:
        seen_uids = set()
        for individual in self._individuals:
            if individual.uid in seen_uids:
                raise DataError(f"duplicate individual id {individual.uid!r}")
            seen_uids.add(individual.uid)
            for attr in self.schema:
                if attr.name not in individual.values:
                    raise DataError(
                        f"individual {individual.uid!r} is missing attribute {attr.name!r}"
                    )
                value = individual.values[attr.name]
                if not attr.validate_value(value):
                    raise DataError(
                        f"individual {individual.uid!r} has invalid value {value!r} "
                        f"for attribute {attr.name!r}"
                    )

    def _validate_store(self) -> None:
        """Vectorised validation of a column-backed dataset.

        Checks the same contract as :meth:`_validate` — unique uids, every
        schema attribute present, every value admissible — without building a
        single row: O(distinct values) for coded columns, one vectorised
        range comparison for numeric columns.
        """
        store = self._store
        assert store is not None
        uids = store.explicit_uids
        if uids is not None and len(set(uids)) != len(uids):
            seen = set()
            for uid in uids:
                if uid in seen:
                    raise DataError(f"duplicate individual id {uid!r}")
                seen.add(uid)
        for attr in self.schema:
            try:
                column = store.column(attr.name)
            except DataError:
                raise DataError(
                    f"dataset {self.name!r} has no column for attribute {attr.name!r}"
                ) from None
            if isinstance(column, CodedColumn):
                for value in column.values:
                    if not attr.validate_value(value):
                        index = int(np.argmax(column.codes == column.values.index(value)))
                        uid = store.uid_range(index, index + 1)[0]
                        raise DataError(
                            f"individual {uid!r} has invalid value {value!r} "
                            f"for attribute {attr.name!r}"
                        )
            else:
                if attr.atype is not AttributeType.NUMERIC:
                    raise DataError(
                        f"attribute {attr.name!r} is {attr.atype.value} but is backed "
                        "by a numeric column"
                    )
                if attr.domain is not None and len(column):
                    low, high = float(attr.domain[0]), float(attr.domain[1])
                    values = column.values
                    with np.errstate(invalid="ignore"):
                        bad = ~((values >= low) & (values <= high))
                    if bad.any():
                        index = int(np.argmax(bad))
                        uid = store.uid_range(index, index + 1)[0]
                        raise DataError(
                            f"individual {uid!r} has invalid value "
                            f"{float(values[index])!r} for attribute {attr.name!r}"
                        )

    # -- backing -----------------------------------------------------------

    @property
    def store(self) -> Optional[ColumnStore]:
        """The column backing, or ``None`` for a row-primary dataset."""
        return self._store

    def to_store(self) -> ColumnStore:
        """Package this dataset's values as a :class:`ColumnStore`.

        Column-backed datasets return their existing backing.  Row-primary
        datasets are converted: a numeric attribute whose values are all
        plain floats becomes a contiguous ``float64`` array, every other
        attribute becomes an integer-coded column whose decode table keeps
        the *exact* row values (ints stay ints, bools stay bools) — so a
        dataset rebuilt from the store, e.g. after
        :meth:`ColumnStore.save`/:meth:`ColumnStore.load`, has the same
        content fingerprint as the original.
        """
        store = self._store
        if store is not None:
            return store
        names = self.schema.names
        columns = {name: self.column(name) for name in names}
        coded: List[str] = []
        numeric: List[str] = []
        for attr in self.schema:
            if attr.atype is AttributeType.NUMERIC and all(
                type(value) is float for value in columns[attr.name]
            ):
                numeric.append(attr.name)
            else:
                coded.append(attr.name)
        uids = self.uids
        sequential = all(
            uid == f"w{index + 1}" for index, uid in enumerate(uids)
        )
        builder = ColumnStoreBuilder(coded, numeric, collect_uids=not sequential)
        builder.append_chunk(columns, uids=None if sequential else uids)
        return builder.finish()

    @property
    def _individuals(self) -> Tuple[Individual, ...]:
        """The row tuple, materialising it from the column store on demand."""
        rows = self.__dict__.get("_rows")
        if rows is None:
            with _codes_lock:
                rows = self.__dict__.get("_rows")
                if rows is None:
                    rows = self._materialize_rows()
                    self.__dict__["_rows"] = rows
        return rows

    def _materialize_rows(self) -> Tuple[Individual, ...]:
        store = self._store
        assert store is not None
        names = self.schema.names
        decoded = {name: store.column(name).decode_range(0, store.n) for name in names}
        uids = store.uids()
        return tuple(
            Individual(
                uid=uids[index],
                values={name: decoded[name][index] for name in names},
            )
            for index in range(store.n)
        )

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        store = self._store
        if store is not None:
            return store.n
        return len(self._individuals)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self._individuals)

    def __getitem__(self, index: int) -> Individual:
        return self._individuals[index]

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(name={self.name!r}, n={len(self)}, "
            f"protected={list(self.schema.protected_names)}, "
            f"observed={list(self.schema.observed_names)})"
        )

    @property
    def individuals(self) -> Tuple[Individual, ...]:
        """All rows as :class:`Individual` objects (materialised if needed)."""
        return self._individuals

    @property
    def uids(self) -> Tuple[str, ...]:
        """All row ids, in row order (column-backed: no rows materialised)."""
        store = self._store
        if store is not None:
            return store.uids()
        return tuple(ind.uid for ind in self._individuals)

    def by_uid(self, uid: str) -> Individual:
        """Return the individual with the given id."""
        for individual in self._individuals:
            if individual.uid == uid:
                return individual
        raise DataError(f"no individual with id {uid!r} in dataset {self.name!r}")

    def iter_rows(self, chunk_rows: int = 65536) -> Iterator[Tuple[str, List[object]]]:
        """Yield ``(uid, [values in schema order])`` per row.

        For a column-backed dataset this decodes ``chunk_rows`` rows at a
        time and never materialises :class:`Individual` objects — it is the
        streaming row walk content fingerprinting uses, so registering a
        10M-row population holds one chunk of Python values at a time.
        """
        store = self._store
        names = self.schema.names
        if store is not None and self.__dict__.get("_rows") is None:
            yield from store.iter_rows(names, chunk_rows=chunk_rows)
            return
        for individual in self._individuals:
            values = individual.values
            yield individual.uid, [values[name] for name in names]

    # -- column access -----------------------------------------------------

    def column(self, name: str) -> Tuple[object, ...]:
        """Return the values of attribute ``name`` for all individuals, in order.

        Column-backed datasets decode straight from the arrays; row-primary
        datasets walk their rows.  Identical values either way.
        """
        self.schema.attribute(name)
        store = self._store
        if store is not None:
            return tuple(store.column(name).decode_range(0, store.n))
        return tuple(ind.values[name] for ind in self._individuals)

    def numeric_column(self, name: str) -> np.ndarray:
        """Return a fresh float array of an observed (numeric) attribute column.

        Column-backed datasets copy the contiguous ``float64`` array (no
        per-row ``float()`` calls); the copy keeps the classic contract that
        callers may mutate the result without corrupting the dataset.
        """
        attr = self.schema.attribute(name)
        if attr.atype is not AttributeType.NUMERIC:
            raise DataError(f"attribute {name!r} is not numeric")
        store = self._store
        if store is not None:
            column = store.column(name)
            if isinstance(column, NumericColumn):
                return np.array(column.values, dtype=float)
            return np.asarray(
                [float(v) for v in column.decode_range(0, store.n)], dtype=float
            )
        return np.asarray([float(ind.values[name]) for ind in self._individuals], dtype=float)

    def codes(self, name: str) -> Tuple[np.ndarray, Tuple[object, ...], Dict[object, int]]:
        """Integer coding of attribute ``name``: ``(codes, decode, encode)``.

        ``codes`` is a read-only ``int64`` array of per-row codes, ``decode``
        maps code -> value and ``encode`` value -> code, in first-seen row
        order.  This is the coding the score store's index-based splits
        consume; a column-backed dataset serves it straight from its coded
        arrays (zero per-row work), a row-primary dataset computes and caches
        it once per attribute.
        """
        cache: Dict[str, Tuple[np.ndarray, Tuple[object, ...], Dict[object, int]]]
        cache = self.__dict__.setdefault("_codes_cache", {})
        cached = cache.get(name)
        if cached is not None:
            return cached
        self.schema.attribute(name)
        store = self._store
        if store is not None:
            result = self._codes_from_store(store, name)
        else:
            rows = self._individuals
            encode: Dict[object, int] = {}
            codes = np.empty(len(rows), dtype=np.int64)
            encode_get = encode.get
            for position, individual in enumerate(rows):
                value = individual.values[name]
                code = encode_get(value)
                if code is None:
                    code = len(encode)
                    encode[value] = code
                codes[position] = code
            codes.setflags(write=False)
            result = (codes, tuple(encode), encode)
        with _codes_lock:
            return cache.setdefault(name, result)

    def _codes_from_store(
        self, store: ColumnStore, name: str
    ) -> Tuple[np.ndarray, Tuple[object, ...], Dict[object, int]]:
        column = store.column(name)
        if isinstance(column, CodedColumn):
            decode = column.values
            encode: Dict[object, int] = {}
            for code, value in enumerate(decode):
                encode.setdefault(value, code)
            if len(encode) == len(decode):
                return (column.codes, decode, encode)
            # The decode table distinguishes equal-under-`==` values (1 vs
            # 1.0); splits must not, to match the row-primary coding exactly.
            collapsed: Dict[object, int] = {}
            for value in decode:
                collapsed.setdefault(value, len(collapsed))
            remap = np.asarray([collapsed[value] for value in decode], dtype=np.int64)
            codes = remap[np.asarray(column.codes)]
            codes.setflags(write=False)
            return (codes, tuple(collapsed), collapsed)
        # Numeric backing: first-seen coding computed vectorised.
        values = np.asarray(column.values)
        uniques, first_pos, inverse = np.unique(
            values, return_index=True, return_inverse=True
        )
        order = np.argsort(first_pos, kind="stable")
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order), dtype=np.int64)
        codes = rank[inverse]
        codes.setflags(write=False)
        decode_list = [float(uniques[index]) for index in order]
        encode = {value: code for code, value in enumerate(decode_list)}
        return (codes, tuple(decode_list), encode)

    def value_counts(self, name: str) -> Dict[object, int]:
        """Return a value -> count mapping for attribute ``name``.

        Keys are emitted in first-seen row order (for a coded column, the
        decode-table order — identical by construction).
        """
        store = self._store
        if store is not None:
            column = store.column(name)
            if isinstance(column, CodedColumn):
                self.schema.attribute(name)
                counts = np.bincount(column.codes, minlength=len(column.values))
                return {
                    value: int(counts[code])
                    for code, value in enumerate(column.values)
                    if counts[code]
                }
        counts_dict: Dict[object, int] = {}
        for value in self.column(name):
            counts_dict[value] = counts_dict.get(value, 0) + 1
        return counts_dict

    def distinct_values(self, name: str) -> Tuple[object, ...]:
        """Distinct values of attribute ``name``.

        Uses the declared domain order when available; otherwise values are
        returned in a stable sorted order (by string representation for mixed
        types) so downstream algorithms are deterministic.  Column-backed
        datasets order the decode table instead of walking rows.
        """
        attr = self.schema.attribute(name)
        store = self._store
        if store is not None:
            column = store.column(name)
            if isinstance(column, CodedColumn):
                present_codes = set(np.unique(column.codes).tolist())
                present = {
                    value
                    for code, value in enumerate(column.values)
                    if code in present_codes
                }
                return order_values(attr, present)
        return order_values(attr, self.column(name))

    # -- relational-ish operations ------------------------------------------

    def filter(
        self, predicate: Callable[[Individual], bool], name: Optional[str] = None
    ) -> "Dataset":
        """Return a new dataset with only the individuals matching ``predicate``."""
        kept = tuple(ind for ind in self._individuals if predicate(ind))
        return Dataset(
            schema=self.schema,
            individuals=kept,
            name=name or f"{self.name}/filtered",
            validate=False,
        )

    def select_uids(self, uids: Iterable[str]) -> "Dataset":
        """Return a new dataset restricted to the given individual ids."""
        wanted = set(uids)
        missing = wanted - set(self.uids)
        if missing:
            raise DataError(f"unknown individual ids: {sorted(missing)}")
        kept = tuple(ind for ind in self._individuals if ind.uid in wanted)
        return Dataset(self.schema, kept, name=f"{self.name}/subset", validate=False)

    def project(self, names: Sequence[str]) -> "Dataset":
        """Return a dataset with only the attributes in ``names``."""
        sub_schema = self.schema.project(names)
        individuals = tuple(
            Individual(uid=ind.uid, values={n: ind.values[n] for n in sub_schema.names})
            for ind in self._individuals
        )
        return Dataset(sub_schema, individuals, name=f"{self.name}/projected", validate=False)

    def map_column(
        self,
        name: str,
        mapper: Callable[[object], object],
        as_categorical: bool = False,
    ) -> "Dataset":
        """Return a dataset where column ``name`` is rewritten by ``mapper``.

        The attribute's declared domain is dropped (set to ``None``) because
        the mapping may introduce values outside it — this is exactly what
        anonymisation/generalisation does.  Pass ``as_categorical=True`` when
        the mapper turns a numeric column into interval labels (strings).
        """
        attr = self.schema.attribute(name)
        new_type = AttributeType.CATEGORICAL if as_categorical else attr.atype
        new_attr = Attribute(
            name=attr.name,
            kind=attr.kind,
            atype=new_type,
            domain=None,
            description=attr.description,
        )
        new_schema = self.schema.replace_attribute(new_attr)
        individuals = tuple(
            ind.with_values(**{name: mapper(ind.values[name])}) for ind in self._individuals
        )
        return Dataset(new_schema, individuals, name=self.name, validate=False)

    def with_schema(self, schema: Schema) -> "Dataset":
        """Return this data re-validated under a (compatible) new schema."""
        return Dataset(schema, self._individuals, name=self.name)

    def group_by(self, names: Sequence[str]) -> Dict[Tuple[object, ...], "Dataset"]:
        """Group individuals by the combination of values of ``names``.

        Returns a mapping from the value tuple to the sub-dataset of
        individuals having those values, preserving input order inside each
        group.  Group keys are emitted in first-seen order.
        """
        for name in names:
            self.schema.attribute(name)
        groups: Dict[Tuple[object, ...], List[Individual]] = {}
        for individual in self._individuals:
            key = tuple(individual.values[name] for name in names)
            groups.setdefault(key, []).append(individual)
        return {
            key: Dataset(self.schema, tuple(members), name=f"{self.name}/{key}", validate=False)
            for key, members in groups.items()
        }

    def concat(self, other: "Dataset", name: Optional[str] = None) -> "Dataset":
        """Concatenate two datasets over the same schema."""
        if set(other.schema.names) != set(self.schema.names):
            raise DataError("cannot concatenate datasets with different schemas")
        return Dataset(
            self.schema,
            self._individuals + tuple(other),
            name=name or f"{self.name}+{other.name}",
        )

    def require_non_empty(self) -> "Dataset":
        """Return self, raising :class:`EmptyDatasetError` if there are no rows."""
        if not len(self):
            raise EmptyDatasetError(f"dataset {self.name!r} is empty")
        return self

    # -- export -------------------------------------------------------------

    def to_records(self, include_uid: bool = True) -> List[Dict[str, object]]:
        """Return the dataset as a list of plain dicts (for CSV/JSON export)."""
        records = []
        for individual in self._individuals:
            record: Dict[str, object] = {}
            if include_uid:
                record["uid"] = individual.uid
            record.update({name: individual.values[name] for name in self.schema.names})
            records.append(record)
        return records

    def observed_matrix(self, names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Return an (n, m) float matrix of observed attribute columns.

        ``names`` defaults to every observed attribute in schema order.  This
        is the matrix a linear scoring function multiplies by its weights;
        for a column-backed dataset it is stacked straight from the
        contiguous ``float64`` arrays.
        """
        if names is None:
            names = self.schema.observed_names
        if not names:
            return np.zeros((len(self), 0), dtype=float)
        columns = [self.numeric_column(name) for name in names]
        return np.column_stack(columns) if columns else np.zeros((len(self), 0))

    def summary(self) -> Dict[str, object]:
        """Return a summary dict used by the session layer's General box."""
        return {
            "name": self.name,
            "size": len(self),
            "protected_attributes": list(self.schema.protected_names),
            "observed_attributes": list(self.schema.observed_names),
            "protected_cardinalities": {
                name: len(self.distinct_values(name)) for name in self.schema.protected_names
            },
        }
