"""In-memory tabular store of individuals (workers) for FaiRank.

The :class:`Dataset` is the substrate every other subsystem consumes: the
scoring functions read observed attribute columns from it, the partitioning
algorithms group its rows by protected-attribute values, the anonymiser
rewrites its protected columns, and the marketplace generator produces it.

It is deliberately a small, dependency-light columnar store (lists/ numpy
arrays keyed by attribute name) rather than a pandas DataFrame so that the
library has a single, explicit data contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import Attribute, AttributeType, Schema
from repro.errors import DataError, EmptyDatasetError, UnknownAttributeError

__all__ = ["Individual", "Dataset", "order_values"]


def order_values(attr: Attribute, present: Iterable[object]) -> Tuple[object, ...]:
    """Canonical ordering of an attribute's distinct values.

    Uses the declared domain order when available; otherwise a stable sorted
    order (by string representation for mixed types).  This is the single
    ordering contract shared by :meth:`Dataset.distinct_values` and the score
    store's index-based splits, so both produce children in the same order.
    """
    present = set(present)
    if attr.domain is not None and attr.atype is not AttributeType.NUMERIC:
        return tuple(v for v in attr.domain if v in present)
    return tuple(sorted(present, key=lambda v: (str(type(v)), str(v))))


@dataclass(frozen=True)
class Individual:
    """A single individual (worker) with an identifier and attribute values.

    ``values`` maps attribute name to value.  Individuals are immutable; the
    dataset is the unit of mutation (by producing new datasets).
    """

    uid: str
    values: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))

    def __getitem__(self, name: str) -> object:
        try:
            return self.values[name]
        except KeyError:
            raise UnknownAttributeError(name, tuple(self.values)) from None

    def get(self, name: str, default: object = None) -> object:
        return self.values.get(name, default)

    def with_values(self, **updates: object) -> "Individual":
        """Return a copy of this individual with some attribute values replaced."""
        merged = dict(self.values)
        merged.update(updates)
        return Individual(uid=self.uid, values=merged)


class Dataset:
    """A set of individuals conforming to a :class:`Schema`.

    The dataset validates every row against the schema at construction time,
    and exposes column access, filtering, projection and group-by operations
    used throughout the library.
    """

    def __init__(
        self,
        schema: Schema,
        individuals: Iterable[Individual],
        name: str = "dataset",
        validate: bool = True,
    ) -> None:
        self.schema = schema
        self.name = name
        self._individuals: Tuple[Individual, ...] = tuple(individuals)
        if validate:
            self._validate()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        schema: Schema,
        records: Sequence[Mapping[str, object]],
        name: str = "dataset",
        uid_field: Optional[str] = None,
    ) -> "Dataset":
        """Build a dataset from a sequence of dict-like records.

        If ``uid_field`` is given, that key supplies each individual's id and
        is removed from the attribute values; otherwise ids ``w1, w2, ...``
        are assigned in order (matching the paper's Table 1 convention).
        """
        individuals: List[Individual] = []
        for index, record in enumerate(records, start=1):
            values = dict(record)
            if uid_field is not None:
                if uid_field not in values:
                    raise DataError(f"record {index} is missing uid field {uid_field!r}")
                uid = str(values.pop(uid_field))
            else:
                uid = f"w{index}"
            individuals.append(Individual(uid=uid, values=values))
        return cls(schema=schema, individuals=individuals, name=name)

    @classmethod
    def from_columns(
        cls,
        schema: Schema,
        columns: Mapping[str, Sequence[object]],
        name: str = "dataset",
        uids: Optional[Sequence[str]] = None,
    ) -> "Dataset":
        """Build a dataset from column vectors keyed by attribute name."""
        if not columns:
            return cls(schema=schema, individuals=(), name=name)
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise DataError(f"columns have inconsistent lengths: {sorted(lengths)}")
        n = lengths.pop()
        if uids is None:
            uids = [f"w{i}" for i in range(1, n + 1)]
        elif len(uids) != n:
            raise DataError(f"got {len(uids)} uids for {n} rows")
        records = [
            {attr: columns[attr][i] for attr in columns} for i in range(n)
        ]
        individuals = [Individual(uid=str(uid), values=rec) for uid, rec in zip(uids, records)]
        return cls(schema=schema, individuals=individuals, name=name)

    def _validate(self) -> None:
        seen_uids = set()
        for individual in self._individuals:
            if individual.uid in seen_uids:
                raise DataError(f"duplicate individual id {individual.uid!r}")
            seen_uids.add(individual.uid)
            for attr in self.schema:
                if attr.name not in individual.values:
                    raise DataError(
                        f"individual {individual.uid!r} is missing attribute {attr.name!r}"
                    )
                value = individual.values[attr.name]
                if not attr.validate_value(value):
                    raise DataError(
                        f"individual {individual.uid!r} has invalid value {value!r} "
                        f"for attribute {attr.name!r}"
                    )

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._individuals)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self._individuals)

    def __getitem__(self, index: int) -> Individual:
        return self._individuals[index]

    def __bool__(self) -> bool:
        return bool(self._individuals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(name={self.name!r}, n={len(self)}, "
            f"protected={list(self.schema.protected_names)}, "
            f"observed={list(self.schema.observed_names)})"
        )

    @property
    def individuals(self) -> Tuple[Individual, ...]:
        return self._individuals

    @property
    def uids(self) -> Tuple[str, ...]:
        return tuple(ind.uid for ind in self._individuals)

    def by_uid(self, uid: str) -> Individual:
        """Return the individual with the given id."""
        for individual in self._individuals:
            if individual.uid == uid:
                return individual
        raise DataError(f"no individual with id {uid!r} in dataset {self.name!r}")

    # -- column access -----------------------------------------------------

    def column(self, name: str) -> Tuple[object, ...]:
        """Return the values of attribute ``name`` for all individuals, in order."""
        self.schema.attribute(name)
        return tuple(ind.values[name] for ind in self._individuals)

    def numeric_column(self, name: str) -> np.ndarray:
        """Return a float array of an observed (numeric) attribute column."""
        attr = self.schema.attribute(name)
        if attr.atype is not AttributeType.NUMERIC:
            raise DataError(f"attribute {name!r} is not numeric")
        return np.asarray([float(ind.values[name]) for ind in self._individuals], dtype=float)

    def value_counts(self, name: str) -> Dict[object, int]:
        """Return a value -> count mapping for attribute ``name``."""
        counts: Dict[object, int] = {}
        for value in self.column(name):
            counts[value] = counts.get(value, 0) + 1
        return counts

    def distinct_values(self, name: str) -> Tuple[object, ...]:
        """Distinct values of attribute ``name``.

        Uses the declared domain order when available; otherwise values are
        returned in a stable sorted order (by string representation for mixed
        types) so downstream algorithms are deterministic.
        """
        attr = self.schema.attribute(name)
        return order_values(attr, self.column(name))

    # -- relational-ish operations ------------------------------------------

    def filter(
        self, predicate: Callable[[Individual], bool], name: Optional[str] = None
    ) -> "Dataset":
        """Return a new dataset with only the individuals matching ``predicate``."""
        kept = tuple(ind for ind in self._individuals if predicate(ind))
        return Dataset(
            schema=self.schema,
            individuals=kept,
            name=name or f"{self.name}/filtered",
            validate=False,
        )

    def select_uids(self, uids: Iterable[str]) -> "Dataset":
        """Return a new dataset restricted to the given individual ids."""
        wanted = set(uids)
        missing = wanted - set(self.uids)
        if missing:
            raise DataError(f"unknown individual ids: {sorted(missing)}")
        kept = tuple(ind for ind in self._individuals if ind.uid in wanted)
        return Dataset(self.schema, kept, name=f"{self.name}/subset", validate=False)

    def project(self, names: Sequence[str]) -> "Dataset":
        """Return a dataset with only the attributes in ``names``."""
        sub_schema = self.schema.project(names)
        individuals = tuple(
            Individual(uid=ind.uid, values={n: ind.values[n] for n in sub_schema.names})
            for ind in self._individuals
        )
        return Dataset(sub_schema, individuals, name=f"{self.name}/projected", validate=False)

    def map_column(
        self,
        name: str,
        mapper: Callable[[object], object],
        as_categorical: bool = False,
    ) -> "Dataset":
        """Return a dataset where column ``name`` is rewritten by ``mapper``.

        The attribute's declared domain is dropped (set to ``None``) because
        the mapping may introduce values outside it — this is exactly what
        anonymisation/generalisation does.  Pass ``as_categorical=True`` when
        the mapper turns a numeric column into interval labels (strings).
        """
        attr = self.schema.attribute(name)
        new_type = AttributeType.CATEGORICAL if as_categorical else attr.atype
        new_attr = Attribute(
            name=attr.name,
            kind=attr.kind,
            atype=new_type,
            domain=None,
            description=attr.description,
        )
        new_schema = self.schema.replace_attribute(new_attr)
        individuals = tuple(
            ind.with_values(**{name: mapper(ind.values[name])}) for ind in self._individuals
        )
        return Dataset(new_schema, individuals, name=self.name, validate=False)

    def with_schema(self, schema: Schema) -> "Dataset":
        """Return this data re-validated under a (compatible) new schema."""
        return Dataset(schema, self._individuals, name=self.name)

    def group_by(self, names: Sequence[str]) -> Dict[Tuple[object, ...], "Dataset"]:
        """Group individuals by the combination of values of ``names``.

        Returns a mapping from the value tuple to the sub-dataset of
        individuals having those values, preserving input order inside each
        group.  Group keys are emitted in first-seen order.
        """
        for name in names:
            self.schema.attribute(name)
        groups: Dict[Tuple[object, ...], List[Individual]] = {}
        for individual in self._individuals:
            key = tuple(individual.values[name] for name in names)
            groups.setdefault(key, []).append(individual)
        return {
            key: Dataset(self.schema, tuple(members), name=f"{self.name}/{key}", validate=False)
            for key, members in groups.items()
        }

    def concat(self, other: "Dataset", name: Optional[str] = None) -> "Dataset":
        """Concatenate two datasets over the same schema."""
        if set(other.schema.names) != set(self.schema.names):
            raise DataError("cannot concatenate datasets with different schemas")
        return Dataset(
            self.schema,
            self._individuals + tuple(other),
            name=name or f"{self.name}+{other.name}",
        )

    def require_non_empty(self) -> "Dataset":
        """Return self, raising :class:`EmptyDatasetError` if there are no rows."""
        if not self._individuals:
            raise EmptyDatasetError(f"dataset {self.name!r} is empty")
        return self

    # -- export -------------------------------------------------------------

    def to_records(self, include_uid: bool = True) -> List[Dict[str, object]]:
        """Return the dataset as a list of plain dicts (for CSV/JSON export)."""
        records = []
        for individual in self._individuals:
            record: Dict[str, object] = {}
            if include_uid:
                record["uid"] = individual.uid
            record.update({name: individual.values[name] for name in self.schema.names})
            records.append(record)
        return records

    def observed_matrix(self, names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Return an (n, m) float matrix of observed attribute columns.

        ``names`` defaults to every observed attribute in schema order.  This
        is the matrix a linear scoring function multiplies by its weights.
        """
        if names is None:
            names = self.schema.observed_names
        if not names:
            return np.zeros((len(self), 0), dtype=float)
        columns = [self.numeric_column(name) for name in names]
        return np.column_stack(columns) if columns else np.zeros((len(self), 0))

    def summary(self) -> Dict[str, object]:
        """Return a summary dict used by the session layer's General box."""
        return {
            "name": self.name,
            "size": len(self),
            "protected_attributes": list(self.schema.protected_names),
            "observed_attributes": list(self.schema.observed_names),
            "protected_cardinalities": {
                name: len(self.distinct_values(name)) for name in self.schema.protected_names
            },
        }
