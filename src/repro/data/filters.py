"""Predicate filtering over protected attributes.

The FaiRank interface lets a user "filter the individuals based on protected
attributes … say only individuals who speak Arabic or who are located in New
York city" (paper §2).  This module provides a small, composable predicate
algebra over :class:`~repro.data.dataset.Individual` rows that the session
configuration and the role workflows use to express such filters
declaratively (and to print them back to the user).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.data.dataset import Dataset, Individual
from repro.errors import UnknownAttributeError

__all__ = [
    "Filter",
    "Equals",
    "OneOf",
    "Between",
    "Not",
    "And",
    "Or",
    "TrueFilter",
    "apply_filter",
]


class Filter:
    """Base class for declarative row predicates.

    Subclasses implement :meth:`matches`.  Filters compose with ``&``, ``|``
    and ``~`` and render to a human-readable string via ``describe()``.
    """

    def matches(self, individual: Individual) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __call__(self, individual: Individual) -> bool:
        return self.matches(individual)

    def __and__(self, other: "Filter") -> "Filter":
        return And((self, other))

    def __or__(self, other: "Filter") -> "Filter":
        return Or((self, other))

    def __invert__(self) -> "Filter":
        return Not(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


@dataclass(frozen=True)
class TrueFilter(Filter):
    """Matches every individual (the default, no-op filter)."""

    def matches(self, individual: Individual) -> bool:
        return True

    def describe(self) -> str:
        return "all individuals"


@dataclass(frozen=True)
class Equals(Filter):
    """``attribute == value``."""

    attribute: str
    value: object

    def matches(self, individual: Individual) -> bool:
        return individual.get(self.attribute, _MISSING) == self.value

    def describe(self) -> str:
        return f"{self.attribute} = {self.value!r}"


@dataclass(frozen=True)
class OneOf(Filter):
    """``attribute`` takes one of the given values."""

    attribute: str
    values: Tuple[object, ...]

    def __init__(self, attribute: str, values: Iterable[object]):
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "values", tuple(values))

    def matches(self, individual: Individual) -> bool:
        return individual.get(self.attribute, _MISSING) in self.values

    def describe(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values)
        return f"{self.attribute} in {{{rendered}}}"


@dataclass(frozen=True)
class Between(Filter):
    """``low <= attribute <= high`` for numeric/ordinal attributes."""

    attribute: str
    low: float
    high: float

    def matches(self, individual: Individual) -> bool:
        value = individual.get(self.attribute, None)
        if value is None:
            return False
        try:
            numeric = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        return self.low <= numeric <= self.high

    def describe(self) -> str:
        return f"{self.low} <= {self.attribute} <= {self.high}"


@dataclass(frozen=True)
class Not(Filter):
    """Logical negation of another filter."""

    inner: Filter

    def matches(self, individual: Individual) -> bool:
        return not self.inner.matches(individual)

    def describe(self) -> str:
        return f"not ({self.inner.describe()})"


class _Combinator(Filter):
    """Shared machinery for And / Or."""

    _joiner = ""
    _empty_result = True

    def __init__(self, parts: Iterable[Filter]):
        self.parts: Tuple[Filter, ...] = tuple(parts)

    def describe(self) -> str:
        if not self.parts:
            return "all individuals"
        return f" {self._joiner} ".join(f"({p.describe()})" for p in self.parts)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.parts == other.parts  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.parts))


class And(_Combinator):
    """Conjunction of filters (matches when *all* parts match)."""

    _joiner = "and"

    def matches(self, individual: Individual) -> bool:
        return all(part.matches(individual) for part in self.parts)


class Or(_Combinator):
    """Disjunction of filters (matches when *any* part matches)."""

    _joiner = "or"

    def matches(self, individual: Individual) -> bool:
        return any(part.matches(individual) for part in self.parts)


class _Missing:
    """Sentinel distinct from any attribute value (including None)."""

    def __eq__(self, other: object) -> bool:
        return False

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return id(self)


_MISSING = _Missing()


def apply_filter(dataset: Dataset, row_filter: Filter) -> Dataset:
    """Apply a filter to a dataset, validating referenced attribute names.

    Unlike :meth:`Dataset.filter`, this checks that every attribute mentioned
    by the filter exists in the dataset schema, so typos fail loudly instead
    of silently matching nothing.
    """
    for name in _referenced_attributes(row_filter):
        if name not in dataset.schema:
            raise UnknownAttributeError(name, dataset.schema.names)
    return dataset.filter(row_filter.matches, name=f"{dataset.name}[{row_filter.describe()}]")


def _referenced_attributes(row_filter: Filter) -> Sequence[str]:
    """Collect every attribute name referenced by a (possibly nested) filter."""
    if isinstance(row_filter, (Equals, OneOf, Between)):
        return [row_filter.attribute]
    if isinstance(row_filter, Not):
        return _referenced_attributes(row_filter.inner)
    if isinstance(row_filter, _Combinator):
        names = []
        for part in row_filter.parts:
            names.extend(_referenced_attributes(part))
        return names
    return []
