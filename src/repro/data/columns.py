"""Contiguous numpy column arrays — the columnar backing of :class:`Dataset`.

This module is the storage half of the columnar data plane.  A
:class:`ColumnStore` holds one population as a set of per-attribute arrays:

* **coded columns** (:class:`CodedColumn`) store categorical/ordinal values
  as contiguous ``int64`` codes plus a small decode table — the integer
  coding the score store used to rebuild per request is now the storage
  format itself, so protected attributes never round-trip through per-row
  dicts;
* **numeric columns** (:class:`NumericColumn`) store observed attributes as
  contiguous ``float64`` arrays, which is exactly the shape a linear scoring
  function multiplies by its weights.

Stores are built incrementally by a :class:`ColumnStoreBuilder` — the
streaming CSV loader appends fixed-size chunks and never materialises the
whole file as row dicts — and persist to a directory of raw ``.bin`` files
plus a JSON manifest (:meth:`ColumnStore.save` / :meth:`ColumnStore.load`).
Loading re-opens every array as a read-only ``np.memmap`` by default, so a
reloaded million-row population costs page-cache, not heap: the snapshot
layer stores these directories next to the catalog snapshot, keyed by the
dataset's content fingerprint.

Value fidelity contract: coded decode tables round-trip through JSON, so
coded values must be ``str`` / ``int`` / ``float`` / ``bool`` / ``None``.
Values that are equal-but-differently-typed (``1`` vs ``1.0`` vs ``True``)
are kept distinct in the decode table, so a persisted store reproduces the
exact Python values — and therefore the exact content fingerprint — of the
dataset it was built from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DataError

__all__ = [
    "CodedColumn",
    "NumericColumn",
    "ColumnStore",
    "ColumnStoreBuilder",
    "MANIFEST_NAME",
]

#: File name of the per-directory column manifest.
MANIFEST_NAME = "manifest.json"

#: Identifies a column directory (so arbitrary directories are rejected loudly).
MANIFEST_FORMAT = "fairank-columns"

#: The manifest schema version this build writes (and the only one it reads).
MANIFEST_VERSION = 1

#: Python types whose values survive a JSON round trip exactly; only these may
#: appear in a coded column that is persisted to disk.
_JSON_SAFE_TYPES = (str, int, float, bool, type(None))


def _type_key(value: object) -> Tuple[type, object]:
    """Dict key distinguishing equal-but-differently-typed values (1 vs 1.0)."""
    return (value.__class__, value)


class CodedColumn:
    """An integer-coded categorical/ordinal column.

    ``codes`` is a read-only ``int64`` array of row codes; ``values`` is the
    decode table (``values[code]`` is the original Python value), in
    first-seen row order when built by a :class:`ColumnStoreBuilder`.
    """

    __slots__ = ("codes", "values")

    def __init__(self, codes: np.ndarray, values: Sequence[object]) -> None:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise DataError(f"coded column codes must be 1-D, got shape {codes.shape}")
        if codes.flags.writeable:
            codes.setflags(write=False)
        self.codes = codes
        self.values = tuple(values)
        if codes.size and (int(codes.max()) >= len(self.values) or int(codes.min()) < 0):
            raise DataError(
                f"coded column has codes outside its decode table "
                f"(0..{len(self.values) - 1})"
            )

    def __len__(self) -> int:
        return len(self.codes)

    def decode_range(self, start: int, stop: int) -> List[object]:
        """The original Python values of rows ``start..stop`` (decoded)."""
        table = self.values
        return [table[code] for code in self.codes[start:stop].tolist()]


class NumericColumn:
    """A contiguous ``float64`` column of an observed (numeric) attribute."""

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise DataError(f"numeric column must be 1-D, got shape {values.shape}")
        if values.flags.writeable:
            values.setflags(write=False)
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def decode_range(self, start: int, stop: int) -> List[float]:
        """The Python float values of rows ``start..stop``."""
        return self.values[start:stop].tolist()


Column = Union[CodedColumn, NumericColumn]


class ColumnStore:
    """One population as contiguous per-attribute column arrays.

    Parameters
    ----------
    n:
        Number of rows.
    columns:
        Mapping from attribute name to :class:`CodedColumn` /
        :class:`NumericColumn`; every column must have exactly ``n`` rows.
    uids:
        Explicit row ids, or ``None`` for the sequential convention
        ``w1, w2, ...`` (which is then not stored at all — a million
        sequential ids cost nothing).
    """

    __slots__ = ("n", "_columns", "_uids", "_uid_cache")

    def __init__(
        self,
        n: int,
        columns: Mapping[str, Column],
        uids: Optional[Sequence[str]] = None,
    ) -> None:
        self.n = int(n)
        self._columns: Dict[str, Column] = dict(columns)
        for name, column in self._columns.items():
            if len(column) != self.n:
                raise DataError(
                    f"column {name!r} has {len(column)} rows, store has {self.n}"
                )
        if uids is not None:
            uids = tuple(str(uid) for uid in uids)
            if len(uids) != self.n:
                raise DataError(f"got {len(uids)} uids for {self.n} rows")
        self._uids = uids
        self._uid_cache: Optional[Tuple[str, ...]] = None

    # -- access ------------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """Column names, in insertion order."""
        return tuple(self._columns)

    def __len__(self) -> int:
        return self.n

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def column(self, name: str) -> Column:
        """The column called ``name`` (raises :class:`DataError` if absent)."""
        try:
            return self._columns[name]
        except KeyError:
            raise DataError(
                f"column store has no column {name!r}; has {sorted(self._columns)}"
            ) from None

    @property
    def explicit_uids(self) -> Optional[Tuple[str, ...]]:
        """The stored row ids, or ``None`` for the sequential convention."""
        return self._uids

    def uids(self) -> Tuple[str, ...]:
        """All row ids (generated on demand for sequential stores, cached)."""
        cached = self._uid_cache
        if cached is None:
            if self._uids is not None:
                cached = self._uids
            else:
                cached = tuple(f"w{i}" for i in range(1, self.n + 1))
            self._uid_cache = cached
        return cached

    def uid_range(self, start: int, stop: int) -> List[str]:
        """Row ids ``start..stop`` without materialising the full tuple."""
        if self._uids is not None:
            return list(self._uids[start:stop])
        return [f"w{i}" for i in range(start + 1, stop + 1)]

    def iter_rows(
        self, names: Sequence[str], chunk_rows: int = 65536
    ) -> Iterator[Tuple[str, List[object]]]:
        """Yield ``(uid, [values in names order])`` per row, chunk by chunk.

        Decodes ``chunk_rows`` rows at a time so iterating a 10M-row store
        never holds more than one chunk of Python values.
        """
        columns = [self.column(name) for name in names]
        for start in range(0, self.n, chunk_rows):
            stop = min(start + chunk_rows, self.n)
            decoded = [column.decode_range(start, stop) for column in columns]
            uids = self.uid_range(start, stop)
            for offset in range(stop - start):
                yield uids[offset], [values[offset] for values in decoded]

    # -- persistence -------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> None:
        """Write this store to ``directory`` (manifest + raw column files).

        Layout: ``manifest.json`` describes every column (kind, dtype, file,
        decode table); each array is one raw little-endian ``.bin`` written
        with ``ndarray.tofile``; explicit uids go to ``uids.json``.  Coded
        decode values must be JSON-safe (str/int/float/bool/None).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest_columns: List[Dict[str, object]] = []
        for index, (name, column) in enumerate(self._columns.items()):
            file_name = f"col_{index}.bin"
            if isinstance(column, CodedColumn):
                for value in column.values:
                    if not isinstance(value, _JSON_SAFE_TYPES):
                        raise DataError(
                            f"cannot persist column {name!r}: decode value {value!r} "
                            f"({type(value).__name__}) does not survive JSON"
                        )
                array: np.ndarray = column.codes
                entry: Dict[str, object] = {
                    "name": name,
                    "kind": "coded",
                    "file": file_name,
                    "dtype": "int64",
                    "values": [
                        # bool before int (bool is an int subtype); the tag
                        # restores the exact Python type on load.
                        {"t": "b", "v": value} if isinstance(value, bool)
                        else value
                        for value in column.values
                    ],
                }
            else:
                array = column.values
                entry = {"name": name, "kind": "numeric", "file": file_name, "dtype": "float64"}
            np.ascontiguousarray(array).tofile(directory / file_name)
            manifest_columns.append(entry)
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "rows": self.n,
            "uids": "explicit" if self._uids is not None else "sequential",
            "columns": manifest_columns,
        }
        if self._uids is not None:
            (directory / "uids.json").write_text(
                json.dumps(list(self._uids)) + "\n", encoding="utf-8"
            )
        (directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(cls, directory: Union[str, Path], mmap: bool = True) -> "ColumnStore":
        """Re-open a store saved by :meth:`save`.

        With ``mmap=True`` (the default) every column array is a read-only
        ``np.memmap`` over its ``.bin`` file — rows are paged in on demand,
        so reloading a snapshot of a million-row population allocates almost
        no heap.  ``mmap=False`` reads the files into ordinary arrays.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise DataError(f"no column manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise DataError(f"cannot read column manifest {manifest_path}: {error}") from None
        if manifest.get("format") != MANIFEST_FORMAT:
            raise DataError(f"{manifest_path} is not a fairank column manifest")
        if manifest.get("version") != MANIFEST_VERSION:
            raise DataError(
                f"unsupported column manifest version {manifest.get('version')!r}"
            )
        n = int(manifest["rows"])
        columns: Dict[str, Column] = {}
        for entry in manifest["columns"]:
            name = str(entry["name"])
            path = directory / str(entry["file"])
            dtype = np.dtype(str(entry["dtype"]))
            if not path.exists():
                raise DataError(f"column file missing for {name!r}: {path}")
            if mmap:
                array = np.memmap(path, dtype=dtype, mode="r", shape=(n,))
            else:
                array = np.fromfile(path, dtype=dtype)
                if array.shape != (n,):
                    raise DataError(
                        f"column file {path} has {array.size} rows, expected {n}"
                    )
            if entry["kind"] == "coded":
                values = [
                    bool(value["v"])
                    if isinstance(value, dict) and value.get("t") == "b"
                    else value
                    for value in entry["values"]
                ]
                columns[name] = CodedColumn(array, values)
            elif entry["kind"] == "numeric":
                columns[name] = NumericColumn(array)
            else:
                raise DataError(f"unknown column kind {entry['kind']!r} for {name!r}")
        uids: Optional[List[str]] = None
        if manifest.get("uids") == "explicit":
            uids_path = directory / "uids.json"
            if not uids_path.exists():
                raise DataError(f"column store at {directory} is missing uids.json")
            uids = [str(uid) for uid in json.loads(uids_path.read_text(encoding="utf-8"))]
        return cls(n, columns, uids=uids)


class ColumnStoreBuilder:
    """Accumulates row chunks into one :class:`ColumnStore`, never row dicts.

    The builder is the streaming half of ingestion: callers (the chunked CSV
    loader, the synthetic generator) push per-column value chunks via
    :meth:`append_chunk`; coded columns keep one encode dict across chunks
    (codes are first-seen row order, exactly the coding the score store's
    splits use), numeric columns accumulate ``float64`` chunk arrays, and
    :meth:`finish` concatenates each column once.  Peak memory is one chunk
    of Python values plus the (compact) accumulated code arrays.
    """

    def __init__(
        self,
        coded_names: Sequence[str],
        numeric_names: Sequence[str],
        collect_uids: bool = False,
    ) -> None:
        overlap = set(coded_names) & set(numeric_names)
        if overlap:
            raise DataError(f"columns declared both coded and numeric: {sorted(overlap)}")
        self._coded_names = tuple(coded_names)
        self._numeric_names = tuple(numeric_names)
        #: name -> {type-tagged value -> code}; insertion order is decode order.
        self._encodes: Dict[str, Dict[Tuple[type, object], int]] = {
            name: {} for name in self._coded_names
        }
        self._decodes: Dict[str, List[object]] = {name: [] for name in self._coded_names}
        self._chunks: Dict[str, List[np.ndarray]] = {
            name: [] for name in (*self._coded_names, *self._numeric_names)
        }
        self._uids: Optional[List[str]] = [] if collect_uids else None
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append_chunk(
        self,
        columns: Mapping[str, Sequence[object]],
        uids: Optional[Sequence[str]] = None,
    ) -> None:
        """Append one chunk of rows, given as per-column value sequences."""
        lengths = {len(columns[name]) for name in self._chunks}
        missing = [name for name in self._chunks if name not in columns]
        if missing:
            raise DataError(f"chunk is missing columns: {missing}")
        if len(lengths) > 1:
            raise DataError(f"chunk columns have inconsistent lengths: {sorted(lengths)}")
        chunk_len = lengths.pop() if lengths else 0
        if self._uids is not None:
            if uids is None:
                raise DataError("builder collects uids but the chunk has none")
            if len(uids) != chunk_len:
                raise DataError(f"chunk has {len(uids)} uids for {chunk_len} rows")
            self._uids.extend(str(uid) for uid in uids)
        for name in self._coded_names:
            encode = self._encodes[name]
            decode = self._decodes[name]
            codes = np.empty(chunk_len, dtype=np.int64)
            for position, value in enumerate(columns[name]):
                key = _type_key(value)
                code = encode.get(key)
                if code is None:
                    code = len(encode)
                    encode[key] = code
                    decode.append(value)
                codes[position] = code
            self._chunks[name].append(codes)
        for name in self._numeric_names:
            self._chunks[name].append(np.asarray(columns[name], dtype=np.float64))
        self._n += chunk_len

    def finish(self, uids: Optional[Sequence[str]] = None) -> ColumnStore:
        """Concatenate the accumulated chunks into a :class:`ColumnStore`.

        ``uids`` overrides the collected ids (or supplies them for a builder
        constructed without ``collect_uids``); ``None`` keeps the collected
        ones, falling back to the sequential ``w1..wn`` convention.
        """
        columns: Dict[str, Column] = {}
        for name in self._coded_names:
            chunks = self._chunks[name]
            codes = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            )
            columns[name] = CodedColumn(codes, self._decodes[name])
        for name in self._numeric_names:
            chunks = self._chunks[name]
            values = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64)
            )
            columns[name] = NumericColumn(values)
        if uids is None:
            uids = self._uids
        return ColumnStore(self._n, columns, uids=uids)
