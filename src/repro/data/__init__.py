"""Data substrate: schemas, datasets, filters, loaders and validation (S1)."""

from repro.data.dataset import Dataset, Individual
from repro.data.filters import (
    And,
    Between,
    Equals,
    Filter,
    Not,
    OneOf,
    Or,
    TrueFilter,
    apply_filter,
)
from repro.data.loaders import (
    TABLE1_PUBLISHED_SCORES,
    TABLE1_WEIGHTS,
    load_csv,
    load_example_table1,
    load_records,
    table1_schema,
)
from repro.data.schema import (
    Attribute,
    AttributeKind,
    AttributeType,
    Schema,
    observed,
    protected,
)
from repro.data.validation import (
    ValidationIssue,
    ValidationReport,
    profile_dataset,
    validate_dataset,
)

__all__ = [
    "Attribute",
    "AttributeKind",
    "AttributeType",
    "Schema",
    "protected",
    "observed",
    "Dataset",
    "Individual",
    "Filter",
    "TrueFilter",
    "Equals",
    "OneOf",
    "Between",
    "Not",
    "And",
    "Or",
    "apply_filter",
    "load_example_table1",
    "table1_schema",
    "load_csv",
    "load_records",
    "TABLE1_WEIGHTS",
    "TABLE1_PUBLISHED_SCORES",
    "ValidationIssue",
    "ValidationReport",
    "validate_dataset",
    "profile_dataset",
]
