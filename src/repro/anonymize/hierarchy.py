"""Generalisation hierarchies for k-anonymisation.

The paper anonymises datasets with the ARX tool before feeding them to
FaiRank.  ARX's central abstraction is the *generalisation hierarchy*: each
quasi-identifier attribute has a ladder of increasingly coarse value
mappings, ending in full suppression ("*").  We reproduce that abstraction:

* :class:`CategoricalHierarchy` — explicit value -> ancestor ladders
  (e.g. ``Paris -> France -> Europe -> *``);
* :class:`IntervalHierarchy` — numeric/ordinal values generalised into
  progressively wider intervals (e.g. year of birth -> decade -> 20-year band
  -> ``*``), the standard treatment for ages and dates.

A :class:`GeneralizationLevel` of 0 always means "original value"; the
highest level always maps every value to ``SUPPRESSED``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import AnonymizationError

__all__ = [
    "SUPPRESSED",
    "GeneralizationHierarchy",
    "CategoricalHierarchy",
    "IntervalHierarchy",
    "identity_hierarchy",
]

#: The fully suppressed value (top of every hierarchy), rendered like ARX.
SUPPRESSED = "*"


class GeneralizationHierarchy:
    """Interface of a per-attribute generalisation hierarchy."""

    #: Name of the attribute this hierarchy generalises.
    attribute: str = ""

    @property
    def height(self) -> int:
        """Number of levels above the original values (level ``height`` = suppression)."""
        raise NotImplementedError

    def generalize(self, value: object, level: int) -> object:
        """Return ``value`` generalised to the given level."""
        raise NotImplementedError

    def validate_level(self, level: int) -> int:
        if not 0 <= level <= self.height:
            raise AnonymizationError(
                f"generalisation level {level} out of range [0, {self.height}] "
                f"for attribute {self.attribute!r}"
            )
        return level


@dataclass
class CategoricalHierarchy(GeneralizationHierarchy):
    """Explicit per-value generalisation ladders for a categorical attribute.

    ``ladders`` maps each original value to the tuple of its ancestors from
    level 1 upwards (the final suppression level is implicit and does not
    need to be listed).  All ladders are padded to the same height with their
    last ancestor so the hierarchy is uniform, as ARX requires.
    """

    attribute: str
    ladders: Mapping[object, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned: Dict[object, Tuple[object, ...]] = {}
        max_height = 0
        for value, ancestors in self.ladders.items():
            chain = tuple(ancestors)
            cleaned[value] = chain
            max_height = max(max_height, len(chain))
        padded: Dict[object, Tuple[object, ...]] = {}
        for value, chain in cleaned.items():
            if len(chain) < max_height:
                filler = chain[-1] if chain else value
                chain = chain + (filler,) * (max_height - len(chain))
            padded[value] = chain
        self.ladders = padded
        self._height = max_height + 1  # +1 for the suppression level

    @property
    def height(self) -> int:
        return self._height

    def generalize(self, value: object, level: int) -> object:
        level = self.validate_level(level)
        if level == 0:
            return value
        if level == self.height:
            return SUPPRESSED
        chain = self.ladders.get(value)
        if chain is None:
            # Unknown values can only be suppressed; any positive level hides them.
            return SUPPRESSED
        return chain[level - 1]

    @classmethod
    def two_level(
        cls, attribute: str, grouping: Mapping[object, Sequence[object]]
    ) -> "CategoricalHierarchy":
        """Build a one-intermediate-level hierarchy from ``group label -> values``."""
        ladders: Dict[object, Tuple[object, ...]] = {}
        for group_label, values in grouping.items():
            for value in values:
                if value in ladders:
                    raise AnonymizationError(
                        f"value {value!r} of {attribute!r} appears in two groups"
                    )
                ladders[value] = (group_label,)
        return cls(attribute=attribute, ladders=ladders)


@dataclass
class IntervalHierarchy(GeneralizationHierarchy):
    """Numeric values generalised into progressively wider intervals.

    ``widths`` lists the interval width used at each level (level 1 uses
    ``widths[0]``, level 2 ``widths[1]``, ...); intervals are aligned to
    ``origin``.  Generalised values are rendered as ``"[low-high)"`` strings
    so they behave as ordinary categorical values downstream.
    """

    attribute: str
    widths: Sequence[float] = (10.0,)
    origin: float = 0.0

    def __post_init__(self) -> None:
        if not self.widths:
            raise AnonymizationError(f"hierarchy for {self.attribute!r} needs at least one width")
        cleaned = [float(w) for w in self.widths]
        if any(w <= 0 for w in cleaned):
            raise AnonymizationError("interval widths must be positive")
        if any(b < a for a, b in zip(cleaned, cleaned[1:])):
            raise AnonymizationError("interval widths must be non-decreasing across levels")
        self.widths = tuple(cleaned)

    @property
    def height(self) -> int:
        return len(self.widths) + 1  # +1 for the suppression level

    def generalize(self, value: object, level: int) -> object:
        level = self.validate_level(level)
        if level == 0:
            return value
        if level == self.height:
            return SUPPRESSED
        try:
            numeric = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return SUPPRESSED
        width = self.widths[level - 1]
        offset = numeric - self.origin
        low = self.origin + (offset // width) * width
        high = low + width
        if float(low).is_integer() and float(high).is_integer():
            return f"[{int(low)}-{int(high)})"
        return f"[{low:g}-{high:g})"


def identity_hierarchy(attribute: str) -> CategoricalHierarchy:
    """A degenerate hierarchy whose only generalisation is full suppression."""
    return CategoricalHierarchy(attribute=attribute, ladders={})
