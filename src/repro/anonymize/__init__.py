"""k-anonymisation substrate replacing the ARX tool (S9)."""

from repro.anonymize.hierarchy import (
    SUPPRESSED,
    CategoricalHierarchy,
    GeneralizationHierarchy,
    IntervalHierarchy,
    identity_hierarchy,
)
from repro.anonymize.kanonymity import (
    AnonymizationResult,
    GlobalRecodingAnonymizer,
    MondrianAnonymizer,
    default_hierarchies,
    equivalence_classes,
    is_k_anonymous,
)
from repro.anonymize.metrics import (
    InformationLoss,
    average_class_size_ratio,
    discernibility,
    information_loss,
)

__all__ = [
    "SUPPRESSED",
    "GeneralizationHierarchy",
    "CategoricalHierarchy",
    "IntervalHierarchy",
    "identity_hierarchy",
    "GlobalRecodingAnonymizer",
    "MondrianAnonymizer",
    "AnonymizationResult",
    "is_k_anonymous",
    "equivalence_classes",
    "default_hierarchies",
    "InformationLoss",
    "information_loss",
    "discernibility",
    "average_class_size_ratio",
]
