"""Information-loss and privacy metrics for anonymised datasets.

The transparency experiments need to report not only how k-anonymisation
changes the *measured unfairness* but also how much data utility was paid for
the privacy.  The metrics here are the standard ones ARX reports:

* **generalisation intensity** — average fraction of each hierarchy's height
  that was consumed (0 = raw data, 1 = everything suppressed);
* **discernibility** — sum over records of the size of their equivalence
  class (Bayardo & Agrawal), lower is better;
* **average equivalence-class size ratio** (``C_avg``) — average class size
  divided by k, the classic normalised class-size metric;
* **suppression rate** — fraction of records dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.anonymize.hierarchy import GeneralizationHierarchy
from repro.anonymize.kanonymity import AnonymizationResult, equivalence_classes
from repro.data.dataset import Dataset
from repro.errors import AnonymizationError

__all__ = ["InformationLoss", "information_loss", "discernibility", "average_class_size_ratio"]


@dataclass(frozen=True)
class InformationLoss:
    """Bundle of utility metrics for one anonymisation result."""

    generalization_intensity: float
    discernibility: float
    average_class_size_ratio: float
    suppression_rate: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "generalization_intensity": self.generalization_intensity,
            "discernibility": self.discernibility,
            "average_class_size_ratio": self.average_class_size_ratio,
            "suppression_rate": self.suppression_rate,
        }


def discernibility(dataset: Dataset, quasi_identifiers: Sequence[str]) -> float:
    """Discernibility metric: sum over records of their equivalence-class size."""
    classes = equivalence_classes(dataset, quasi_identifiers)
    return float(sum(size * size for size in classes.values()))


def average_class_size_ratio(dataset: Dataset, quasi_identifiers: Sequence[str], k: int) -> float:
    """``C_avg``: (n / number of classes) / k; 1.0 is the ideal value."""
    if k < 1:
        raise AnonymizationError(f"k must be >= 1, got {k}")
    if not len(dataset):
        return 0.0
    classes = equivalence_classes(dataset, quasi_identifiers)
    return (len(dataset) / len(classes)) / k


def information_loss(
    result: AnonymizationResult,
    hierarchies: Optional[Mapping[str, GeneralizationHierarchy]] = None,
) -> InformationLoss:
    """Compute the information-loss bundle for an anonymisation result.

    ``hierarchies`` is only needed to normalise the generalisation intensity
    of global recoding; Mondrian results (no global levels) report intensity
    based on how many quasi-identifier values became non-atomic (interval or
    set labels).
    """
    quasi_identifiers = result.quasi_identifiers
    dataset = result.dataset

    if result.levels:
        ratios = []
        for name in quasi_identifiers:
            level = result.levels.get(name, 0)
            if hierarchies and name in hierarchies:
                height = max(hierarchies[name].height, 1)
            else:
                height = max(level, 1)
            ratios.append(level / height)
        intensity = sum(ratios) / len(ratios) if ratios else 0.0
    else:
        # Local recoding: count generalised (non-atomic) cells.
        generalised_cells = 0
        total_cells = 0
        for individual in dataset:
            for name in quasi_identifiers:
                total_cells += 1
                value = individual.values[name]
                if isinstance(value, str) and (
                    value.startswith("[") or "|" in value or value == "*"
                ):
                    generalised_cells += 1
        intensity = generalised_cells / total_cells if total_cells else 0.0

    return InformationLoss(
        generalization_intensity=float(intensity),
        discernibility=discernibility(dataset, quasi_identifiers),
        average_class_size_ratio=average_class_size_ratio(dataset, quasi_identifiers, result.k),
        suppression_rate=result.suppression_rate,
    )
