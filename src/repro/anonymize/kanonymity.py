"""k-anonymisation of marketplace datasets (ARX-tool substitute).

FaiRank explores how *data transparency* affects fairness quantification by
k-anonymising the individuals' protected attributes before analysis.  The
paper delegates this to the ARX tool; since ARX is an external Java
application, this module re-implements the two classic k-anonymisation
strategies FaiRank needs:

* :class:`GlobalRecodingAnonymizer` — full-domain global recoding over
  per-attribute generalisation hierarchies, with optional record
  suppression, searching the generalisation lattice for the minimal levels
  that achieve k-anonymity (the ARX default strategy);
* :class:`MondrianAnonymizer` — greedy multidimensional local recoding
  (LeFevre et al.'s Mondrian), which splits the population into boxes of at
  least k individuals and generalises each box to its value span.

Both return a new :class:`~repro.data.dataset.Dataset` whose protected
columns carry the generalised values, plus an :class:`AnonymizationResult`
describing what was done (levels, suppressed records, information loss) —
the inputs FaiRank's transparency experiments need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


from repro.anonymize.hierarchy import GeneralizationHierarchy, IntervalHierarchy, identity_hierarchy
from repro.data.dataset import Dataset, Individual
from repro.data.schema import Attribute, AttributeType, Schema
from repro.errors import AnonymizationError

__all__ = [
    "AnonymizationResult",
    "GlobalRecodingAnonymizer",
    "MondrianAnonymizer",
    "is_k_anonymous",
    "equivalence_classes",
    "default_hierarchies",
]


def equivalence_classes(
    dataset: Dataset, quasi_identifiers: Sequence[str]
) -> Dict[Tuple[object, ...], int]:
    """Sizes of the equivalence classes induced by the quasi-identifier columns."""
    classes: Dict[Tuple[object, ...], int] = {}
    for individual in dataset:
        key = tuple(individual.values[name] for name in quasi_identifiers)
        classes[key] = classes.get(key, 0) + 1
    return classes


def is_k_anonymous(dataset: Dataset, quasi_identifiers: Sequence[str], k: int) -> bool:
    """True when every quasi-identifier equivalence class has at least ``k`` members."""
    if k <= 1:
        return True
    if not len(dataset):
        return True
    return min(equivalence_classes(dataset, quasi_identifiers).values()) >= k


def default_hierarchies(
    dataset: Dataset, quasi_identifiers: Sequence[str]
) -> Dict[str, GeneralizationHierarchy]:
    """Build sensible default hierarchies for the given protected attributes.

    Numeric/ordinal attributes get interval hierarchies with widths 5/10/25;
    categorical attributes get the degenerate ladder whose only option is
    suppression (matching how ARX treats attributes with no user-supplied
    hierarchy).
    """
    hierarchies: Dict[str, GeneralizationHierarchy] = {}
    for name in quasi_identifiers:
        attr = dataset.schema.attribute(name)
        values = dataset.column(name) if len(dataset) else ()
        numeric = attr.atype in (AttributeType.NUMERIC, AttributeType.ORDINAL) and all(
            _is_number(v) for v in values
        )
        if numeric and values:
            hierarchies[name] = IntervalHierarchy(attribute=name, widths=(5.0, 10.0, 25.0))
        else:
            hierarchies[name] = identity_hierarchy(name)
    return hierarchies


def _is_number(value: object) -> bool:
    try:
        float(value)  # type: ignore[arg-type]
        return True
    except (TypeError, ValueError):
        return False


@dataclass
class AnonymizationResult:
    """Outcome of a k-anonymisation run."""

    dataset: Dataset
    k: int
    quasi_identifiers: Tuple[str, ...]
    #: Generalisation level applied per attribute (global recoding only).
    levels: Dict[str, int] = field(default_factory=dict)
    suppressed_uids: Tuple[str, ...] = ()
    method: str = "global-recoding"

    @property
    def suppression_rate(self) -> float:
        """Fraction of the original population that was suppressed."""
        original = len(self.dataset) + len(self.suppressed_uids)
        if original == 0:
            return 0.0
        return len(self.suppressed_uids) / original

    def summary(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "k": self.k,
            "quasi_identifiers": list(self.quasi_identifiers),
            "levels": dict(self.levels),
            "suppressed": len(self.suppressed_uids),
            "suppression_rate": self.suppression_rate,
            "size": len(self.dataset),
        }


def _generalized_schema(schema: Schema, quasi_identifiers: Sequence[str]) -> Schema:
    """Relax the schema so generalised (string/interval) values validate."""
    attributes: List[Attribute] = []
    for attr in schema:
        if attr.name in quasi_identifiers:
            attributes.append(
                Attribute(
                    name=attr.name,
                    kind=attr.kind,
                    atype=AttributeType.CATEGORICAL,
                    domain=None,
                    description=attr.description,
                )
            )
        else:
            attributes.append(attr)
    return Schema(tuple(attributes))


class GlobalRecodingAnonymizer:
    """Full-domain global recoding with optional suppression.

    Every record has the same generalisation level applied per attribute; the
    search scans the lattice of level combinations in order of increasing
    total generalisation and returns the first combination that achieves
    k-anonymity after suppressing at most ``max_suppression_rate`` of the
    records (records in classes still smaller than k get dropped).
    """

    def __init__(
        self,
        hierarchies: Optional[Mapping[str, GeneralizationHierarchy]] = None,
        max_suppression_rate: float = 0.05,
    ) -> None:
        if not 0.0 <= max_suppression_rate <= 1.0:
            raise AnonymizationError(
                f"max_suppression_rate must be in [0, 1], got {max_suppression_rate}"
            )
        self.hierarchies = dict(hierarchies or {})
        self.max_suppression_rate = max_suppression_rate

    def anonymize(
        self,
        dataset: Dataset,
        k: int,
        quasi_identifiers: Optional[Sequence[str]] = None,
    ) -> AnonymizationResult:
        """Return a k-anonymous version of ``dataset``."""
        if k < 1:
            raise AnonymizationError(f"k must be >= 1, got {k}")
        if quasi_identifiers is None:
            quasi_identifiers = dataset.schema.protected_names
        quasi_identifiers = tuple(quasi_identifiers)
        for name in quasi_identifiers:
            dataset.schema.attribute(name)

        hierarchies = dict(default_hierarchies(dataset, quasi_identifiers))
        hierarchies.update({k_: v for k_, v in self.hierarchies.items() if k_ in quasi_identifiers})

        if k == 1:
            return AnonymizationResult(
                dataset=dataset,
                k=1,
                quasi_identifiers=quasi_identifiers,
                levels={name: 0 for name in quasi_identifiers},
                method="global-recoding",
            )

        level_ranges = [range(hierarchies[name].height + 1) for name in quasi_identifiers]
        combos = sorted(itertools.product(*level_ranges), key=lambda combo: (sum(combo), combo))
        max_suppressed = int(self.max_suppression_rate * len(dataset))

        for combo in combos:
            levels = dict(zip(quasi_identifiers, combo))
            generalized = self._apply_levels(dataset, hierarchies, levels, quasi_identifiers)
            classes = equivalence_classes(generalized, quasi_identifiers)
            violating_keys = {key for key, size in classes.items() if size < k}
            if not violating_keys:
                return AnonymizationResult(
                    dataset=generalized,
                    k=k,
                    quasi_identifiers=quasi_identifiers,
                    levels=levels,
                    method="global-recoding",
                )
            suppressed = [
                individual.uid
                for individual in generalized
                if tuple(individual.values[name] for name in quasi_identifiers) in violating_keys
            ]
            if len(suppressed) <= max_suppressed:
                kept = generalized.filter(lambda ind: ind.uid not in set(suppressed))
                return AnonymizationResult(
                    dataset=Dataset(
                        generalized.schema,
                        tuple(kept),
                        name=f"{dataset.name}/k={k}",
                        validate=False,
                    ),
                    k=k,
                    quasi_identifiers=quasi_identifiers,
                    levels=levels,
                    suppressed_uids=tuple(suppressed),
                    method="global-recoding",
                )
        raise AnonymizationError(
            f"could not achieve {k}-anonymity on {dataset.name!r} even with full "
            f"generalisation and {self.max_suppression_rate:.0%} suppression"
        )

    @staticmethod
    def _apply_levels(
        dataset: Dataset,
        hierarchies: Mapping[str, GeneralizationHierarchy],
        levels: Mapping[str, int],
        quasi_identifiers: Sequence[str],
    ) -> Dataset:
        schema = _generalized_schema(dataset.schema, quasi_identifiers)
        individuals = []
        for individual in dataset:
            updates = {
                name: hierarchies[name].generalize(individual.values[name], levels[name])
                for name in quasi_identifiers
            }
            individuals.append(individual.with_values(**updates))
        return Dataset(schema, individuals, name=f"{dataset.name}/generalized", validate=False)


class MondrianAnonymizer:
    """Greedy multidimensional (Mondrian) local recoding.

    Recursively splits the population on the quasi-identifier with the widest
    normalised span, at the median, as long as both halves keep at least k
    records; each final box's quasi-identifier values are replaced by the
    box's value span (an interval for numeric attributes, a ``{a, b}`` set
    label for categorical ones).  Local recoding loses less information than
    global recoding, which the information-loss benchmark demonstrates.
    """

    def __init__(self, categorical_joiner: str = "|") -> None:
        self.categorical_joiner = categorical_joiner

    def anonymize(
        self,
        dataset: Dataset,
        k: int,
        quasi_identifiers: Optional[Sequence[str]] = None,
    ) -> AnonymizationResult:
        if k < 1:
            raise AnonymizationError(f"k must be >= 1, got {k}")
        if quasi_identifiers is None:
            quasi_identifiers = dataset.schema.protected_names
        quasi_identifiers = tuple(quasi_identifiers)
        for name in quasi_identifiers:
            dataset.schema.attribute(name)
        if len(dataset) and len(dataset) < k:
            raise AnonymizationError(
                f"dataset has {len(dataset)} records, cannot be {k}-anonymous"
            )

        boxes = self._partition(list(dataset), quasi_identifiers, k)
        schema = _generalized_schema(dataset.schema, quasi_identifiers)
        individuals: List[Individual] = []
        for box in boxes:
            summary = self._summarize_box(box, quasi_identifiers)
            for individual in box:
                individuals.append(individual.with_values(**summary))
        # Preserve the original row order for reproducibility.
        order = {uid: index for index, uid in enumerate(dataset.uids)}
        individuals.sort(key=lambda ind: order[ind.uid])
        return AnonymizationResult(
            dataset=Dataset(
                schema, individuals, name=f"{dataset.name}/mondrian-k={k}", validate=False
            ),
            k=k,
            quasi_identifiers=quasi_identifiers,
            levels={},
            method="mondrian",
        )

    def _partition(
        self, records: List[Individual], quasi_identifiers: Sequence[str], k: int
    ) -> List[List[Individual]]:
        if len(records) < 2 * k:
            return [records]
        attribute = self._widest_attribute(records, quasi_identifiers)
        if attribute is None:
            return [records]
        left, right = self._median_split(records, attribute)
        if len(left) < k or len(right) < k:
            return [records]
        return self._partition(left, quasi_identifiers, k) + self._partition(
            right, quasi_identifiers, k
        )

    @staticmethod
    def _widest_attribute(
        records: List[Individual], quasi_identifiers: Sequence[str]
    ) -> Optional[str]:
        best_name = None
        best_width = -1.0
        for name in quasi_identifiers:
            values = [record.values[name] for record in records]
            distinct = set(values)
            if len(distinct) < 2:
                continue
            if all(_is_number(v) for v in values):
                numeric = [float(v) for v in values]  # type: ignore[arg-type]
                span = max(numeric) - min(numeric)
                width = span
            else:
                width = float(len(distinct))
            if width > best_width:
                best_width = width
                best_name = name
        return best_name

    @staticmethod
    def _median_split(
        records: List[Individual], attribute: str
    ) -> Tuple[List[Individual], List[Individual]]:
        values = [record.values[attribute] for record in records]
        if all(_is_number(v) for v in values):
            ordered = sorted(
                records,
                key=lambda r: (float(r.values[attribute]), r.uid),  # type: ignore[arg-type]
            )
        else:
            ordered = sorted(records, key=lambda r: (str(r.values[attribute]), r.uid))
        middle = len(ordered) // 2
        return ordered[:middle], ordered[middle:]

    def _summarize_box(
        self, box: List[Individual], quasi_identifiers: Sequence[str]
    ) -> Dict[str, object]:
        summary: Dict[str, object] = {}
        for name in quasi_identifiers:
            values = [record.values[name] for record in box]
            distinct = sorted(set(values), key=lambda v: (str(type(v)), str(v)))
            if len(distinct) == 1:
                summary[name] = distinct[0]
            elif all(_is_number(v) for v in distinct):
                numbers = [float(v) for v in distinct]  # type: ignore[arg-type]
                low, high = min(numbers), max(numbers)
                if low.is_integer() and high.is_integer():
                    summary[name] = f"[{int(low)}-{int(high)}]"
                else:
                    summary[name] = f"[{low:g}-{high:g}]"
            else:
                summary[name] = self.categorical_joiner.join(str(v) for v in distinct)
        return summary
