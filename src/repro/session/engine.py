"""The FaiRank session engine (headless equivalent of the demo system).

Figure 1 of the paper shows the pipeline: the user selects or uploads a
dataset, optionally filters and anonymises it, selects or defines a scoring
function (or provides only a ranking), chooses a fairness formulation, and
FaiRank solves the partitioning optimisation and displays the result in a
panel; the user then iterates by changing the function or the formulation
and comparing panels.

:class:`FaiRankEngine` implements that loop programmatically:

* ``register_dataset`` / ``register_function`` populate the catalogue the
  Configuration box would list — the engine keeps **no private registry**:
  every registration and lookup delegates to the single
  :class:`~repro.catalog.Catalog` owned by the engine's
  :class:`~repro.service.service.FairnessService`, so resources registered
  through the engine are immediately servable through raw wire requests,
  the batch executor and the CLI (and vice versa);
* ``open_panel(config)`` runs the full pipeline for one configuration and
  returns a :class:`~repro.session.panels.Panel`;
* ``compare(...)`` renders the multi-panel comparison table;
* role helpers (``auditor_view`` etc.) connect the engine to the scenario
  workflows of :mod:`repro.roles`, resolving marketplaces by registered
  name through the same catalog and sharing the service's result cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.anonymize.kanonymity import GlobalRecodingAnonymizer
from repro.data.dataset import Dataset
from repro.data.filters import TrueFilter, apply_filter
from repro.errors import FaiRankError, SessionError
from repro.marketplace.entities import Marketplace
from repro.roles.auditor import AuditReport
from repro.roles.job_owner import JobOwnerReport
from repro.roles.report import ReportTable
from repro.scoring.base import ScoringFunction
from repro.scoring.rank import OpaqueScoringFunction, RankDerivedScorer
from repro.service.cache import CacheStats
from repro.service.service import FairnessService
from repro.session.config import SessionConfig
from repro.session.panels import Panel, compare_panels

__all__ = ["FaiRankEngine"]


class FaiRankEngine:
    """Headless FaiRank system: a shared catalogue plus interactive panels.

    The compute step of every panel goes through a
    :class:`~repro.service.service.FairnessService`, so re-opening a panel
    with a semantically identical configuration (same population, same
    weights, same formulation) is served from the fingerprint-keyed cache
    instead of re-running the search.  Pass a shared service to let several
    engines (or a batch executor) reuse one cache *and one catalogue* —
    the engine holds no dataset/function dicts of its own.
    """

    def __init__(self, service: Optional[FairnessService] = None) -> None:
        self._panels: Dict[str, Panel] = {}
        self._panel_counter = 0
        self._anonymizer = GlobalRecodingAnonymizer()
        self._service = service if service is not None else FairnessService()

    @property
    def service(self) -> FairnessService:
        """The fairness service backing this engine's panel computations."""
        return self._service

    @property
    def catalog(self):
        """The single resource registry (owned by the backing service)."""
        return self._service.catalog

    @property
    def cache_stats(self) -> CacheStats:
        """Result-cache effectiveness across this engine's panels."""
        return self._service.cache_stats

    # -- catalogues (the Configuration box) ---------------------------------------

    def register_dataset(
        self,
        dataset: Dataset,
        name: Optional[str] = None,
        *,
        replace: bool = True,
        freeze: bool = False,
    ) -> str:
        """Add a dataset to the catalogue; returns the name it is registered under."""
        try:
            return self._service.register_dataset(
                dataset, name=name, replace=replace, freeze=freeze
            )
        except FaiRankError as error:
            raise SessionError(str(error)) from None

    def register_function(
        self,
        function: ScoringFunction,
        replace: bool = False,
        *,
        freeze: bool = False,
    ) -> str:
        """Add a scoring function to the catalogue; returns its name.

        Re-registering *identical* content under an existing name is an
        idempotent no-op.  Registering **different** content under an
        existing name requires ``replace=True`` (the old behaviour of
        silently clobbering the entry is gone), and a frozen entry can never
        be replaced — both raise a :class:`~repro.errors.SessionError`.
        """
        try:
            return self._service.register_function(
                function, replace=replace, freeze=freeze
            )
        except FaiRankError as error:
            raise SessionError(str(error)) from None

    def register_marketplace(self, marketplace: Marketplace) -> Tuple[str, List[str]]:
        """Register a marketplace, its workers and every job's scoring function.

        Returns the dataset name and the list of registered function names.
        The marketplace itself becomes resolvable by name in role shortcuts
        and AUDIT / END-USER / JOB-OWNER wire requests.
        """
        try:
            dataset_name = self._service.register_marketplace(marketplace)
        except FaiRankError as error:
            raise SessionError(str(error)) from None
        return dataset_name, [job.function.name for job in marketplace]

    def save_catalog(self, path: str, columnar: bool = False) -> None:
        """Export this session's whole registry to a catalog snapshot file.

        The snapshot (see :mod:`repro.snapshot`) captures every dataset,
        scoring function, marketplace and formulation registered through
        this engine *or* through its backing service, so the deployment can
        be rebooted elsewhere — ``fairank serve --catalog PATH`` serves the
        exact same resources (identical content fingerprints, hence
        identical cache keys).

        With ``columnar=True`` every registered dataset is persisted as raw
        column files under ``<path>.columns/<fingerprint>/`` instead of
        embedded JSON rows; reload memory-maps the arrays, so large
        populations boot without parsing row dicts.
        """
        try:
            self.catalog.save(path, columnar_datasets=True if columnar else None)
        except FaiRankError as error:
            raise SessionError(str(error)) from None

    @property
    def dataset_names(self) -> Tuple[str, ...]:
        return self._service.dataset_names

    @property
    def function_names(self) -> Tuple[str, ...]:
        return self._service.function_names

    def dataset(self, name: str) -> Dataset:
        try:
            return self._service.dataset(name)
        except FaiRankError as error:
            raise SessionError(str(error)) from None

    def function(self, name: str) -> ScoringFunction:
        try:
            return self._service.function(name)
        except FaiRankError as error:
            raise SessionError(str(error)) from None

    # -- the pipeline of Figure 1 ----------------------------------------------------

    def _prepare_population(self, config: SessionConfig) -> Dataset:
        """Select, filter and (optionally) anonymise the population."""
        population = self.dataset(config.dataset_name)
        if not isinstance(config.row_filter, TrueFilter):
            population = apply_filter(population, config.row_filter)
            if not len(population):
                raise SessionError(
                    f"the filter ({config.row_filter.describe()}) matches no individuals "
                    f"of dataset {config.dataset_name!r}"
                )
        if config.anonymity_k > 1:
            population = self._anonymizer.anonymize(
                population, k=config.anonymity_k
            ).dataset
        return population

    def _prepare_function(
        self, config: SessionConfig, population: Dataset
    ) -> ScoringFunction:
        """Resolve the scoring function under the configured transparency setting."""
        function = self.function(config.function_name)
        if isinstance(function, OpaqueScoringFunction):
            # The platform hides the function: only its ranking is available.
            return RankDerivedScorer(
                function.reveal_ranking(population),
                name=f"{config.function_name}-from-ranks",
            )
        if config.use_ranks_only:
            return RankDerivedScorer(
                function.rank(population), name=f"{config.function_name}-from-ranks"
            )
        return function

    def open_panel(self, config: SessionConfig, panel_id: Optional[str] = None) -> Panel:
        """Run the full pipeline for one configuration and keep the panel open."""
        population = self._prepare_population(config)
        function = self._prepare_function(config, population)
        served = self._service.quantify_cached(
            population,
            function,
            config.formulation,
            attributes=config.attributes,
            max_depth=config.max_depth,
            min_partition_size=config.min_partition_size,
        )
        result, breakdown = served.result, served.breakdown
        self._panel_counter += 1
        identifier = panel_id or f"P{self._panel_counter}"
        panel = Panel(
            panel_id=identifier,
            config=config,
            population=population,
            effective_function=function,
            result=result,
            breakdown=breakdown,
        )
        self._panels[identifier] = panel
        return panel

    def panel(self, panel_id: str) -> Panel:
        try:
            return self._panels[panel_id]
        except KeyError:
            raise SessionError(
                f"no open panel {panel_id!r}; open panels: {', '.join(sorted(self._panels))}"
            ) from None

    @property
    def open_panels(self) -> Tuple[str, ...]:
        return tuple(self._panels)

    def close_panel(self, panel_id: str) -> None:
        self.panel(panel_id)
        del self._panels[panel_id]

    def compare(self, panel_ids: Optional[Sequence[str]] = None) -> ReportTable:
        """Side-by-side comparison of open panels (all of them by default)."""
        identifiers = tuple(panel_ids) if panel_ids is not None else tuple(self._panels)
        panels = [self.panel(identifier) for identifier in identifiers]
        return compare_panels(panels)

    # -- role shortcuts ---------------------------------------------------------------

    def auditor_view(
        self, marketplace: Union[str, Marketplace], **auditor_kwargs
    ) -> AuditReport:
        """Run the AUDITOR scenario on a marketplace (live object or registered name).

        Routed through the service, so repeated audits of the same platform
        are served from the result cache and share materialized scoring
        passes via the score-store pool.
        """
        return self._service.audit_marketplace(marketplace, **auditor_kwargs)

    def job_owner_view(
        self,
        marketplace: Union[str, Marketplace],
        job_title: str,
        sweep_steps: int = 5,
        **owner_kwargs,
    ) -> JobOwnerReport:
        """Run the JOB OWNER scenario for one job (cached, name-resolvable)."""
        return self._service.explore_job(
            marketplace, job_title, sweep_steps=sweep_steps, **owner_kwargs
        )

    def end_user_view(
        self,
        group: Dict[str, object],
        marketplaces: Sequence[Union[str, Marketplace]],
        job_title: str,
    ) -> ReportTable:
        """Run the END-USER scenario: one group, one job, several marketplaces."""
        return self._service.end_user_view(group, list(marketplaces), job_title)
