"""The FaiRank session engine (headless equivalent of the demo system).

Figure 1 of the paper shows the pipeline: the user selects or uploads a
dataset, optionally filters and anonymises it, selects or defines a scoring
function (or provides only a ranking), chooses a fairness formulation, and
FaiRank solves the partitioning optimisation and displays the result in a
panel; the user then iterates by changing the function or the formulation
and comparing panels.

:class:`FaiRankEngine` implements that loop programmatically:

* ``register_dataset`` / ``register_function`` populate the catalogues the
  Configuration box would list;
* ``open_panel(config)`` runs the full pipeline for one configuration and
  returns a :class:`~repro.session.panels.Panel`;
* ``compare(...)`` renders the multi-panel comparison table;
* role helpers (``auditor_view`` etc.) connect the engine to the scenario
  workflows of :mod:`repro.roles`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.anonymize.kanonymity import GlobalRecodingAnonymizer
from repro.data.dataset import Dataset
from repro.data.filters import TrueFilter, apply_filter
from repro.errors import SessionError
from repro.marketplace.entities import Marketplace
from repro.roles.auditor import AuditReport, Auditor
from repro.roles.end_user import EndUser
from repro.roles.job_owner import JobOwner, JobOwnerReport
from repro.roles.report import ReportTable
from repro.scoring.base import ScoringFunction
from repro.scoring.library import ScoringLibrary
from repro.scoring.rank import OpaqueScoringFunction, RankDerivedScorer
from repro.service.cache import CacheStats
from repro.service.service import FairnessService
from repro.session.config import SessionConfig
from repro.session.panels import Panel, compare_panels

__all__ = ["FaiRankEngine"]


class FaiRankEngine:
    """Headless FaiRank system: dataset/function catalogues plus panels.

    The compute step of every panel goes through a
    :class:`~repro.service.service.FairnessService`, so re-opening a panel
    with a semantically identical configuration (same population, same
    weights, same formulation) is served from the fingerprint-keyed cache
    instead of re-running the search.  Pass a shared service to let several
    engines (or a batch executor) reuse one cache.
    """

    def __init__(self, service: Optional[FairnessService] = None) -> None:
        self._datasets: Dict[str, Dataset] = {}
        self._functions = ScoringLibrary()
        self._panels: Dict[str, Panel] = {}
        self._panel_counter = 0
        self._anonymizer = GlobalRecodingAnonymizer()
        self._service = service if service is not None else FairnessService()

    @property
    def service(self) -> FairnessService:
        """The fairness service backing this engine's panel computations."""
        return self._service

    @property
    def cache_stats(self) -> CacheStats:
        """Result-cache effectiveness across this engine's panels."""
        return self._service.cache_stats

    # -- catalogues (the Configuration box) ---------------------------------------

    def register_dataset(self, dataset: Dataset, name: Optional[str] = None) -> str:
        """Add a dataset to the catalogue; returns the name it is registered under."""
        key = name or dataset.name
        if not key:
            raise SessionError("a dataset needs a non-empty name to be registered")
        self._datasets[key] = dataset
        return key

    def register_function(self, function: ScoringFunction, replace: bool = True) -> str:
        """Add a scoring function to the catalogue; returns its name."""
        self._functions.register(function, replace=replace)
        return function.name

    def register_marketplace(self, marketplace: Marketplace) -> Tuple[str, List[str]]:
        """Register a marketplace's workers and every job's scoring function.

        Returns the dataset name and the list of registered function names.
        """
        dataset_name = self.register_dataset(marketplace.workers, name=marketplace.name)
        function_names = []
        for job in marketplace:
            self.register_function(job.function, replace=True)
            function_names.append(job.function.name)
        return dataset_name, function_names

    @property
    def dataset_names(self) -> Tuple[str, ...]:
        return tuple(self._datasets)

    @property
    def function_names(self) -> Tuple[str, ...]:
        return self._functions.names

    def dataset(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise SessionError(
                f"unknown dataset {name!r}; registered: {', '.join(sorted(self._datasets))}"
            ) from None

    def function(self, name: str) -> ScoringFunction:
        return self._functions.get(name)

    # -- the pipeline of Figure 1 ----------------------------------------------------

    def _prepare_population(self, config: SessionConfig) -> Dataset:
        """Select, filter and (optionally) anonymise the population."""
        population = self.dataset(config.dataset_name)
        if not isinstance(config.row_filter, TrueFilter):
            population = apply_filter(population, config.row_filter)
            if not len(population):
                raise SessionError(
                    f"the filter ({config.row_filter.describe()}) matches no individuals "
                    f"of dataset {config.dataset_name!r}"
                )
        if config.anonymity_k > 1:
            population = self._anonymizer.anonymize(
                population, k=config.anonymity_k
            ).dataset
        return population

    def _prepare_function(
        self, config: SessionConfig, population: Dataset
    ) -> ScoringFunction:
        """Resolve the scoring function under the configured transparency setting."""
        function = self.function(config.function_name)
        if isinstance(function, OpaqueScoringFunction):
            # The platform hides the function: only its ranking is available.
            return RankDerivedScorer(
                function.reveal_ranking(population),
                name=f"{config.function_name}-from-ranks",
            )
        if config.use_ranks_only:
            return RankDerivedScorer(
                function.rank(population), name=f"{config.function_name}-from-ranks"
            )
        return function

    def open_panel(self, config: SessionConfig, panel_id: Optional[str] = None) -> Panel:
        """Run the full pipeline for one configuration and keep the panel open."""
        population = self._prepare_population(config)
        function = self._prepare_function(config, population)
        served = self._service.quantify_cached(
            population,
            function,
            config.formulation,
            attributes=config.attributes,
            max_depth=config.max_depth,
            min_partition_size=config.min_partition_size,
        )
        result, breakdown = served.result, served.breakdown
        self._panel_counter += 1
        identifier = panel_id or f"P{self._panel_counter}"
        panel = Panel(
            panel_id=identifier,
            config=config,
            population=population,
            effective_function=function,
            result=result,
            breakdown=breakdown,
        )
        self._panels[identifier] = panel
        return panel

    def panel(self, panel_id: str) -> Panel:
        try:
            return self._panels[panel_id]
        except KeyError:
            raise SessionError(
                f"no open panel {panel_id!r}; open panels: {', '.join(sorted(self._panels))}"
            ) from None

    @property
    def open_panels(self) -> Tuple[str, ...]:
        return tuple(self._panels)

    def close_panel(self, panel_id: str) -> None:
        self.panel(panel_id)
        del self._panels[panel_id]

    def compare(self, panel_ids: Optional[Sequence[str]] = None) -> ReportTable:
        """Side-by-side comparison of open panels (all of them by default)."""
        identifiers = tuple(panel_ids) if panel_ids is not None else tuple(self._panels)
        panels = [self.panel(identifier) for identifier in identifiers]
        return compare_panels(panels)

    # -- role shortcuts ---------------------------------------------------------------

    def auditor_view(self, marketplace: Marketplace, **auditor_kwargs) -> AuditReport:
        """Run the AUDITOR scenario on a marketplace."""
        return Auditor(**auditor_kwargs).audit_marketplace(marketplace)

    def job_owner_view(
        self, marketplace: Marketplace, job_title: str, sweep_steps: int = 5, **owner_kwargs
    ) -> JobOwnerReport:
        """Run the JOB OWNER scenario for one job."""
        return JobOwner(**owner_kwargs).explore_job(marketplace, job_title, sweep_steps=sweep_steps)

    def end_user_view(
        self,
        group: Dict[str, object],
        marketplaces: Sequence[Marketplace],
        job_title: str,
    ) -> ReportTable:
        """Run the END-USER scenario: one group, one job, several marketplaces."""
        return EndUser(group).compare_marketplaces(list(marketplaces), job_title)
