"""Text rendering of partitioning trees and histograms.

The demo displays partitioning trees graphically (Figure 2 / Figure 3).  The
headless reproduction renders the same structures as indented ASCII trees and
bar-style histograms, which is what the examples print and what the Figure 2
benchmark compares against the paper's worked example.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD
from repro.core.partition import Partitioning
from repro.core.tree import PartitionNode, PartitionTree
from repro.metrics.histogram import Histogram
from repro.scoring.base import ScoringFunction

__all__ = ["render_tree", "render_partitioning", "render_histogram"]


def render_histogram(histogram: Histogram, width: int = 20) -> str:
    """Render a histogram as one bar line per bin, e.g. ``[0.2-0.4) ███ 3``."""
    lines: List[str] = []
    counts = histogram.counts
    max_count = max(counts) if counts else 0
    edges = histogram.binning.edges
    for index, count in enumerate(counts):
        low, high = edges[index], edges[index + 1]
        bar_length = 0 if max_count == 0 else int(round(width * count / max_count))
        bar = "#" * bar_length
        closing = "]" if index == len(counts) - 1 else ")"
        lines.append(f"[{low:.2f}-{high:.2f}{closing} {bar} {count}")
    return "\n".join(lines)


def _node_line(
    node: PartitionNode,
    function: Optional[ScoringFunction],
    formulation: Formulation,
    show_histograms: bool,
) -> str:
    text = f"{node.label} (n={node.size}"
    if node.split_attribute:
        text += f", split on {node.split_attribute}"
    text += ")"
    if function is not None:
        scores = node.partition.scores(function)
        if scores.size:
            text += f" mean={scores.mean():.3f}"
        if show_histograms:
            histogram = node.partition.histogram(
                function, binning=formulation.effective_binning
            )
            text += f" {histogram.describe()}"
    return text


def render_tree(
    tree: PartitionTree,
    function: Optional[ScoringFunction] = None,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
    show_histograms: bool = True,
) -> str:
    """Render a partitioning tree as an indented ASCII tree.

    When a scoring function is supplied, each node shows its mean score and
    (optionally) its score histogram, mirroring Figure 2 of the paper.
    """
    lines: List[str] = []

    def _walk(node: PartitionNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_node_line(node, function, formulation, show_histograms))
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(
                prefix + connector + _node_line(node, function, formulation, show_histograms)
            )
            child_prefix = prefix + ("    " if is_last else "|   ")
        for index, child in enumerate(node.children):
            _walk(child, child_prefix, index == len(node.children) - 1, False)

    _walk(tree.root, "", True, True)
    return "\n".join(lines)


def render_partitioning(
    partitioning: Partitioning,
    function: Optional[ScoringFunction] = None,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
) -> str:
    """Render a flat partitioning: one line per partition plus its histogram."""
    lines: List[str] = []
    for partition in partitioning:
        line = f"- {partition.label} (n={partition.size})"
        if function is not None:
            scores = partition.scores(function)
            histogram = partition.histogram(function, binning=formulation.effective_binning)
            if scores.size:
                line += f" mean={scores.mean():.3f} {histogram.describe()}"
        lines.append(line)
    return "\n".join(lines)
