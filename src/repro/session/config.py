"""Session configuration (the "Configuration box" of the FaiRank interface).

Figure 3 of the paper: "The Configuration box on the left allows users to
choose which dataset and which scoring functions they want to explore.  It
allows them to also choose a fairness criterion."  A :class:`SessionConfig`
is the headless equivalent: a named selection of dataset, scoring function,
fairness formulation, optional population filter, optional anonymisation
level and optional function-transparency override.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD
from repro.data.filters import Filter, TrueFilter
from repro.errors import SessionError

__all__ = ["SessionConfig"]


@dataclass(frozen=True)
class SessionConfig:
    """One panel's worth of configuration.

    Attributes
    ----------
    dataset_name:
        Name of a dataset registered with the engine.
    function_name:
        Name of a scoring function registered with the engine.
    formulation:
        Fairness criterion (objective, aggregation, distance, bins).
    attributes:
        Protected attributes the partitioning may split on (None = all).
    row_filter:
        Optional restriction of the population.
    anonymity_k:
        Data-transparency setting: 1 means raw data; larger values
        k-anonymise the protected attributes before analysis.
    use_ranks_only:
        Function-transparency setting: when True the panel ignores the
        function's scores and rebuilds them from the ranking it induces.
    max_depth / min_partition_size:
        QUANTIFY search controls.
    """

    dataset_name: str
    function_name: str
    formulation: Formulation = MOST_UNFAIR_AVG_EMD
    attributes: Optional[Tuple[str, ...]] = None
    row_filter: Filter = field(default_factory=TrueFilter)
    anonymity_k: int = 1
    use_ranks_only: bool = False
    max_depth: Optional[int] = None
    min_partition_size: int = 1

    def __post_init__(self) -> None:
        if not self.dataset_name:
            raise SessionError("a session configuration needs a dataset name")
        if not self.function_name:
            raise SessionError("a session configuration needs a scoring-function name")
        if self.anonymity_k < 1:
            raise SessionError(f"anonymity_k must be >= 1, got {self.anonymity_k}")
        if self.min_partition_size < 1:
            raise SessionError(
                f"min_partition_size must be >= 1, got {self.min_partition_size}"
            )
        if self.attributes is not None:
            object.__setattr__(self, "attributes", tuple(self.attributes))

    # -- variants (the interactive "modify and re-run" loop) --------------------

    def with_function(self, function_name: str) -> "SessionConfig":
        return replace(self, function_name=function_name)

    def with_formulation(self, formulation: Formulation) -> "SessionConfig":
        return replace(self, formulation=formulation)

    def with_filter(self, row_filter: Filter) -> "SessionConfig":
        return replace(self, row_filter=row_filter)

    def with_anonymity(self, k: int) -> "SessionConfig":
        return replace(self, anonymity_k=k)

    def with_ranks_only(self, use_ranks_only: bool = True) -> "SessionConfig":
        return replace(self, use_ranks_only=use_ranks_only)

    def with_attributes(self, attributes: Optional[Tuple[str, ...]]) -> "SessionConfig":
        return replace(self, attributes=attributes)

    def describe(self) -> str:
        lines = [
            f"dataset: {self.dataset_name}",
            f"scoring function: {self.function_name}",
            f"fairness criterion: {self.formulation.describe()}",
            "data transparency: "
            + ("raw attributes" if self.anonymity_k <= 1 else f"{self.anonymity_k}-anonymised"),
            f"function transparency: {'ranks only' if self.use_ranks_only else 'scores visible'}",
        ]
        if self.attributes is not None:
            lines.append(f"protected attributes: {', '.join(self.attributes)}")
        if not isinstance(self.row_filter, TrueFilter):
            lines.append(f"filter: {self.row_filter.describe()}")
        return "\n".join(lines)
