"""Panels: one configured analysis plus its results.

The FaiRank interface lets the user "obtain several panels to explore how
[changing the scoring function or the fairness formulation] impacts fairness
quantification" (paper §2) — each panel shows the partitioning tree produced
by one configuration.  A :class:`Panel` here is that pairing of a
:class:`~repro.session.config.SessionConfig` with the computed
:class:`~repro.core.quantify.QuantifyResult`, plus the statistics and text
renderings the interface would display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.quantify import QuantifyResult
from repro.core.unfairness import UnfairnessBreakdown
from repro.data.dataset import Dataset
from repro.errors import SessionError
from repro.roles.report import ReportTable
from repro.scoring.base import ScoringFunction
from repro.session.config import SessionConfig
from repro.session.render import render_tree
from repro.session.stats import node_stats, tree_stats

__all__ = ["Panel", "compare_panels"]


@dataclass
class Panel:
    """One analysis panel: configuration, effective inputs and results."""

    panel_id: str
    config: SessionConfig
    #: The population actually analysed (after filtering / anonymisation).
    population: Dataset
    #: The scoring function actually used (rank-derived when ranks-only).
    effective_function: ScoringFunction
    result: QuantifyResult
    breakdown: UnfairnessBreakdown

    @property
    def unfairness(self) -> float:
        return self.result.unfairness

    @property
    def partition_count(self) -> int:
        return len(self.result.partitioning)

    # -- interface boxes ---------------------------------------------------------

    def general_box(self) -> Dict[str, object]:
        """The General box: tree-level statistics."""
        stats = tree_stats(self.result.tree, self.effective_function, self.config.formulation)
        stats["panel"] = self.panel_id
        stats["configuration"] = self.config.describe()
        return stats

    def node_box(self, label: str) -> Dict[str, object]:
        """The Node box: statistics of one clicked partition."""
        node = self.result.tree.find(label)
        return node_stats(node.partition, self.effective_function, self.config.formulation)

    def partition_labels(self) -> List[str]:
        return list(self.result.partition_labels)

    def render(self, show_histograms: bool = True) -> str:
        """Full text rendering of the panel (configuration + tree)."""
        header = f"Panel {self.panel_id}: unfairness = {self.unfairness:.4f}"
        tree_text = render_tree(
            self.result.tree,
            self.effective_function,
            self.config.formulation,
            show_histograms=show_histograms,
        )
        return "\n".join([header, self.config.describe(), "", tree_text])


def compare_panels(panels: List[Panel]) -> ReportTable:
    """Side-by-side comparison of several panels (the multi-panel view).

    One row per panel: configuration highlights, unfairness, number of
    groups, most/least favoured group.
    """
    if not panels:
        raise SessionError("cannot compare zero panels")
    table = ReportTable(
        title="Panel comparison",
        headers=["panel", "dataset", "function", "criterion", "k", "ranks only",
                 "unfairness", "#groups", "most favored", "least favored"],
    )
    for panel in panels:
        table.add_row(
            panel.panel_id,
            panel.config.dataset_name,
            panel.config.function_name,
            panel.config.formulation.name,
            panel.config.anonymity_k,
            "yes" if panel.config.use_ranks_only else "no",
            panel.unfairness,
            panel.partition_count,
            panel.breakdown.most_favored or "-",
            panel.breakdown.least_favored or "-",
        )
    return table
