"""Interactive session layer: engine, configuration, panels, rendering (S12)."""

from repro.session.config import SessionConfig
from repro.session.engine import FaiRankEngine
from repro.session.panels import Panel, compare_panels
from repro.session.render import render_histogram, render_partitioning, render_tree
from repro.session.stats import node_stats, tree_stats

__all__ = [
    "FaiRankEngine",
    "SessionConfig",
    "Panel",
    "compare_panels",
    "render_tree",
    "render_partitioning",
    "render_histogram",
    "node_stats",
    "tree_stats",
]
