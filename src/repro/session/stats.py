"""Partition statistics (the "Node box" of the FaiRank interface).

"The user can interact with the returned partitions, view statistics such as
the number of individuals in each partition, as well as a histogram of the
scores of the individuals in each partition" (paper §2).  :func:`node_stats`
computes exactly that bundle for one partition; :func:`tree_stats` summarises
a whole partitioning tree (the "General box").
"""

from __future__ import annotations

from typing import Dict

from repro.core.formulations import Formulation, MOST_UNFAIR_AVG_EMD
from repro.core.partition import Partition
from repro.core.tree import PartitionTree
from repro.core.unfairness import unfairness, unfairness_breakdown
from repro.scoring.base import ScoringFunction

__all__ = ["node_stats", "tree_stats"]


def node_stats(
    partition: Partition,
    function: ScoringFunction,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
) -> Dict[str, object]:
    """Statistics for one partition: size, score summary and histogram.

    This is what clicking a node in the partitioning tree shows in the demo's
    Node box.
    """
    histogram = partition.histogram(function, binning=formulation.effective_binning)
    stats = partition.statistics(function)
    return {
        "label": partition.label,
        "constraints": dict(partition.constraints),
        "size": stats["size"],
        "score_mean": stats["mean"],
        "score_min": stats["min"],
        "score_max": stats["max"],
        "score_std": stats["std"],
        "histogram_counts": list(histogram.counts),
        "histogram_edges": [float(edge) for edge in histogram.binning.edges],
        "histogram": histogram.describe(),
    }


def tree_stats(
    tree: PartitionTree,
    function: ScoringFunction,
    formulation: Formulation = MOST_UNFAIR_AVG_EMD,
) -> Dict[str, object]:
    """Statistics for a whole partitioning tree (the demo's General box).

    Includes the tree shape, the unfairness of the leaf partitioning, the
    most and least favoured groups, and the most separated pair of groups.
    """
    partitioning = tree.to_partitioning()
    breakdown = unfairness_breakdown(partitioning, function, formulation)
    summary = tree.summary()
    summary.update(
        {
            "unfairness": breakdown.value,
            "formulation": formulation.name,
            "most_favored": breakdown.most_favored,
            "least_favored": breakdown.least_favored,
            "most_separated_pair": breakdown.most_separated_pair,
        }
    )
    return summary
