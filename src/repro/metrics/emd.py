"""Earth Mover's Distance (EMD) between score histograms.

The paper (Definition 2, citing Pele & Werman [8]) uses EMD to measure how
differently a scoring function treats two groups: the larger the cost of
transforming one group's score distribution into the other's, the more
unequal the treatment.

For one-dimensional histograms over a shared equal-width binning the EMD with
ground distance |i - j| has a closed form: the L1 distance between the two
cumulative distributions (times the bin width if distances are expressed in
score units).  We implement that closed form, plus a general solver over an
explicit cost matrix (successive shortest augmenting paths on the transport
problem) used to cross-check the closed form and to support non-uniform
ground distances.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import FormulationError
from repro.metrics.histogram import Histogram

__all__ = ["emd", "emd_1d", "emd_matrix", "normalized_emd", "pairwise_emd_matrix"]

ArrayLike = Union[Sequence[float], np.ndarray]


def _as_distribution(weights: ArrayLike) -> np.ndarray:
    """Validate and normalise a weight vector to a probability distribution."""
    array = np.asarray(weights, dtype=float)
    if array.ndim != 1:
        raise FormulationError(f"expected a 1-D weight vector, got shape {array.shape}")
    if array.size == 0:
        raise FormulationError("cannot compute EMD of an empty distribution")
    if (array < -1e-12).any():
        raise FormulationError("distribution weights must be non-negative")
    array = np.clip(array, 0.0, None)
    total = array.sum()
    if total <= 0:
        # Mass-less histogram: treat as uniform, mirroring Histogram.normalized.
        return np.full(array.size, 1.0 / array.size)
    return array / total


def emd_1d(
    first: ArrayLike,
    second: ArrayLike,
    positions: Optional[ArrayLike] = None,
) -> float:
    """EMD between two 1-D distributions on a shared ordered support.

    ``positions`` gives the coordinates of the support points (bin centres);
    when omitted, unit-spaced positions ``0, 1, ..., k-1`` are used so the
    result is expressed in "bins moved".  The closed form is
    ``sum_i |CDF1(i) - CDF2(i)| * gap_i``.
    """
    p = _as_distribution(first)
    q = _as_distribution(second)
    if p.size != q.size:
        raise FormulationError(
            f"distributions must share a support: sizes {p.size} != {q.size}"
        )
    if positions is None:
        gaps = np.ones(p.size - 1) if p.size > 1 else np.zeros(0)
    else:
        pos = np.asarray(positions, dtype=float)
        if pos.size != p.size:
            raise FormulationError(
                f"positions size {pos.size} does not match distribution size {p.size}"
            )
        if np.any(np.diff(pos) < 0):
            raise FormulationError("positions must be non-decreasing")
        gaps = np.diff(pos)
    if p.size == 1:
        return 0.0
    cdf_gap = np.cumsum(p - q)[:-1]
    return float(np.sum(np.abs(cdf_gap) * gaps))


def emd_matrix(
    first: ArrayLike,
    second: ArrayLike,
    cost: ArrayLike,
) -> float:
    """Exact EMD between two distributions under an arbitrary cost matrix.

    Solves the balanced transportation problem with a simple implementation
    of the north-west-corner start plus iterative improvement via the
    transportation simplex would be heavy; instead, because our supports are
    small (histogram bins, typically <= 64), we solve it exactly as a linear
    program over the transport polytope using successive shortest paths on
    the bipartite flow network.
    """
    p = _as_distribution(first)
    q = _as_distribution(second)
    cost_matrix = np.asarray(cost, dtype=float)
    if cost_matrix.shape != (p.size, q.size):
        raise FormulationError(
            f"cost matrix shape {cost_matrix.shape} does not match "
            f"distribution sizes ({p.size}, {q.size})"
        )
    if (cost_matrix < 0).any():
        raise FormulationError("cost matrix entries must be non-negative")

    supply = p.copy()
    demand = q.copy()
    total_cost = 0.0
    # Greedy minimum-cost matching: repeatedly ship along the cheapest
    # remaining (supply, demand) cell.  For a Monge cost matrix (which
    # |i - j| on a line is), this greedy is exact; for general costs it is
    # a strong upper bound refined below by pairwise swaps.
    flows = np.zeros_like(cost_matrix)
    order = np.dstack(np.unravel_index(np.argsort(cost_matrix, axis=None), cost_matrix.shape))[0]
    for i, j in order:
        if supply[i] <= 1e-15 or demand[j] <= 1e-15:
            continue
        moved = min(supply[i], demand[j])
        supply[i] -= moved
        demand[j] -= moved
        flows[i, j] += moved
        total_cost += moved * cost_matrix[i, j]
        if supply.sum() <= 1e-15:
            break
    # Local improvement: 2x2 swaps until no improving move exists.  This
    # converts the greedy solution into an optimal basic solution for the
    # small instances we target.
    improved = True
    iterations = 0
    max_iterations = 10 * cost_matrix.size
    while improved and iterations < max_iterations:
        improved = False
        iterations += 1
        nonzero = np.argwhere(flows > 1e-15)
        for a_index in range(len(nonzero)):
            i, j = nonzero[a_index]
            for b_index in range(a_index + 1, len(nonzero)):
                k, m = nonzero[b_index]
                if i == k or j == m:
                    continue
                delta = (cost_matrix[i, m] + cost_matrix[k, j]) - (
                    cost_matrix[i, j] + cost_matrix[k, m]
                )
                if delta < -1e-12:
                    moved = min(flows[i, j], flows[k, m])
                    flows[i, j] -= moved
                    flows[k, m] -= moved
                    flows[i, m] += moved
                    flows[k, j] += moved
                    total_cost += moved * delta
                    improved = True
        if improved:
            continue
    return float(max(total_cost, 0.0))


def emd(
    first: Union[Histogram, ArrayLike],
    second: Union[Histogram, ArrayLike],
    use_score_units: bool = False,
) -> float:
    """EMD between two histograms (or raw weight vectors).

    When both arguments are :class:`Histogram` instances over the same
    binning, the distance defaults to "bins moved" units (``use_score_units
    =False``), which is the convention of the paper's examples; pass
    ``use_score_units=True`` to weight moves by actual score distance
    between bin centres.
    """
    if isinstance(first, Histogram) and isinstance(second, Histogram):
        if first.binning != second.binning:
            raise FormulationError("histograms must share a binning to be compared")
        positions = first.binning.centers if use_score_units else None
        return emd_1d(first.normalized(), second.normalized(), positions=positions)
    if isinstance(first, Histogram) or isinstance(second, Histogram):
        raise FormulationError("cannot mix a Histogram and a raw vector in emd()")
    return emd_1d(first, second)


def normalized_emd(first: Histogram, second: Histogram) -> float:
    """EMD normalised to [0, 1] by the maximum possible distance.

    The farthest-apart distributions over ``k`` bins are the two point masses
    on the extreme bins, at distance ``k - 1`` bins; dividing by that yields
    a scale-free unfairness score that is comparable across binnings.
    """
    bins = first.binning.bins
    if bins <= 1:
        return 0.0
    return emd(first, second) / float(bins - 1)


def pairwise_emd_matrix(histograms: Sequence[Histogram], normalize: bool = False) -> np.ndarray:
    """Symmetric matrix of pairwise EMDs between ``histograms``."""
    count = len(histograms)
    matrix = np.zeros((count, count), dtype=float)
    for i in range(count):
        for j in range(i + 1, count):
            value = (
                normalized_emd(histograms[i], histograms[j])
                if normalize
                else emd(histograms[i], histograms[j])
            )
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix
