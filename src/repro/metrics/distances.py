"""Alternative distribution distances.

The paper quantifies group unfairness with the EMD, but explicitly notes that
FaiRank "is generic and provides the ability to quantify different notions of
fairness".  This module supplies the common alternatives — total variation,
Kolmogorov–Smirnov, Jensen–Shannon divergence and mean-score gap — behind a
single :class:`DistanceMeasure` interface so formulations can swap them in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import FormulationError
from repro.metrics.emd import emd, normalized_emd
from repro.metrics.histogram import Histogram

__all__ = [
    "DistanceMeasure",
    "EMDDistance",
    "NormalizedEMDDistance",
    "TotalVariationDistance",
    "KolmogorovSmirnovDistance",
    "JensenShannonDistance",
    "MeanGapDistance",
    "get_distance",
    "available_distances",
]


@dataclass(frozen=True)
class DistanceMeasure:
    """A named, symmetric distance between two score histograms."""

    name: str
    func: Callable[[Histogram, Histogram], float]
    description: str = ""

    def __call__(self, first: Histogram, second: Histogram) -> float:
        if first.binning != second.binning:
            raise FormulationError("histograms must share a binning to be compared")
        return float(self.func(first, second))


def _total_variation(first: Histogram, second: Histogram) -> float:
    return float(0.5 * np.abs(first.normalized() - second.normalized()).sum())


def _kolmogorov_smirnov(first: Histogram, second: Histogram) -> float:
    cdf_first = np.cumsum(first.normalized())
    cdf_second = np.cumsum(second.normalized())
    return float(np.abs(cdf_first - cdf_second).max())


def _jensen_shannon(first: Histogram, second: Histogram) -> float:
    p = first.normalized()
    q = second.normalized()
    mixture = 0.5 * (p + q)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    divergence = 0.5 * _kl(p, mixture) + 0.5 * _kl(q, mixture)
    # Numerical noise can push the value a hair above 1 or below 0.
    return float(min(max(divergence, 0.0), 1.0))


def _jensen_shannon_distance(first: Histogram, second: Histogram) -> float:
    return math.sqrt(_jensen_shannon(first, second))


def _mean_gap(first: Histogram, second: Histogram) -> float:
    return abs(first.mean_score() - second.mean_score())


EMDDistance = DistanceMeasure(
    name="emd",
    func=lambda a, b: emd(a, b),
    description="Earth Mover's Distance in bin units (paper default, Definition 2)",
)

NormalizedEMDDistance = DistanceMeasure(
    name="normalized_emd",
    func=normalized_emd,
    description="EMD divided by its maximum (k-1 bins); comparable across binnings",
)

TotalVariationDistance = DistanceMeasure(
    name="total_variation",
    func=_total_variation,
    description="Half the L1 distance between normalised histograms",
)

KolmogorovSmirnovDistance = DistanceMeasure(
    name="kolmogorov_smirnov",
    func=_kolmogorov_smirnov,
    description="Maximum absolute difference between the two CDFs",
)

JensenShannonDistance = DistanceMeasure(
    name="jensen_shannon",
    func=_jensen_shannon_distance,
    description="Square root of the Jensen-Shannon divergence (base 2)",
)

MeanGapDistance = DistanceMeasure(
    name="mean_gap",
    func=_mean_gap,
    description="Absolute difference between group mean scores (demographic-parity style)",
)

_REGISTRY: Dict[str, DistanceMeasure] = {
    measure.name: measure
    for measure in (
        EMDDistance,
        NormalizedEMDDistance,
        TotalVariationDistance,
        KolmogorovSmirnovDistance,
        JensenShannonDistance,
        MeanGapDistance,
    )
}


def available_distances() -> Tuple[str, ...]:
    """Names of all registered distance measures."""
    return tuple(sorted(_REGISTRY))


def get_distance(name: str) -> DistanceMeasure:
    """Look up a distance measure by name.

    Raises
    ------
    FormulationError
        If the name is not registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise FormulationError(
            f"unknown distance {name!r}; available: {', '.join(available_distances())}"
        ) from None
