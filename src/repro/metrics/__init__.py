"""Metrics substrate: histograms, EMD and alternative distances (S2)."""

from repro.metrics.distances import (
    DistanceMeasure,
    EMDDistance,
    JensenShannonDistance,
    KolmogorovSmirnovDistance,
    MeanGapDistance,
    NormalizedEMDDistance,
    TotalVariationDistance,
    available_distances,
    get_distance,
)
from repro.metrics.emd import emd, emd_1d, emd_matrix, normalized_emd, pairwise_emd_matrix
from repro.metrics.histogram import DEFAULT_BINS, Binning, Histogram, build_histogram

__all__ = [
    "Binning",
    "Histogram",
    "build_histogram",
    "DEFAULT_BINS",
    "emd",
    "emd_1d",
    "emd_matrix",
    "normalized_emd",
    "pairwise_emd_matrix",
    "DistanceMeasure",
    "EMDDistance",
    "NormalizedEMDDistance",
    "TotalVariationDistance",
    "KolmogorovSmirnovDistance",
    "JensenShannonDistance",
    "MeanGapDistance",
    "get_distance",
    "available_distances",
]
