"""Score histograms.

FaiRank quantifies the (un)fairness of a scoring function by comparing the
*distribution of scores* it assigns to different groups of individuals.  The
paper builds, for every partition, "a histogram … by creating equal bins over
the range of f and counting the number of individuals whose function scores
fall in each bin" (§3.1).

The :class:`Histogram` here is that object: a fixed binning shared across all
partitions being compared (so the EMD is well defined), plus the counts of a
particular group.  Histograms can be normalised to mass-1 distributions,
which is what the EMD compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FormulationError

__all__ = ["Binning", "Histogram", "build_histogram", "DEFAULT_BINS"]

#: Default number of equal-width bins over the score range, matching the
#: worked example of the paper (scores in [0, 1] bucketed into 5 bins).
DEFAULT_BINS = 5


@dataclass(frozen=True)
class Binning:
    """A fixed equal-width binning of a score range.

    All histograms compared by an unfairness formulation must share the same
    binning — otherwise bin-to-bin ground distances are meaningless.
    """

    low: float
    high: float
    bins: int = DEFAULT_BINS

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise FormulationError(f"a binning needs at least 1 bin, got {self.bins}")
        if not np.isfinite(self.low) or not np.isfinite(self.high):
            raise FormulationError("binning bounds must be finite")
        if self.high < self.low:
            raise FormulationError(
                f"binning upper bound {self.high} is below lower bound {self.low}"
            )

    @property
    def edges(self) -> np.ndarray:
        """Bin edges (length ``bins + 1``).

        Cached (binnings are immutable): the partitioning search asks for the
        same edges thousands of times per run.
        """
        cached = getattr(self, "_edges_cache", None)
        if cached is not None:
            return cached
        if self.high == self.low:
            # Degenerate range: widen slightly so np.histogram keeps all mass
            # in the single sensible bin rather than erroring out.
            edges = np.linspace(self.low - 0.5, self.low + 0.5, self.bins + 1)
        else:
            edges = np.linspace(self.low, self.high, self.bins + 1)
        edges.setflags(write=False)
        object.__setattr__(self, "_edges_cache", edges)
        return edges

    @property
    def centers(self) -> np.ndarray:
        """Bin centres (length ``bins``); the support points for EMD."""
        edges = self.edges
        return (edges[:-1] + edges[1:]) / 2.0

    @property
    def width(self) -> float:
        """Width of one bin."""
        edges = self.edges
        return float(edges[1] - edges[0])

    def bin_index(self, score: float) -> int:
        """Index of the bin containing ``score`` (clamped to the range)."""
        edges = self.edges
        index = int(np.searchsorted(edges, score, side="right")) - 1
        return int(np.clip(index, 0, self.bins - 1))

    @classmethod
    def unit(cls, bins: int = DEFAULT_BINS) -> "Binning":
        """The [0, 1] binning used for normalised scoring functions."""
        return cls(low=0.0, high=1.0, bins=bins)

    @classmethod
    def for_scores(cls, scores: Sequence[float], bins: int = DEFAULT_BINS) -> "Binning":
        """A binning spanning the observed range of ``scores``."""
        values = np.asarray(list(scores), dtype=float)
        if values.size == 0:
            return cls.unit(bins)
        return cls(low=float(values.min()), high=float(values.max()), bins=bins)


@dataclass(frozen=True)
class Histogram:
    """Counts of scores per bin, for one group of individuals."""

    binning: Binning
    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.counts) != self.binning.bins:
            raise FormulationError(
                f"histogram has {len(self.counts)} counts for {self.binning.bins} bins"
            )
        if any(count < 0 for count in self.counts):
            raise FormulationError("histogram counts must be non-negative")
        object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))

    @property
    def total(self) -> int:
        """Total number of individuals in the histogram."""
        return int(sum(self.counts))

    @property
    def is_empty(self) -> bool:
        return self.total == 0

    def as_array(self) -> np.ndarray:
        """Raw counts as a float array."""
        return np.asarray(self.counts, dtype=float)

    def normalized(self) -> np.ndarray:
        """Counts normalised to a probability distribution (sums to 1).

        An empty histogram normalises to the uniform distribution so that
        distances against it are defined; callers that care should check
        :attr:`is_empty` first (the partitioning code never produces empty
        partitions).  The result is cached (histograms are immutable) because
        the partitioning search normalises the same histograms many times.
        """
        cached = getattr(self, "_normalized_cache", None)
        if cached is not None:
            return cached
        counts = self.as_array()
        total = counts.sum()
        if total <= 0:
            normalized = np.full(self.binning.bins, 1.0 / self.binning.bins)
        else:
            normalized = counts / total
        normalized.setflags(write=False)
        object.__setattr__(self, "_normalized_cache", normalized)
        return normalized

    def cdf(self) -> np.ndarray:
        """Cumulative distribution over the bins, without the final all-ones bin.

        This is the quantity the vectorised EMD fast path compares; it is
        cached (histograms are immutable) so memoised histograms amortise the
        cumulative sum across the thousands of pairwise distances one
        partitioning search evaluates.
        """
        cached = getattr(self, "_cdf_cache", None)
        if cached is not None:
            return cached
        cdf = np.cumsum(self.normalized())[:-1]
        cdf.setflags(write=False)
        object.__setattr__(self, "_cdf_cache", cdf)
        return cdf

    def mean_score(self) -> float:
        """Approximate mean score using bin centres (for statistics panels)."""
        weights = self.normalized()
        return float(np.dot(weights, self.binning.centers))

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms over the same binning (union of groups)."""
        if other.binning != self.binning:
            raise FormulationError("cannot merge histograms with different binnings")
        summed = tuple(a + b for a, b in zip(self.counts, other.counts))
        return Histogram(binning=self.binning, counts=summed)

    def describe(self) -> str:
        """One-line rendering used by the session layer, e.g. ``[2|0|1|3|4]``."""
        return "[" + "|".join(str(c) for c in self.counts) + "]"


def build_histogram(
    scores: Iterable[float],
    binning: Optional[Binning] = None,
    bins: int = DEFAULT_BINS,
) -> Histogram:
    """Build a histogram of ``scores``.

    When ``binning`` is omitted a unit-interval binning with ``bins`` bins is
    used, matching the paper's normalised scoring functions.  Scores outside
    the binning range are clamped into the extreme bins (this only happens
    with user-supplied, non-normalised functions).
    """
    if binning is None:
        binning = Binning.unit(bins)
    values = np.asarray(list(scores), dtype=float)
    counts = np.zeros(binning.bins, dtype=int)
    if values.size:
        clipped = np.clip(values, binning.edges[0], binning.edges[-1])
        raw_counts, _ = np.histogram(clipped, bins=binning.edges)
        counts = raw_counts.astype(int)
    return Histogram(binning=binning, counts=tuple(int(c) for c in counts))
