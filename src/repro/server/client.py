"""HTTP client with the same seven-method surface as ``FairnessClient``.

:class:`HTTPFairnessClient` subclasses
:class:`~repro.service.client.FairnessClientBase`, so ``quantify`` /
``audit`` / ``compare`` / ``breakdown`` / ``sweep`` / ``end_user`` /
``job_owner`` have identical signatures, identical client-side validation
and identical :class:`~repro.service.jobs.ServiceResult` return values as
the in-process client — only the transport differs (a ``POST /v2/<kind>``
per call, via :mod:`urllib.request`, no third-party dependencies).  Code
written against one client runs unchanged against the other.

Beyond the per-kind methods it exposes the server's remaining endpoints:
:meth:`HTTPFairnessClient.batch` (one round-trip for many requests through
the server's :class:`~repro.service.executor.BatchExecutor`),
:meth:`HTTPFairnessClient.catalog` and :meth:`HTTPFairnessClient.health`.

The client is **shard-router aware by construction**: a
:class:`~repro.shard.router.ShardRouter` (``fairank serve --workers N``)
speaks exactly the same endpoints with the same status mapping, so pointing
``base_url`` at a router instead of a single server changes nothing in
calling code — requests are transparently fingerprint-routed to the worker
whose caches are hot, batches are split and reassembled server-side, and a
worker crash is retried on a healthy sibling before the client ever sees an
error.  The only visible difference is :meth:`health`, which returns the
router's *aggregated* payload: ``status`` reflects the whole fleet
(``ok`` / ``degraded`` / ``down``), and ``workers`` carries per-worker
liveness, restart counts and cache statistics alongside the single-process
fields.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Sequence, Tuple

from repro.errors import ServiceError
from repro.obs.trace import TRACE_HEADER, current_trace_id, new_trace_id
from repro.service.client import FairnessClientBase
from repro.service.jobs import ServiceRequest, ServiceResult
from repro.server.http import _batch_results_from_json

__all__ = ["HTTPFairnessClient"]


class HTTPFairnessClient(FairnessClientBase):
    """Transport-agnostic client surface, carried over HTTP.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``http://127.0.0.1:8080`` (a trailing slash is
        tolerated).
    raise_errors:
        When True (default) an error envelope raises
        :class:`~repro.errors.ServiceError`; when False the envelope is
        returned for inspection.  Transport-level failures (unreachable
        server, non-envelope error bodies) always raise.
    timeout:
        Per-call socket timeout in seconds.
    """

    def __init__(
        self, base_url: str, *, raise_errors: bool = True, timeout: float = 30.0
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.raise_errors = raise_errors
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _round_trip(self, request: urllib.request.Request) -> Tuple[int, Dict[str, object]]:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            # Non-2xx responses still carry a JSON envelope or error payload.
            body = error.read()
            try:
                return error.code, json.loads(body)
            except json.JSONDecodeError:
                raise ServiceError(
                    f"server at {self.base_url} answered HTTP {error.code} "
                    "with a non-JSON body"
                ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach fairness server at {self.base_url}: {error.reason}"
            ) from None
        except (json.JSONDecodeError, TimeoutError) as error:
            raise ServiceError(
                f"invalid response from fairness server at {self.base_url}: {error}"
            ) from None

    @staticmethod
    def _trace_headers() -> Dict[str, str]:
        """The outgoing trace header: join the caller's trace or open one.

        The client is an *ingress*: inside an already-traced context (a
        server calling out, a test pinning an id) the active id propagates;
        otherwise each call gets a fresh id, so the server-side log line and
        the envelope's ``timings.trace_id`` are correlatable either way.
        """
        return {TRACE_HEADER: current_trace_id() or new_trace_id()}

    def _post(self, path: str, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json", **self._trace_headers()},
            method="POST",
        )
        return self._round_trip(request)

    def _get(self, path: str) -> Dict[str, object]:
        status, payload = self._round_trip(
            urllib.request.Request(
                f"{self.base_url}{path}", headers=self._trace_headers(), method="GET"
            )
        )
        if status != 200:
            raise ServiceError(
                f"GET {path} failed with HTTP {status}: "
                f"{payload.get('error', payload)}"
            )
        return payload

    @staticmethod
    def _raise_transport_error(payload: Dict[str, object], context: str) -> None:
        """Raise for a transport-level error payload (no result envelope)."""
        error = payload.get("error")
        code = error.get("code", "error") if isinstance(error, dict) else "error"
        message = error.get("message", "") if isinstance(error, dict) else str(error)
        raise ServiceError(f"{context} was rejected [{code}]: {message}")

    def _run(self, request: ServiceRequest) -> ServiceResult:
        _, payload = self._post(f"/v2/{request.kind}", request.to_json())
        if "kind" not in payload:
            # 400/404/500 transport payloads carry only {"error": ...}; a
            # failed *execution* travels as a full envelope and is handled
            # below like any other result.
            self._raise_transport_error(payload, f"{request.kind} request")
        result = ServiceResult.from_json(payload)
        if self.raise_errors:
            result.raise_for_error()
        return result

    # -- endpoints beyond the per-kind methods ---------------------------------

    def batch(self, requests: Sequence[ServiceRequest]) -> List[ServiceResult]:
        """Execute many requests in one round-trip through ``/v2/batch``.

        Results come back in input order with per-slot error envelopes
        (``raise_errors`` does not apply: batch semantics are always
        inspect-the-envelope, matching ``BatchExecutor``).
        """
        status, payload = self._post(
            "/v2/batch", {"requests": [request.to_json() for request in requests]}
        )
        if status != 200 or "results" not in payload:
            self._raise_transport_error(payload, "batch request")
        return _batch_results_from_json(payload)

    def catalog(self) -> Dict[str, object]:
        """The server's catalogue listing (``Catalog.describe()``)."""
        return self._get("/v2/catalog")

    def health(self) -> Dict[str, object]:
        """The server's liveness / statistics payload."""
        return self._get("/v2/health")
